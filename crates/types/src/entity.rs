//! Entity classes.
//!
//! A range contains "entities (People, Software, Places, Devices and
//! Artifacts) responsible for producing, managing and using contextual
//! information" (paper, Section 3). [`EntityKind`] enumerates those five
//! classes; [`EntityDescriptor`] is the minimal identity record the
//! Registrar keeps for each entity.

use std::fmt;
use std::str::FromStr;

use crate::error::SciError;
use crate::guid::Guid;

/// The five entity classes of the SCI model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EntityKind {
    /// A human user (typically represented via an ID badge or device).
    Person,
    /// A software component (including Context Aware Applications).
    Software,
    /// A physical or logical place (room, floor, radio cell).
    Place,
    /// A hardware device (sensor, printer, base station, PDA).
    Device,
    /// A passive physical object carried or tracked.
    Artifact,
}

impl EntityKind {
    /// All entity kinds, in declaration order.
    pub const ALL: [EntityKind; 5] = [
        EntityKind::Person,
        EntityKind::Software,
        EntityKind::Place,
        EntityKind::Device,
        EntityKind::Artifact,
    ];

    /// A stable lowercase name used by the query codec.
    pub const fn name(self) -> &'static str {
        match self {
            EntityKind::Person => "person",
            EntityKind::Software => "software",
            EntityKind::Place => "place",
            EntityKind::Device => "device",
            EntityKind::Artifact => "artifact",
        }
    }
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EntityKind {
    type Err = SciError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "person" => Ok(EntityKind::Person),
            "software" => Ok(EntityKind::Software),
            "place" => Ok(EntityKind::Place),
            "device" => Ok(EntityKind::Device),
            "artifact" => Ok(EntityKind::Artifact),
            other => Err(SciError::Parse(format!("unknown entity kind `{other}`"))),
        }
    }
}

/// Identity record for an entity known to a range.
///
/// # Example
///
/// ```
/// use sci_types::{EntityDescriptor, EntityKind, Guid};
///
/// let bob = EntityDescriptor::new(Guid::from_u128(1), EntityKind::Person, "Bob");
/// assert_eq!(bob.kind, EntityKind::Person);
/// assert_eq!(bob.name, "Bob");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EntityDescriptor {
    /// The entity's GUID.
    pub id: Guid,
    /// Which of the five classes the entity belongs to.
    pub kind: EntityKind,
    /// Human-readable name ("Bob", "doorSensor-L10.01", "P1").
    pub name: String,
}

impl EntityDescriptor {
    /// Creates a descriptor.
    pub fn new(id: Guid, kind: EntityKind, name: impl Into<String>) -> Self {
        EntityDescriptor {
            id,
            kind,
            name: name.into(),
        }
    }
}

impl fmt::Display for EntityDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} `{}` ({})", self.kind, self.name, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_name_roundtrip() {
        for kind in EntityKind::ALL {
            assert_eq!(kind.name().parse::<EntityKind>().unwrap(), kind);
        }
    }

    #[test]
    fn kind_parse_rejects_unknown() {
        assert!("robot".parse::<EntityKind>().is_err());
        assert!(
            "Person".parse::<EntityKind>().is_err(),
            "names are lowercase"
        );
    }

    #[test]
    fn descriptor_display_mentions_name_and_kind() {
        let d = EntityDescriptor::new(Guid::from_u128(5), EntityKind::Device, "P1");
        let s = d.to_string();
        assert!(s.contains("P1"));
        assert!(s.contains("device"));
    }
}
