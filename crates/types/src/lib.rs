//! # sci-types
//!
//! Core data model for the Strathclyde Context Infrastructure (SCI), the
//! middleware for generalised context management described by Glassey et
//! al. (Middleware 2003).
//!
//! This crate defines the vocabulary every other SCI crate speaks:
//!
//! * [`Guid`] — the 128-bit global identifier used by the SCINET overlay
//!   instead of traditional addressing schemes.
//! * [`EntityKind`] and [`EntityDescriptor`] — the five entity classes the
//!   paper places inside a range (People, Software, Places, Devices and
//!   Artifacts).
//! * [`ContextType`] / [`ContextValue`] — the typed context data flowing
//!   between Context Entities as events.
//! * [`Profile`] — the typed input/output metadata a Context Entity
//!   registers with its range, used by the query resolver for type
//!   matching.
//! * [`Advertisement`] — the "well known" service interface description.
//! * [`ContextEvent`] — the typed event unit delivered by the Event
//!   Mediator.
//! * [`VirtualTime`] — the logical clock all deterministic components run
//!   on.
//!
//! # Example
//!
//! ```
//! use sci_types::{ContextType, ContextValue, EntityKind, Profile, PortSpec};
//! use sci_types::guid::GuidGenerator;
//!
//! let mut ids = GuidGenerator::seeded(7);
//! let sensor = ids.next_guid();
//! let profile = Profile::builder(sensor, EntityKind::Device, "doorSensor-L10.01")
//!     .output(PortSpec::new("presence", ContextType::Presence))
//!     .attribute("room", ContextValue::text("L10.01"))
//!     .build();
//! assert!(profile.provides(&ContextType::Presence));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advertisement;
pub mod command;
pub mod diagnostic;
pub mod entity;
pub mod error;
pub mod event;
pub mod guid;
pub mod metadata;
pub mod profile;
pub mod protocol;
pub mod shard;
pub mod time;
pub mod value;

pub use advertisement::{Advertisement, Operation};
pub use command::{AppDelivery, DeferredAnswer, QueryAnswer, RangeReply};
pub use diagnostic::{AnalysisReport, DiagCode, Diagnostic, Severity};
pub use entity::{EntityDescriptor, EntityKind};
pub use error::{SciError, SciResult};
pub use event::{ContextEvent, EventSeq};
pub use guid::Guid;
pub use metadata::Metadata;
pub use profile::{PortSpec, Profile, ProfileBuilder};
pub use protocol::{
    BlueprintKindModel, FaultModel, FaultSchedule, FederationModel, FreshnessBound, LinkFaultModel,
    MessageClassModel, RangeModel, RetryModel, RouteClaim, TransportLinkModel,
};
pub use shard::ShardMap;
pub use time::{VirtualDuration, VirtualTime};
pub use value::{ContextType, ContextValue, Coord};
