//! Deterministic sharded hash map.
//!
//! A Range at city scale holds 100k–1M entities; a single `HashMap`
//! behind one lock (or one borrow) makes every registry touch contend
//! on the same allocation and makes rehashes stop-the-world over the
//! whole entity population. [`ShardMap`] splits the key space over a
//! power-of-two array of independent `HashMap` shards, routed by a
//! *deterministic* hash (`BuildHasherDefault<DefaultHasher>`), so
//! shard assignment is stable across processes and replays — a
//! property the chaos suite and blueprint restarts rely on. Each shard
//! stays small enough that rehashing is incremental in practice and
//! iteration never walks one giant table.
//!
//! The map is single-writer like everything else inside a Range actor:
//! there is no interior locking, only partitioned storage. The win is
//! bounded rehash pauses, cache-friendlier per-shard tables, and a
//! structure ready to be split across worker threads later.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash};

/// The deterministic hasher used for shard routing and within shards.
///
/// `std`'s default `RandomState` seeds per-process, which would make
/// shard assignment (and therefore any iteration order that leaks into
/// replies) nondeterministic across runs — unacceptable for the
/// seed-exact chaos replays. `DefaultHasher::default()` is fixed.
pub type DeterministicState = BuildHasherDefault<DefaultHasher>;

/// Default number of shards; 64 keeps each shard ≤ ~16k entries at the
/// 1M-entity design point while costing one pointer-sized `Vec` slot
/// per shard when small.
pub const DEFAULT_SHARDS: usize = 64;

/// A hash map partitioned over a power-of-two array of shards with
/// deterministic routing.
///
/// Public behaviour matches `HashMap` for the operations exposed;
/// iteration order is *shard-major* and deterministic for a given key
/// population (same keys ⇒ same order, every run).
#[derive(Clone)]
pub struct ShardMap<K, V> {
    shards: Vec<HashMap<K, V, DeterministicState>>,
    mask: u64,
    len: usize,
}

impl<K: Hash + Eq, V> ShardMap<K, V> {
    /// Creates a map with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates a map with `shards` shards, rounded up to a power of
    /// two (minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.next_power_of_two().max(1);
        ShardMap {
            shards: (0..n).map(|_| HashMap::default()).collect(),
            mask: (n - 1) as u64,
            len: 0,
        }
    }

    /// Number of shards backing the map.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a key routes to. Deterministic across processes.
    #[inline]
    pub fn shard_of(&self, key: &K) -> usize {
        let h = DeterministicState::default().hash_one(key);
        (h & self.mask) as usize
    }

    /// Inserts a key-value pair, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let idx = self.shard_of(&key);
        let prev = self.shards[idx].insert(key, value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.shard_of(key);
        let gone = self.shards[idx].remove(key);
        if gone.is_some() {
            self.len -= 1;
        }
        gone
    }

    /// A shared reference to the value for `key`, if present.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.shards[self.shard_of(key)].get(key)
    }

    /// A mutable reference to the value for `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = self.shard_of(key);
        self.shards[idx].get_mut(key)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.shards[self.shard_of(key)].contains_key(key)
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping shard capacity.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
        self.len = 0;
    }

    /// A mutable reference to the value for `key`, inserting the value
    /// produced by `default` first if absent.
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let idx = self.shard_of(&key);
        let shard = &mut self.shards[idx];
        if !shard.contains_key(&key) {
            self.len += 1;
        }
        shard.entry(key).or_insert_with(default)
    }

    /// Retains only the entries for which `keep` returns `true`.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &mut V) -> bool) {
        let mut len = 0;
        for shard in &mut self.shards {
            shard.retain(|k, v| keep(k, v));
            len += shard.len();
        }
        self.len = len;
    }

    /// Iterates all entries, shard-major. Deterministic across runs
    /// for the same insertion history (no per-process hash seeds), but
    /// *not* insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.shards.iter().flat_map(HashMap::iter)
    }

    /// Mutably iterates all entries, shard-major.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.shards.iter_mut().flat_map(HashMap::iter_mut)
    }

    /// Iterates all keys, shard-major.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.shards.iter().flat_map(HashMap::keys)
    }

    /// Iterates all values, shard-major.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.shards.iter().flat_map(HashMap::values)
    }

    /// Mutably iterates all values, shard-major.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.shards.iter_mut().flat_map(HashMap::values_mut)
    }

    /// Per-shard entry counts, for balance diagnostics and benches.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(HashMap::len).collect()
    }
}

impl<K: Hash + Eq, V> Default for ShardMap<K, V> {
    fn default() -> Self {
        ShardMap::new()
    }
}

impl<K: Hash + Eq + std::fmt::Debug, V: std::fmt::Debug> std::fmt::Debug for ShardMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Hash + Eq, V> FromIterator<(K, V)> for ShardMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = ShardMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// Owning shard-major iterator.
pub struct IntoIter<K, V> {
    shards: std::vec::IntoIter<HashMap<K, V, DeterministicState>>,
    current: Option<std::collections::hash_map::IntoIter<K, V>>,
}

impl<K, V> Iterator for IntoIter<K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        loop {
            if let Some(cur) = &mut self.current {
                if let Some(kv) = cur.next() {
                    return Some(kv);
                }
            }
            self.current = Some(self.shards.next()?.into_iter());
        }
    }
}

impl<K: Hash + Eq, V> IntoIterator for ShardMap<K, V> {
    type Item = (K, V);
    type IntoIter = IntoIter<K, V>;

    fn into_iter(self) -> IntoIter<K, V> {
        IntoIter {
            shards: self.shards.into_iter(),
            current: None,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::guid::Guid;

    #[test]
    fn behaves_like_a_map() {
        let mut m: ShardMap<Guid, u32> = ShardMap::with_shards(8);
        assert!(m.is_empty());
        for i in 0..1000u32 {
            assert_eq!(m.insert(Guid::from_u128(u128::from(i)), i), None);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.insert(Guid::from_u128(7), 99), Some(7));
        assert_eq!(m.len(), 1000, "overwrite does not grow");
        assert_eq!(m.get(&Guid::from_u128(7)), Some(&99));
        assert_eq!(m.remove(&Guid::from_u128(7)), Some(99));
        assert_eq!(m.remove(&Guid::from_u128(7)), None);
        assert_eq!(m.len(), 999);
        assert!(m.contains_key(&Guid::from_u128(8)));
        *m.get_mut(&Guid::from_u128(8)).unwrap() += 1;
        assert_eq!(m.get(&Guid::from_u128(8)), Some(&9));
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let m: ShardMap<Guid, ()> = ShardMap::with_shards(16);
        let n: ShardMap<Guid, ()> = ShardMap::with_shards(16);
        let mut hit = [false; 16];
        for i in 0..4096u128 {
            let g = Guid::from_u128(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            assert_eq!(m.shard_of(&g), n.shard_of(&g), "routing differs");
            hit[m.shard_of(&g)] = true;
        }
        assert!(hit.iter().all(|&h| h), "some shard never hit");
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardMap::<u64, ()>::with_shards(0).shard_count(), 1);
        assert_eq!(ShardMap::<u64, ()>::with_shards(3).shard_count(), 4);
        assert_eq!(ShardMap::<u64, ()>::with_shards(64).shard_count(), 64);
    }

    #[test]
    fn get_or_insert_with_counts_once() {
        let mut m: ShardMap<u64, Vec<u32>> = ShardMap::new();
        m.get_or_insert_with(5, Vec::new).push(1);
        m.get_or_insert_with(5, Vec::new).push(2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&5), Some(&vec![1, 2]));
    }

    #[test]
    fn retain_and_clear_keep_len_consistent() {
        let mut m: ShardMap<u64, u64> = ShardMap::with_shards(4);
        for i in 0..100 {
            m.insert(i, i);
        }
        m.retain(|_, v| *v % 2 == 0);
        assert_eq!(m.len(), 50);
        assert_eq!(m.iter().count(), 50);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn iteration_order_is_stable_for_same_history() {
        let mut a: ShardMap<u64, u64> = ShardMap::with_shards(8);
        let mut b: ShardMap<u64, u64> = ShardMap::with_shards(8);
        for i in 0..500 {
            a.insert(i, i);
            b.insert(i, i);
        }
        a.remove(&123);
        b.remove(&123);
        let ka: Vec<_> = a.keys().copied().collect();
        let kb: Vec<_> = b.keys().copied().collect();
        assert_eq!(ka, kb, "same history must iterate identically");
    }

    #[test]
    fn into_iter_yields_everything() {
        let mut m: ShardMap<u64, u64> = ShardMap::with_shards(4);
        for i in 0..64 {
            m.insert(i, i * 2);
        }
        let mut got: Vec<_> = m.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got.len(), 64);
        assert_eq!(got[10], (10, 20));
    }
}
