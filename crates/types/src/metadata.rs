//! Entity metadata.
//!
//! "A CE maintains a Profile for its entity that contains meta-data
//! describing the entity" (paper, Section 3.1). [`Metadata`] is the
//! ordered key→[`ContextValue`] map used inside profiles and
//! advertisements; ordering is preserved so serialised forms are stable.

use std::fmt;

use crate::value::ContextValue;

/// An ordered collection of named attributes.
///
/// Insertion order is preserved; updating an existing key keeps its
/// position. Lookups are linear, which is appropriate for the small
/// attribute sets profiles carry.
///
/// # Example
///
/// ```
/// use sci_types::{ContextValue, Metadata};
///
/// let mut meta = Metadata::new();
/// meta.set("room", ContextValue::place("L10.01"));
/// meta.set("queue", ContextValue::Int(0));
/// assert_eq!(meta.get("queue").and_then(ContextValue::as_int), Some(0));
/// assert_eq!(meta.len(), 2);
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Metadata {
    entries: Vec<(String, ContextValue)>,
}

impl Metadata {
    /// Creates an empty attribute set.
    pub fn new() -> Self {
        Metadata::default()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if there are no attributes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sets `key` to `value`, returning the previous value if any.
    pub fn set(&mut self, key: impl Into<String>, value: ContextValue) -> Option<ContextValue> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up an attribute by name.
    pub fn get(&self, key: &str) -> Option<&ContextValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Removes an attribute, returning its value if it was present.
    pub fn remove(&mut self, key: &str) -> Option<ContextValue> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(pos).1)
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ContextValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, ContextValue)> for Metadata {
    fn from_iter<I: IntoIterator<Item = (String, ContextValue)>>(iter: I) -> Self {
        let mut meta = Metadata::new();
        for (k, v) in iter {
            meta.set(k, v);
        }
        meta
    }
}

impl Extend<(String, ContextValue)> for Metadata {
    fn extend<I: IntoIterator<Item = (String, ContextValue)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.set(k, v);
        }
    }
}

impl fmt::Display for Metadata {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{k}={v}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_replaces_in_place() {
        let mut m = Metadata::new();
        m.set("a", ContextValue::Int(1));
        m.set("b", ContextValue::Int(2));
        let old = m.set("a", ContextValue::Int(3));
        assert_eq!(old, Some(ContextValue::Int(1)));
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"], "update must not reorder");
    }

    #[test]
    fn remove_and_contains() {
        let mut m: Metadata = [("x".to_owned(), ContextValue::Bool(true))]
            .into_iter()
            .collect();
        assert!(m.contains("x"));
        assert_eq!(m.remove("x"), Some(ContextValue::Bool(true)));
        assert!(!m.contains("x"));
        assert_eq!(m.remove("x"), None);
        assert!(m.is_empty());
    }

    #[test]
    fn extend_merges() {
        let mut m = Metadata::new();
        m.set("a", ContextValue::Int(1));
        m.extend([
            ("a".to_owned(), ContextValue::Int(9)),
            ("b".to_owned(), ContextValue::Int(2)),
        ]);
        assert_eq!(m.get("a").and_then(ContextValue::as_int), Some(9));
        assert_eq!(m.len(), 2);
    }
}
