//! Range command-protocol data: the answer and reply values a Range's
//! runtime returns to whoever drives it.
//!
//! The Context Server is "centralised per range, decentralised across
//! ranges" (paper, Section 3). The per-range centralisation is realised
//! as an actor: a single-writer runtime loop owns the server and
//! processes a stream of commands from a mailbox. The *command* side of
//! the protocol carries queries and logic factories and therefore lives
//! upstack (`sci-core::runtime::RangeCommand`); the *reply* side is pure
//! data model — profiles, advertisements, events, reports — and is
//! defined here so every layer (core, overlay drivers, benches) can
//! speak it without depending on the query engine.

use crate::advertisement::Advertisement;
use crate::diagnostic::AnalysisReport;
use crate::entity::EntityDescriptor;
use crate::event::ContextEvent;
use crate::guid::Guid;
use crate::profile::Profile;

/// The answer to a submitted query.
#[derive(Clone, Debug)]
pub enum QueryAnswer {
    /// Mode `profile`: the matching profiles.
    Profiles(Vec<Profile>),
    /// Mode `advertisement`: the selected services' interfaces.
    Advertisements(Vec<Advertisement>),
    /// Modes `subscribe`/`subscribe-once`: a configuration is live;
    /// events will arrive in the application outbox.
    Subscribed {
        /// The query (= configuration) id.
        configuration: Guid,
        /// The producers the application is now subscribed to.
        producers: Vec<Guid>,
    },
    /// The query waits for its When clause; the answer will appear in
    /// the range's deferred-answer drain once triggered.
    Deferred,
    /// The Where clause names another range; federation must forward.
    Forward {
        /// Target range name.
        range: String,
    },
    /// Graceful degradation: part of the answer could not be produced
    /// because a producing range was unreachable or down. Carries what
    /// *is* known plus degraded quality-of-context metadata, so
    /// applications can distinguish "nothing matched" from "somebody
    /// could not be asked".
    Partial {
        /// What could still be answered (often the pending
        /// [`QueryAnswer::Forward`] that failed to travel).
        answer: Box<QueryAnswer>,
        /// The range that could not be consulted.
        missing_range: String,
        /// Why: `unroutable` (overlay cannot reach it) or `range-down`
        /// (its worker died).
        reason: String,
    },
}

impl QueryAnswer {
    /// Is any part of this answer missing due to an unreachable range?
    pub fn is_degraded(&self) -> bool {
        matches!(self, QueryAnswer::Partial { .. })
    }
}

/// An event delivered to a Context Aware Application.
#[derive(Clone, Debug)]
pub struct AppDelivery {
    /// The receiving application.
    pub app: Guid,
    /// The query whose configuration produced the event.
    pub query: Guid,
    /// The event itself.
    pub event: ContextEvent,
}

/// A deferred answer: `(query, owner, answer)`.
pub type DeferredAnswer = (Guid, Guid, QueryAnswer);

/// The result of processing one range command.
///
/// Every mutating Context Server entry point maps to exactly one reply
/// shape; drivers match on the variant they expect and treat anything
/// else as a protocol violation ([`crate::SciError::Internal`]).
#[derive(Clone, Debug)]
pub enum RangeReply {
    /// The command completed and produces no value (register, ingest,
    /// cancel, settings…).
    Ack,
    /// `Submit` answered.
    Answer(QueryAnswer),
    /// `Deregister` returned the departing entity's descriptor.
    Deregistered(EntityDescriptor),
    /// `IngestBatch` applied this many events.
    Ingested(usize),
    /// `PollTimers` fired this many deferred queries.
    Fired(usize),
    /// `ExpireHistory` evicted this many history entries.
    Expired(usize),
    /// `DrainOutbox`/`DrainOutboxFor`: pending application deliveries.
    Deliveries(Vec<AppDelivery>),
    /// `DrainAnswers`: answers produced by deferred queries.
    Answers(Vec<DeferredAnswer>),
    /// `Audit`: the fleet drift report.
    Report(AnalysisReport),
    /// `MigrateOut`: the departing entity's packaged state, serialised
    /// with the workspace XML conventions so it can cross the overlay.
    Migrated(String),
}

impl RangeReply {
    /// A short name for the variant, used in protocol-violation errors.
    pub fn kind(&self) -> &'static str {
        match self {
            RangeReply::Ack => "ack",
            RangeReply::Answer(_) => "answer",
            RangeReply::Deregistered(_) => "deregistered",
            RangeReply::Ingested(_) => "ingested",
            RangeReply::Fired(_) => "fired",
            RangeReply::Expired(_) => "expired",
            RangeReply::Deliveries(_) => "deliveries",
            RangeReply::Answers(_) => "answers",
            RangeReply::Report(_) => "report",
            RangeReply::Migrated(_) => "migrated",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_kinds_are_distinct() {
        let kinds = [
            RangeReply::Ack.kind(),
            RangeReply::Answer(QueryAnswer::Deferred).kind(),
            RangeReply::Ingested(0).kind(),
            RangeReply::Fired(0).kind(),
            RangeReply::Expired(0).kind(),
            RangeReply::Deliveries(Vec::new()).kind(),
            RangeReply::Answers(Vec::new()).kind(),
            RangeReply::Report(AnalysisReport::new()).kind(),
            RangeReply::Migrated(String::new()).kind(),
        ];
        let mut dedup = kinds.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len());
    }

    #[test]
    fn partial_answers_flag_degradation() {
        let partial = QueryAnswer::Partial {
            answer: Box::new(QueryAnswer::Forward {
                range: "level-ten".into(),
            }),
            missing_range: "level-ten".into(),
            reason: "unroutable".into(),
        };
        assert!(partial.is_degraded());
        assert!(!QueryAnswer::Deferred.is_degraded());
    }

    #[test]
    fn reply_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<RangeReply>();
        assert_send::<QueryAnswer>();
        assert_send::<AppDelivery>();
    }
}
