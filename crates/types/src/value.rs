//! Typed context values.
//!
//! The paper's composition model works by *type matching*: the query
//! resolver searches Context Entity profiles for entities whose outputs
//! provide a required [`ContextType`] and whose inputs can in turn be
//! satisfied by other entities, down to the sensor level. [`ContextType`]
//! is therefore the unit of matching, while [`ContextValue`] is the
//! payload that actually flows along the resulting event subscription
//! graph.
//!
//! The set of types is open-ended ([`ContextType::Custom`]) to satisfy the
//! paper's "flexible and extensible representation of contextual
//! information" requirement.

use std::fmt;

use crate::guid::Guid;
use crate::time::VirtualTime;

/// The semantic type of a piece of context information.
///
/// Two syntactically different sources that produce the same
/// `ContextType` are interchangeable during composition — this is SCI's
/// answer to the iQueue limitation discussed in the paper (a door-sensor
/// location network and a wireless detection scheme both output
/// [`ContextType::Location`] and can substitute for one another).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ContextType {
    /// An entity identifier (e.g. the badge id read by a door sensor).
    Identity,
    /// A raw presence/passage event at a boundary sensor.
    Presence,
    /// A resolved location of an entity.
    Location,
    /// A path (route) between two locations.
    Path,
    /// An ambient temperature reading, degrees Celsius.
    Temperature,
    /// A received-signal-strength reading from a base station.
    SignalStrength,
    /// Status of a printer (queue length, paper, accessibility).
    PrinterStatus,
    /// Occupancy count of a place.
    Occupancy,
    /// A user-defined context type, matched by name.
    Custom(String),
}

impl ContextType {
    /// Creates a custom context type with the given name.
    pub fn custom(name: impl Into<String>) -> Self {
        ContextType::Custom(name.into())
    }

    /// A stable lowercase name, used by the query codec and in profiles.
    pub fn name(&self) -> &str {
        match self {
            ContextType::Identity => "identity",
            ContextType::Presence => "presence",
            ContextType::Location => "location",
            ContextType::Path => "path",
            ContextType::Temperature => "temperature",
            ContextType::SignalStrength => "signal-strength",
            ContextType::PrinterStatus => "printer-status",
            ContextType::Occupancy => "occupancy",
            ContextType::Custom(name) => name,
        }
    }

    /// Parses the stable name produced by [`ContextType::name`]; unknown
    /// names become [`ContextType::Custom`].
    pub fn from_name(name: &str) -> ContextType {
        match name {
            "identity" => ContextType::Identity,
            "presence" => ContextType::Presence,
            "location" => ContextType::Location,
            "path" => ContextType::Path,
            "temperature" => ContextType::Temperature,
            "signal-strength" => ContextType::SignalStrength,
            "printer-status" => ContextType::PrinterStatus,
            "occupancy" => ContextType::Occupancy,
            other => ContextType::Custom(other.to_owned()),
        }
    }
}

impl fmt::Display for ContextType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A 2-D coordinate in a range's geometric location model, in metres.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Coord {
    /// East-west position.
    pub x: f64,
    /// North-south position.
    pub y: f64,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(x: f64, y: f64) -> Self {
        Coord { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance(self, other: Coord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// A dynamically typed context payload.
///
/// `ContextValue` is deliberately small and closed over a record/list
/// algebra: richer domain values (paths, printer states, profiles) are
/// encoded as records so that every payload can cross the SCINET wire
/// codec and the query language uniformly.
#[derive(Clone, PartialEq, Debug, Default)]
pub enum ContextValue {
    /// Absence of a value.
    #[default]
    Empty,
    /// A boolean flag.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A floating point quantity.
    Float(f64),
    /// A UTF-8 string.
    Text(String),
    /// An entity identifier.
    Id(Guid),
    /// A geometric coordinate.
    Coord(Coord),
    /// A named logical place (e.g. `"L10.01"`).
    Place(String),
    /// An instant in virtual time.
    Time(VirtualTime),
    /// An ordered sequence of values.
    List(Vec<ContextValue>),
    /// A keyed record of values.
    Record(Vec<(String, ContextValue)>),
}

impl ContextValue {
    /// Convenience constructor for a text value.
    pub fn text(s: impl Into<String>) -> Self {
        ContextValue::Text(s.into())
    }

    /// Convenience constructor for a named place.
    pub fn place(s: impl Into<String>) -> Self {
        ContextValue::Place(s.into())
    }

    /// Convenience constructor for a record.
    pub fn record(fields: impl IntoIterator<Item = (impl Into<String>, ContextValue)>) -> Self {
        ContextValue::Record(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ContextValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ContextValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the numeric payload as `f64`, accepting `Int` and `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ContextValue::Float(x) => Some(*x),
            ContextValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Text` or `Place`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            ContextValue::Text(s) | ContextValue::Place(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the identifier payload, if this is an `Id`.
    pub fn as_id(&self) -> Option<Guid> {
        match self {
            ContextValue::Id(g) => Some(*g),
            _ => None,
        }
    }

    /// Returns the coordinate payload, if this is a `Coord`.
    pub fn as_coord(&self) -> Option<Coord> {
        match self {
            ContextValue::Coord(c) => Some(*c),
            _ => None,
        }
    }

    /// Looks up a field of a `Record` by name.
    pub fn field(&self, name: &str) -> Option<&ContextValue> {
        match self {
            ContextValue::Record(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the list elements, if this is a `List`.
    pub fn as_list(&self) -> Option<&[ContextValue]> {
        match self {
            ContextValue::List(items) => Some(items),
            _ => None,
        }
    }

    /// Returns `true` if the value is [`ContextValue::Empty`].
    pub fn is_empty(&self) -> bool {
        matches!(self, ContextValue::Empty)
    }
}

impl From<bool> for ContextValue {
    fn from(b: bool) -> Self {
        ContextValue::Bool(b)
    }
}

impl From<i64> for ContextValue {
    fn from(i: i64) -> Self {
        ContextValue::Int(i)
    }
}

impl From<f64> for ContextValue {
    fn from(x: f64) -> Self {
        ContextValue::Float(x)
    }
}

impl From<&str> for ContextValue {
    fn from(s: &str) -> Self {
        ContextValue::Text(s.to_owned())
    }
}

impl From<String> for ContextValue {
    fn from(s: String) -> Self {
        ContextValue::Text(s)
    }
}

impl From<Guid> for ContextValue {
    fn from(g: Guid) -> Self {
        ContextValue::Id(g)
    }
}

impl From<Coord> for ContextValue {
    fn from(c: Coord) -> Self {
        ContextValue::Coord(c)
    }
}

impl From<VirtualTime> for ContextValue {
    fn from(t: VirtualTime) -> Self {
        ContextValue::Time(t)
    }
}

impl fmt::Display for ContextValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContextValue::Empty => f.write_str("<empty>"),
            ContextValue::Bool(b) => write!(f, "{b}"),
            ContextValue::Int(i) => write!(f, "{i}"),
            ContextValue::Float(x) => write!(f, "{x}"),
            ContextValue::Text(s) => write!(f, "{s:?}"),
            ContextValue::Id(g) => write!(f, "{g}"),
            ContextValue::Coord(c) => write!(f, "{c}"),
            ContextValue::Place(p) => write!(f, "@{p}"),
            ContextValue::Time(t) => write!(f, "{t}"),
            ContextValue::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            ContextValue::Record(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_name_roundtrip() {
        let all = [
            ContextType::Identity,
            ContextType::Presence,
            ContextType::Location,
            ContextType::Path,
            ContextType::Temperature,
            ContextType::SignalStrength,
            ContextType::PrinterStatus,
            ContextType::Occupancy,
            ContextType::custom("co2-level"),
        ];
        for t in all {
            assert_eq!(ContextType::from_name(t.name()), t);
        }
    }

    #[test]
    fn record_field_lookup() {
        let v = ContextValue::record([
            ("room", ContextValue::place("L10.01")),
            ("queue", ContextValue::Int(3)),
        ]);
        assert_eq!(v.field("queue").and_then(ContextValue::as_int), Some(3));
        assert_eq!(
            v.field("room").and_then(|f| f.as_text().map(str::to_owned)),
            Some("L10.01".to_owned())
        );
        assert!(v.field("missing").is_none());
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(ContextValue::Int(3).as_float(), Some(3.0));
        assert_eq!(ContextValue::Float(2.5).as_float(), Some(2.5));
        assert_eq!(ContextValue::Bool(true).as_float(), None);
    }

    #[test]
    fn coord_distance() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-9);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn display_is_nonempty_for_everything() {
        let values = [
            ContextValue::Empty,
            ContextValue::Bool(false),
            ContextValue::Int(-1),
            ContextValue::Float(0.5),
            ContextValue::text("x"),
            ContextValue::Id(Guid::from_u128(9)),
            ContextValue::Coord(Coord::new(1.0, 2.0)),
            ContextValue::place("lobby"),
            ContextValue::Time(VirtualTime::from_secs(1)),
            ContextValue::List(vec![ContextValue::Int(1)]),
            ContextValue::record([("k", ContextValue::Int(1))]),
        ];
        for v in values {
            assert!(!v.to_string().is_empty());
        }
    }
}
