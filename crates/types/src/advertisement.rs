//! Service advertisements.
//!
//! "For entities that provide a service, the CE may also maintain an
//! Advertisement describing the services that this entity can provide to
//! other entities. … Advertisements take the form of 'well known'
//! interfaces in order that CAAs may transfer service specific data to
//! CEs" (paper, Sections 3.1 and 4). In this reproduction an
//! [`Advertisement`] names a well-known interface and lists its typed
//! [`Operation`]s; the CAPA application uses the `"printing"` interface's
//! `submit-job` operation to send documents to a printer CE.

use std::fmt;

use crate::guid::Guid;
use crate::metadata::Metadata;
use crate::value::ContextType;

/// One invocable operation of an advertised service interface.
#[derive(Clone, PartialEq, Debug)]
pub struct Operation {
    /// Operation name, unique within the advertisement.
    pub name: String,
    /// Types of the arguments the operation accepts, in order.
    pub params: Vec<ContextType>,
    /// Type of the operation's reply, if it produces one.
    pub returns: Option<ContextType>,
}

impl Operation {
    /// Creates an operation taking `params` and returning `returns`.
    pub fn new(
        name: impl Into<String>,
        params: impl IntoIterator<Item = ContextType>,
        returns: Option<ContextType>,
    ) -> Self {
        Operation {
            name: name.into(),
            params: params.into_iter().collect(),
            returns,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{p}")?;
        }
        f.write_str(")")?;
        if let Some(r) = &self.returns {
            write!(f, " -> {r}")?;
        }
        Ok(())
    }
}

/// A well-known service interface offered by a Context Entity.
///
/// # Example
///
/// ```
/// use sci_types::{Advertisement, ContextType, Operation, Guid};
///
/// let printing = Advertisement::new(Guid::from_u128(7), "printing")
///     .with_operation(Operation::new(
///         "submit-job",
///         [ContextType::custom("document")],
///         Some(ContextType::custom("job-ticket")),
///     ));
/// assert!(printing.operation("submit-job").is_some());
/// assert_eq!(printing.interface(), "printing");
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Advertisement {
    provider: Guid,
    interface: String,
    operations: Vec<Operation>,
    attributes: Metadata,
}

impl Advertisement {
    /// Creates an advertisement for `interface` provided by the entity
    /// `provider`.
    pub fn new(provider: Guid, interface: impl Into<String>) -> Self {
        Advertisement {
            provider,
            interface: interface.into(),
            operations: Vec::new(),
            attributes: Metadata::new(),
        }
    }

    /// Adds an operation (builder style).
    pub fn with_operation(mut self, op: Operation) -> Self {
        self.operations.push(op);
        self
    }

    /// Sets a descriptive attribute (builder style).
    pub fn with_attribute(
        mut self,
        key: impl Into<String>,
        value: crate::value::ContextValue,
    ) -> Self {
        self.attributes.set(key, value);
        self
    }

    /// GUID of the providing entity.
    pub fn provider(&self) -> Guid {
        self.provider
    }

    /// Name of the well-known interface.
    pub fn interface(&self) -> &str {
        &self.interface
    }

    /// The advertised operations.
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// Descriptive attributes.
    pub fn attributes(&self) -> &Metadata {
        &self.attributes
    }

    /// Looks up an operation by name.
    pub fn operation(&self, name: &str) -> Option<&Operation> {
        self.operations.iter().find(|op| op.name == name)
    }
}

impl fmt::Display for Advertisement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interface {} @ {}", self.interface, self.provider)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ContextValue;

    #[test]
    fn operation_lookup() {
        let ad = Advertisement::new(Guid::from_u128(1), "printing")
            .with_operation(Operation::new(
                "submit-job",
                [ContextType::custom("document")],
                None,
            ))
            .with_operation(Operation::new(
                "cancel-job",
                [ContextType::Identity],
                Some(ContextType::custom("ack")),
            ));
        assert!(ad.operation("submit-job").is_some());
        assert!(ad.operation("reboot").is_none());
        assert_eq!(ad.operations().len(), 2);
    }

    #[test]
    fn attributes_carry_service_facts() {
        let ad = Advertisement::new(Guid::from_u128(2), "printing")
            .with_attribute("ppm", ContextValue::Int(24));
        assert_eq!(
            ad.attributes().get("ppm").and_then(ContextValue::as_int),
            Some(24)
        );
    }

    #[test]
    fn display_mentions_interface() {
        let ad = Advertisement::new(Guid::from_u128(3), "projection");
        assert!(ad.to_string().contains("projection"));
    }
}
