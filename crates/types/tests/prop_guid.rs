//! Property tests for the sci-types foundations.

use proptest::prelude::*;
use sci_types::guid::GuidGenerator;
use sci_types::{ContextType, Guid, VirtualDuration, VirtualTime};

proptest! {
    /// Display → parse is the identity for every GUID.
    #[test]
    fn guid_display_parse_roundtrip(raw in any::<u128>()) {
        let g = Guid::from_u128(raw);
        let parsed: Guid = g.to_string().parse().unwrap();
        prop_assert_eq!(parsed, g);
    }

    /// Byte serialisation round-trips.
    #[test]
    fn guid_byte_roundtrip(raw in any::<u128>()) {
        let g = Guid::from_u128(raw);
        prop_assert_eq!(Guid::from_bytes(g.to_bytes()), g);
    }

    /// Flipping the first differing bit strictly increases the shared
    /// prefix — the invariant SCINET prefix routing relies on for
    /// termination.
    #[test]
    fn bit_flip_makes_progress(a in any::<u128>(), b in any::<u128>()) {
        prop_assume!(a != b);
        let (ga, gb) = (Guid::from_u128(a), Guid::from_u128(b));
        let shared = ga.leading_equal_bits(gb);
        let corrected = ga.with_bit_flipped(shared);
        prop_assert!(corrected.leading_equal_bits(gb) > shared);
    }

    /// XOR distance is a metric-compatible: symmetric, zero iff equal,
    /// and unidirectional (d(a,b) ^ d(b,c) == d(a,c)).
    #[test]
    fn xor_distance_algebra(a in any::<u128>(), b in any::<u128>(), c in any::<u128>()) {
        let (ga, gb, gc) = (Guid::from_u128(a), Guid::from_u128(b), Guid::from_u128(c));
        prop_assert_eq!(ga.xor_distance(gb), gb.xor_distance(ga));
        prop_assert_eq!(ga.xor_distance(ga), 0);
        prop_assert_eq!(ga.xor_distance(gb) ^ gb.xor_distance(gc), ga.xor_distance(gc));
    }

    /// Virtual time arithmetic is consistent: (t + d) - t == d.
    #[test]
    fn time_add_sub(t in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 4) {
        let t = VirtualTime::from_micros(t);
        let d = VirtualDuration::from_micros(d);
        prop_assert_eq!((t + d) - t, d);
        prop_assert!(t + d >= t);
    }

    /// Context type names round-trip through the stable-name codec.
    #[test]
    fn context_type_name_roundtrip(name in "[a-z][a-z0-9-]{0,20}") {
        let ty = ContextType::from_name(&name);
        prop_assert_eq!(ContextType::from_name(ty.name()), ty);
    }
}

#[test]
fn same_seed_same_stream() {
    let a: Vec<Guid> = GuidGenerator::seeded(99).take(1000).collect();
    let b: Vec<Guid> = GuidGenerator::seeded(99).take(1000).collect();
    assert_eq!(a, b);
}
