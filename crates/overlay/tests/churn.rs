//! Churn tests: the SCINET stays routable through node failures,
//! recoveries and ongoing maintenance — the robustness property the
//! paper claims for the overlay arrangement.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use sci_overlay::discovery::{grow_network, join, maintain};
use sci_overlay::net::SimNetwork;
use sci_types::guid::GuidGenerator;
use sci_types::Guid;

fn all_alive_pairs_route(net: &mut SimNetwork, guids: &[Guid]) -> (usize, usize) {
    let alive: Vec<Guid> = guids
        .iter()
        .copied()
        .filter(|&g| net.node(g).map(|n| n.is_alive()).unwrap_or(false))
        .collect();
    let mut ok = 0;
    let mut failed = 0;
    for &a in &alive {
        for &b in &alive {
            if a == b {
                continue;
            }
            if net.route(a, b).is_ok() {
                ok += 1;
            } else {
                failed += 1;
            }
        }
    }
    (ok, failed)
}

#[test]
fn routability_survives_node_failures() {
    let mut net = SimNetwork::new();
    let mut ids = GuidGenerator::seeded(33);
    let guids = grow_network(&mut net, &mut ids, 64, 33).unwrap();

    // Kill a quarter of the network.
    for &g in guids.iter().skip(1).step_by(4) {
        net.kill(g).unwrap();
    }
    let (ok, failed) = all_alive_pairs_route(&mut net, &guids);
    assert_eq!(failed, 0, "{ok} pairs routed, {failed} failed after churn");
}

#[test]
fn recovery_and_maintenance_restore_full_routability() {
    let mut net = SimNetwork::new();
    let mut ids = GuidGenerator::seeded(34);
    let guids = grow_network(&mut net, &mut ids, 48, 34).unwrap();

    // Failure wave: routing around it evicts dead entries from tables.
    for &g in guids.iter().skip(2).step_by(3) {
        net.kill(g).unwrap();
    }
    let (_, failed) = all_alive_pairs_route(&mut net, &guids);
    assert_eq!(failed, 0);

    // The dead nodes come back and a maintenance round runs (periodic
    // bucket refresh). The entire network is routable again.
    for &g in guids.iter().skip(2).step_by(3) {
        net.revive(g).unwrap();
    }
    maintain(&mut net, 34).unwrap();
    let (ok, failed) = all_alive_pairs_route(&mut net, &guids);
    assert_eq!(failed, 0);
    assert_eq!(ok, 48 * 47, "every pair routes after recovery");
}

#[test]
fn late_joiners_reach_everyone_after_heavy_growth() {
    // Join in bursts interleaved with traffic; the per-bucket refresh at
    // join plus lookup-based recovery keeps the network converged.
    let mut net = SimNetwork::new();
    let mut ids = GuidGenerator::seeded(35);
    let bootstrap = ids.next_guid();
    net.add_node(bootstrap, "bootstrap").unwrap();
    let mut guids = vec![bootstrap];
    for wave in 0..4 {
        for i in 0..16 {
            let g = ids.next_guid();
            net.add_node(g, format!("w{wave}-n{i}")).unwrap();
            join(&mut net, g, bootstrap, 35).unwrap();
            guids.push(g);
        }
        // Traffic between random-ish pairs after each wave.
        for (k, &src) in guids.iter().enumerate() {
            let dst = guids[(k * 13 + wave) % guids.len()];
            if src != dst {
                net.route(src, dst).unwrap();
            }
        }
    }
    assert_eq!(net.stats().failed(), 0);
    assert_eq!(net.len(), 65);
}
