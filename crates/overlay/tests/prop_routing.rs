//! Property tests for SCINET routing and the wire codec.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use bytes::Bytes;
use proptest::prelude::*;
use sci_overlay::message::{Message, MessageKind};
use sci_overlay::net::SimNetwork;
use sci_overlay::routing::RoutingTable;
use sci_types::Guid;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With full membership knowledge, every src→dst pair routes, the
    /// path endpoints are correct, every hop strictly decreases XOR
    /// distance, and hop count never exceeds the 128-bit bound.
    #[test]
    fn full_knowledge_routes_converge(
        raws in prop::collection::hash_set(any::<u128>().prop_filter("nonzero", |r| *r != 0), 2..40),
        src_pick in any::<prop::sample::Index>(),
        dst_pick in any::<prop::sample::Index>(),
    ) {
        let guids: Vec<Guid> = raws.iter().map(|&r| Guid::from_u128(r)).collect();
        let mut net = SimNetwork::new();
        for (i, &g) in guids.iter().enumerate() {
            net.add_node(g, format!("r{i}")).unwrap();
        }
        net.populate_full();

        let src = guids[src_pick.index(guids.len())];
        let dst = guids[dst_pick.index(guids.len())];
        let out = net.route(src, dst).unwrap();

        prop_assert_eq!(out.path.first().copied(), Some(src));
        prop_assert_eq!(out.path.last().copied(), Some(dst));
        prop_assert!(out.hops <= 128);
        for w in out.path.windows(2) {
            prop_assert!(
                w[1].xor_distance(dst) < w[0].xor_distance(dst),
                "hop failed to make progress"
            );
        }
    }

    /// Routing table inserts never exceed capacity and lookups always
    /// return a strict improvement or nothing.
    #[test]
    fn table_invariants(
        owner in any::<u128>(),
        peers in prop::collection::vec(any::<u128>(), 1..100),
        target in any::<u128>(),
        cap in 1usize..6,
    ) {
        let owner = Guid::from_u128(owner);
        let target = Guid::from_u128(target);
        let mut t = RoutingTable::with_capacity(owner, cap);
        for &p in &peers {
            t.insert(Guid::from_u128(p));
        }
        // Each bucket holds at most `cap` entries, and every entry is in
        // the right bucket.
        for entry in t.iter() {
            let idx = t.bucket_index(entry).expect("entries are not the owner");
            prop_assert_eq!(owner.leading_equal_bits(entry) as usize, idx);
        }
        prop_assert!(t.len() <= cap * 128);
        if let Some(hop) = t.next_hop(target) {
            prop_assert!(hop.xor_distance(target) < owner.xor_distance(target));
        }
    }

    /// Wire codec round-trips arbitrary payloads.
    #[test]
    fn message_codec_roundtrip(
        id in any::<u128>(),
        src in any::<u128>(),
        dst in any::<u128>(),
        ttl in any::<u16>(),
        kind_pick in 0usize..MessageKind::ALL.len(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut m = Message::new(
            Guid::from_u128(id),
            Guid::from_u128(src),
            Guid::from_u128(dst),
            MessageKind::ALL[kind_pick],
            Bytes::from(payload),
        );
        m.ttl = ttl;
        let decoded = Message::decode(m.encode()).unwrap();
        prop_assert_eq!(decoded, m);
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decoder_never_panics(junk in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Message::decode(Bytes::from(junk));
    }
}
