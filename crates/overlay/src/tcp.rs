//! Bytes-on-the-wire transport: the SCINET over real TCP sockets.
//!
//! Every in-process transport in this crate routes by shared memory;
//! [`TcpTransport`] puts the same [`Transport`] contract on loopback
//! sockets so the federation layer — and the chaos suite wrapped
//! around it — runs unchanged over a real wire (ROADMAP item 1).
//!
//! Three mechanisms make that possible:
//!
//! * **Framing** reuses `sci-wal`'s tagged frame codec verbatim: every
//!   message travels as `len | tag | payload | crc`, reassembled from
//!   arbitrary kernel read boundaries by
//!   [`sci_wal::codec::StreamDecoder`]. `Incomplete` means "wait for
//!   more bytes"; `Corrupt` closes the connection and counts
//!   `net.tcp.corrupt_frames` — a damaged stream never yields a wrong
//!   frame (see `crates/wal/tests/stream_reassembly.rs`).
//! * **Peering handshake**: a dialer opens with `HELLO` (protocol
//!   version, node GUID and name, listener address, registration
//!   digest); the acceptor answers `WELCOME` (same fields plus a
//!   gossip list of known peers) or `REJECT` on version mismatch.
//!   When the two registration digests differ, a three-step
//!   anti-entropy exchange (`OFFER` → `DELTA` → `DELTA`) runs before
//!   either side trusts the link, so late joiners converge on the
//!   federation's replicated registration state during `join`.
//! * **Acked sends**: [`Transport::send`] writes the frame and blocks
//!   until the receiver acknowledges *enqueue* into its inbox. The
//!   inbox observed by any [`Transport::drain`] is therefore a pure
//!   function of the call sequence — which is exactly the property
//!   [`crate::fault::FaultyTransport`] needs for seed-exact chaos
//!   replay over real sockets.
//!
//! The transport binds every listener to `127.0.0.1:0` (the kernel
//! picks a free port), so parallel test runs never collide.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use bytes::Bytes;

use sci_telemetry::{Counter, Registry};
use sci_types::{Guid, SciError, SciResult, TransportLinkModel, VirtualDuration};
use sci_wal::codec::{encode_frame, wire, CodecError, Frame, StreamDecoder};

use crate::message::Message;
use crate::net::RouteOutcome;
use crate::stats::LoadStats;
use crate::transport::Transport;

/// Protocol version spoken by this build; a handshake between
/// different versions is rejected.
pub const TCP_PROTOCOL_VERSION: u32 = 1;

// Control-frame tags sit above the 0–8 range MessageKind occupies, so
// a frame's role is readable from its tag alone.
const TAG_HELLO: u8 = 0xE0;
const TAG_WELCOME: u8 = 0xE1;
const TAG_REJECT: u8 = 0xE2;
const TAG_SYNC_OFFER: u8 = 0xE3;
const TAG_SYNC_DELTA: u8 = 0xE4;
const TAG_ACK: u8 = 0xE5;

/// Socket read timeout: the granularity at which reader and acceptor
/// threads notice shutdown.
const READ_TIMEOUT: Duration = Duration::from_millis(25);
/// Acceptor poll interval while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// Read attempts before a handshake is abandoned (× [`READ_TIMEOUT`]).
const HANDSHAKE_ATTEMPTS: u32 = 200;
/// How long a send waits for the receiver's enqueue acknowledgement.
const ACK_TIMEOUT: Duration = Duration::from_secs(2);

/// Locks a mutex, recovering the guard if a panicking thread poisoned
/// it — counters and connection maps stay usable either way.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn codec_err(e: CodecError) -> SciError {
    SciError::Codec(e.to_string())
}

// ---------------------------------------------------------------------
// Replicated registration state (anti-entropy store)
// ---------------------------------------------------------------------

/// One replicated registration entry: a key/value pair stamped with a
/// Lamport version and its publishing node, tombstoned on retraction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SyncEntry {
    /// Registration key (e.g. `place/L10.01`).
    pub key: String,
    /// Registration value (e.g. the covering range's GUID rendering).
    pub value: String,
    /// Lamport stamp; higher wins, ties broken by `origin`.
    pub version: u64,
    /// The node that published this write.
    pub origin: Guid,
    /// `true` for a tombstone: the key is retracted but the fact of
    /// retraction still replicates.
    pub deleted: bool,
}

/// Per-entry summary exchanged in a sync `OFFER`: key, version, origin.
pub type SyncSummary = (String, u64, Guid);

/// A grow-only last-writer-wins map with tombstones — the node-local
/// replica of the federation's registration state.
#[derive(Clone, Debug, Default)]
pub struct SyncStore {
    entries: BTreeMap<String, SyncEntry>,
    clock: u64,
}

impl SyncStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SyncStore::default()
    }

    /// Publishes `key = value`, stamping it past everything seen.
    pub fn publish(&mut self, key: &str, value: &str, origin: Guid) -> SyncEntry {
        self.clock += 1;
        let entry = SyncEntry {
            key: key.to_owned(),
            value: value.to_owned(),
            version: self.clock,
            origin,
            deleted: false,
        };
        self.entries.insert(entry.key.clone(), entry.clone());
        entry
    }

    /// Tombstones `key`; the retraction replicates like any write.
    pub fn retract(&mut self, key: &str, origin: Guid) -> SyncEntry {
        self.clock += 1;
        let entry = SyncEntry {
            key: key.to_owned(),
            value: String::new(),
            version: self.clock,
            origin,
            deleted: true,
        };
        self.entries.insert(entry.key.clone(), entry.clone());
        entry
    }

    /// Merges a remote entry, last-writer-wins on `(version, origin)`.
    /// Returns whether the entry was applied (i.e. it was news).
    pub fn merge(&mut self, entry: SyncEntry) -> bool {
        self.clock = self.clock.max(entry.version);
        match self.entries.get(&entry.key) {
            Some(cur) if (cur.version, cur.origin) >= (entry.version, entry.origin) => false,
            _ => {
                self.entries.insert(entry.key.clone(), entry);
                true
            }
        }
    }

    /// The live (non-tombstoned) value of `key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .get(key)
            .filter(|e| !e.deleted)
            .map(|e| e.value.as_str())
    }

    /// Number of entries, tombstones included.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// FNV-1a 64 digest over the canonical (sorted) encoding of every
    /// entry, tombstones included. Equal digests ⇒ converged replicas.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for e in self.entries.values() {
            eat(e.key.as_bytes());
            eat(&[0xFF]);
            eat(e.value.as_bytes());
            eat(&e.version.to_be_bytes());
            eat(&e.origin.as_u128().to_be_bytes());
            eat(&[u8::from(e.deleted)]);
        }
        h
    }

    /// Per-entry summaries for a sync `OFFER`.
    pub fn summaries(&self) -> Vec<SyncSummary> {
        self.entries
            .values()
            .map(|e| (e.key.clone(), e.version, e.origin))
            .collect()
    }

    /// Given the remote side's summaries: the entries to send (ours
    /// that the remote lacks or holds older) and the keys to request
    /// (theirs that we lack or hold older).
    pub fn delta_for(&self, remote: &[SyncSummary]) -> (Vec<SyncEntry>, Vec<String>) {
        let theirs: HashMap<&str, (u64, Guid)> = remote
            .iter()
            .map(|(k, v, o)| (k.as_str(), (*v, *o)))
            .collect();
        let send = self
            .entries
            .values()
            .filter(|e| match theirs.get(e.key.as_str()) {
                None => true,
                Some(&(v, o)) => (v, o) < (e.version, e.origin),
            })
            .cloned()
            .collect();
        let want = remote
            .iter()
            .filter(|(k, v, o)| match self.entries.get(k) {
                None => true,
                Some(cur) => (cur.version, cur.origin) < (*v, *o),
            })
            .map(|(k, _, _)| k.clone())
            .collect();
        (send, want)
    }

    /// Full entries for `keys`, for answering a `DELTA` want-list.
    pub fn entries_for(&self, keys: &[String]) -> Vec<SyncEntry> {
        keys.iter()
            .filter_map(|k| self.entries.get(k).cloned())
            .collect()
    }
}

// ---------------------------------------------------------------------
// Wire encodings of the control frames
// ---------------------------------------------------------------------

/// Identity block shared by `HELLO` and `WELCOME`.
struct PeerHello {
    version: u32,
    guid: Guid,
    name: String,
    addr: SocketAddr,
    digest: u64,
}

#[derive(Clone, Debug)]
struct PeerInfo {
    guid: Guid,
    name: String,
    addr: SocketAddr,
}

fn put_identity(p: &mut Vec<u8>, version: u32, id: &PeerInfo, digest: u64) {
    wire::put_u32(p, version);
    wire::put_u128(p, id.guid.as_u128());
    wire::put_str(p, &id.name);
    wire::put_str(p, &id.addr.to_string());
    wire::put_u64(p, digest);
}

fn read_identity(r: &mut wire::Reader<'_>) -> SciResult<PeerHello> {
    let version = r.u32().map_err(codec_err)?;
    let guid = Guid::from_u128(r.u128().map_err(codec_err)?);
    let name = r.str().map_err(codec_err)?.to_owned();
    let addr_str = r.str().map_err(codec_err)?;
    let addr = addr_str
        .parse::<SocketAddr>()
        .map_err(|e| SciError::Codec(format!("bad listener address `{addr_str}`: {e}")))?;
    let digest = r.u64().map_err(codec_err)?;
    Ok(PeerHello {
        version,
        guid,
        name,
        addr,
        digest,
    })
}

fn hello_frame(version: u32, id: &PeerInfo, digest: u64) -> Frame {
    let mut p = Vec::new();
    put_identity(&mut p, version, id, digest);
    Frame::new(TAG_HELLO, p)
}

fn welcome_frame(version: u32, id: &PeerInfo, digest: u64, gossip: &[PeerInfo]) -> Frame {
    let mut p = Vec::new();
    put_identity(&mut p, version, id, digest);
    wire::put_u32(&mut p, gossip.len() as u32);
    for peer in gossip {
        wire::put_u128(&mut p, peer.guid.as_u128());
        wire::put_str(&mut p, &peer.name);
        wire::put_str(&mut p, &peer.addr.to_string());
    }
    Frame::new(TAG_WELCOME, p)
}

fn parse_welcome(payload: &[u8]) -> SciResult<(PeerHello, Vec<PeerInfo>)> {
    let mut r = wire::Reader::new(payload);
    let hello = read_identity(&mut r)?;
    let count = r.u32().map_err(codec_err)?;
    let mut gossip = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let guid = Guid::from_u128(r.u128().map_err(codec_err)?);
        let name = r.str().map_err(codec_err)?.to_owned();
        let addr_str = r.str().map_err(codec_err)?;
        let addr = addr_str
            .parse::<SocketAddr>()
            .map_err(|e| SciError::Codec(format!("bad gossip address `{addr_str}`: {e}")))?;
        gossip.push(PeerInfo { guid, name, addr });
    }
    Ok((hello, gossip))
}

fn reject_frame(version: u32, reason: &str) -> Frame {
    let mut p = Vec::new();
    wire::put_u32(&mut p, version);
    wire::put_str(&mut p, reason);
    Frame::new(TAG_REJECT, p)
}

fn parse_reject(payload: &[u8]) -> SciResult<(u32, String)> {
    let mut r = wire::Reader::new(payload);
    let version = r.u32().map_err(codec_err)?;
    let reason = r.str().map_err(codec_err)?.to_owned();
    Ok((version, reason))
}

fn offer_frame(summaries: &[SyncSummary]) -> Frame {
    let mut p = Vec::new();
    wire::put_u32(&mut p, summaries.len() as u32);
    for (key, version, origin) in summaries {
        wire::put_str(&mut p, key);
        wire::put_u64(&mut p, *version);
        wire::put_u128(&mut p, origin.as_u128());
    }
    Frame::new(TAG_SYNC_OFFER, p)
}

fn parse_offer(payload: &[u8]) -> SciResult<Vec<SyncSummary>> {
    let mut r = wire::Reader::new(payload);
    let count = r.u32().map_err(codec_err)?;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let key = r.str().map_err(codec_err)?.to_owned();
        let version = r.u64().map_err(codec_err)?;
        let origin = Guid::from_u128(r.u128().map_err(codec_err)?);
        out.push((key, version, origin));
    }
    Ok(out)
}

fn delta_frame(entries: &[SyncEntry], wants: &[String]) -> Frame {
    let mut p = Vec::new();
    wire::put_u32(&mut p, entries.len() as u32);
    for e in entries {
        wire::put_str(&mut p, &e.key);
        wire::put_str(&mut p, &e.value);
        wire::put_u64(&mut p, e.version);
        wire::put_u128(&mut p, e.origin.as_u128());
        wire::put_u8(&mut p, u8::from(e.deleted));
    }
    wire::put_u32(&mut p, wants.len() as u32);
    for key in wants {
        wire::put_str(&mut p, key);
    }
    Frame::new(TAG_SYNC_DELTA, p)
}

fn parse_delta(payload: &[u8]) -> SciResult<(Vec<SyncEntry>, Vec<String>)> {
    let mut r = wire::Reader::new(payload);
    let count = r.u32().map_err(codec_err)?;
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let key = r.str().map_err(codec_err)?.to_owned();
        let value = r.str().map_err(codec_err)?.to_owned();
        let version = r.u64().map_err(codec_err)?;
        let origin = Guid::from_u128(r.u128().map_err(codec_err)?);
        let deleted = r.u8().map_err(codec_err)? != 0;
        entries.push(SyncEntry {
            key,
            value,
            version,
            origin,
            deleted,
        });
    }
    let want_count = r.u32().map_err(codec_err)?;
    let mut wants = Vec::with_capacity(want_count as usize);
    for _ in 0..want_count {
        wants.push(r.str().map_err(codec_err)?.to_owned());
    }
    Ok((entries, wants))
}

fn ack_frame(seq: u64) -> Frame {
    let mut p = Vec::new();
    wire::put_u64(&mut p, seq);
    Frame::new(TAG_ACK, p)
}

fn data_frame(seq: u64, message: &Message) -> Frame {
    let mut p = Vec::new();
    wire::put_u64(&mut p, seq);
    wire::put_bytes(&mut p, &message.encode());
    Frame::new(message.kind.to_wire(), p)
}

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

#[derive(Clone)]
struct NetCounters {
    accepts: Counter,
    ack_timeouts: Counter,
    bytes_recv: Counter,
    bytes_sent: Counter,
    conns: Counter,
    corrupt_frames: Counter,
    frames_recv: Counter,
    frames_sent: Counter,
    handshake_rejected: Counter,
    handshakes: Counter,
    sync_applied: Counter,
    sync_rounds: Counter,
}

impl NetCounters {
    fn new(registry: &Registry) -> Self {
        NetCounters {
            accepts: registry.counter("net.tcp.accepts"),
            ack_timeouts: registry.counter("net.tcp.ack_timeouts"),
            bytes_recv: registry.counter("net.tcp.bytes.recv"),
            bytes_sent: registry.counter("net.tcp.bytes.sent"),
            conns: registry.counter("net.tcp.conns"),
            corrupt_frames: registry.counter("net.tcp.corrupt_frames"),
            frames_recv: registry.counter("net.tcp.frames.recv"),
            frames_sent: registry.counter("net.tcp.frames.sent"),
            handshake_rejected: registry.counter("net.tcp.handshake.rejected"),
            handshakes: registry.counter("net.tcp.handshakes"),
            sync_applied: registry.counter("net.tcp.sync.applied"),
            sync_rounds: registry.counter("net.tcp.sync.rounds"),
        }
    }
}

// ---------------------------------------------------------------------
// Connections and per-node shared state
// ---------------------------------------------------------------------

/// One established, handshaken connection to a peer. The stream is the
/// write half (sends and acks both go through it); a dedicated reader
/// thread owns a cloned handle for reads.
struct Conn {
    stream: Mutex<TcpStream>,
    ack_rx: Mutex<mpsc::Receiver<u64>>,
    next_seq: AtomicU64,
}

/// The part of a node's state shared with its acceptor and reader
/// threads.
struct NodeShared {
    guid: Guid,
    name: String,
    listen_addr: SocketAddr,
    version: u32,
    inbox_tx: mpsc::Sender<Message>,
    store: Mutex<SyncStore>,
    conns: Mutex<HashMap<Guid, Arc<Conn>>>,
    /// Peers this node could dial: learned from handshakes and gossip.
    directory: Mutex<HashMap<Guid, PeerInfo>>,
    shutdown: Arc<AtomicBool>,
    counters: NetCounters,
}

impl NodeShared {
    fn identity(&self) -> PeerInfo {
        PeerInfo {
            guid: self.guid,
            name: self.name.clone(),
            addr: self.listen_addr,
        }
    }
}

struct TcpNode {
    shared: Arc<NodeShared>,
    inbox_rx: mpsc::Receiver<Message>,
    accept_handle: Option<JoinHandle<()>>,
}

fn write_frame_direct(
    stream: &mut TcpStream,
    frame: &Frame,
    counters: &NetCounters,
) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(frame.encoded_len());
    encode_frame(frame, &mut out);
    stream.write_all(&out)?;
    stream.flush()?;
    counters.bytes_sent.add(out.len() as u64);
    counters.frames_sent.inc();
    Ok(())
}

fn write_frame(
    stream: &Mutex<TcpStream>,
    frame: &Frame,
    counters: &NetCounters,
) -> std::io::Result<()> {
    write_frame_direct(&mut lock(stream), frame, counters)
}

/// Reads exactly one frame during a handshake, blocking in
/// [`READ_TIMEOUT`] slices so shutdown is noticed promptly.
fn read_frame_sync(
    stream: &mut TcpStream,
    dec: &mut StreamDecoder,
    shared: &NodeShared,
) -> SciResult<Frame> {
    let mut buf = [0u8; 4096];
    for _ in 0..HANDSHAKE_ATTEMPTS {
        if let Some(frame) = dec.next_frame().map_err(codec_err)? {
            shared.counters.frames_recv.inc();
            return Ok(frame);
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            return Err(SciError::Stopped("tcp transport".into()));
        }
        match stream.read(&mut buf) {
            Ok(0) => return Err(SciError::Codec("connection closed during handshake".into())),
            Ok(n) => {
                shared.counters.bytes_recv.add(n as u64);
                dec.extend(&buf[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(SciError::Codec(format!("handshake read: {e}"))),
        }
    }
    Err(SciError::Codec("handshake timed out".into()))
}

/// Registers the handshaken `stream` as a live connection to `peer`
/// and spawns its reader thread (which inherits the decoder, in case
/// the peer pipelined frames behind the handshake).
fn finish_conn(shared: &Arc<NodeShared>, stream: TcpStream, dec: StreamDecoder, peer: Guid) {
    let (ack_tx, ack_rx) = mpsc::channel();
    let read_half = stream.try_clone().ok();
    let conn = Arc::new(Conn {
        stream: Mutex::new(stream),
        ack_rx: Mutex::new(ack_rx),
        next_seq: AtomicU64::new(1),
    });
    lock(&shared.conns).insert(peer, conn.clone());
    shared.counters.conns.inc();
    shared.counters.handshakes.inc();
    if let Some(read_stream) = read_half {
        let reader_shared = shared.clone();
        thread::spawn(move || run_reader(&reader_shared, &conn, &ack_tx, read_stream, dec));
    }
}

/// Per-connection reader: reassembles frames from the byte stream and
/// routes them — data to the inbox (acked on enqueue), acks to the
/// sender's channel, sync deltas into the registration store. Exits on
/// EOF, shutdown, I/O error or a corrupt frame.
fn run_reader(
    shared: &Arc<NodeShared>,
    conn: &Arc<Conn>,
    ack_tx: &mpsc::Sender<u64>,
    mut stream: TcpStream,
    mut dec: StreamDecoder,
) {
    let mut buf = [0u8; 8192];
    loop {
        loop {
            match dec.next_frame() {
                Ok(Some(frame)) => {
                    shared.counters.frames_recv.inc();
                    if !handle_frame(shared, conn, ack_tx, frame) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(CodecError::Incomplete { .. }) => break,
                Err(CodecError::Corrupt { .. }) => {
                    shared.counters.corrupt_frames.inc();
                    let _ = lock(&conn.stream).shutdown(Shutdown::Both);
                    return;
                }
            }
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                shared.counters.bytes_recv.add(n as u64);
                dec.extend(&buf[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Dispatches one reassembled frame; returns `false` when the
/// connection should close.
fn handle_frame(
    shared: &Arc<NodeShared>,
    conn: &Arc<Conn>,
    ack_tx: &mpsc::Sender<u64>,
    frame: Frame,
) -> bool {
    match frame.tag {
        TAG_ACK => {
            let mut r = wire::Reader::new(&frame.payload);
            if let Ok(seq) = r.u64() {
                let _ = ack_tx.send(seq);
            }
            true
        }
        TAG_SYNC_DELTA => {
            if let Ok((entries, _wants)) = parse_delta(&frame.payload) {
                let mut store = lock(&shared.store);
                for e in entries {
                    if store.merge(e) {
                        shared.counters.sync_applied.inc();
                    }
                }
            }
            true
        }
        // Handshake frames never arrive after a connection is live;
        // drop them rather than corrupting connection state.
        TAG_HELLO | TAG_WELCOME | TAG_REJECT | TAG_SYNC_OFFER => true,
        tag if tag <= 8 => {
            let mut r = wire::Reader::new(&frame.payload);
            let parsed = r.u64().ok().and_then(|seq| {
                let raw = r.bytes().ok()?;
                let msg = Message::decode(Bytes::from(raw.to_vec())).ok()?;
                Some((seq, msg))
            });
            match parsed {
                Some((seq, msg)) => {
                    // Enqueue strictly before the ack: a sender whose
                    // `send` returned Ok is guaranteed the message is
                    // already drainable at the destination.
                    let _ = shared.inbox_tx.send(msg);
                    let _ = write_frame(&conn.stream, &ack_frame(seq), &shared.counters);
                    true
                }
                None => {
                    shared.counters.corrupt_frames.inc();
                    false
                }
            }
        }
        _ => true,
    }
}

/// Acceptor loop: polls the nonblocking listener, runs the server side
/// of the handshake inline, then hands the socket to a reader thread.
fn run_acceptor(shared: &Arc<NodeShared>, listener: &TcpListener) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.accepts.inc();
                let _ = handle_accept(shared, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_accept(shared: &Arc<NodeShared>, mut stream: TcpStream) -> SciResult<()> {
    let io_err = |e: std::io::Error| SciError::Codec(format!("accept setup: {e}"));
    stream.set_nonblocking(false).map_err(io_err)?;
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(io_err)?;
    let _ = stream.set_nodelay(true);

    let mut dec = StreamDecoder::new();
    let frame = read_frame_sync(&mut stream, &mut dec, shared)?;
    if frame.tag != TAG_HELLO {
        return Err(SciError::Codec(format!(
            "expected HELLO, got tag {:#04x}",
            frame.tag
        )));
    }
    let mut r = wire::Reader::new(&frame.payload);
    let hello = read_identity(&mut r)?;

    if hello.version != shared.version {
        shared.counters.handshake_rejected.inc();
        let reject = reject_frame(
            shared.version,
            &format!(
                "protocol version mismatch: peer speaks {}, this node speaks {}",
                hello.version, shared.version
            ),
        );
        let _ = write_frame_direct(&mut stream, &reject, &shared.counters);
        return Ok(());
    }

    let own_digest = lock(&shared.store).digest();
    let gossip: Vec<PeerInfo> = lock(&shared.directory)
        .values()
        .filter(|p| p.guid != hello.guid)
        .cloned()
        .collect();
    let welcome = welcome_frame(shared.version, &shared.identity(), own_digest, &gossip);
    write_frame_direct(&mut stream, &welcome, &shared.counters)
        .map_err(|e| SciError::Codec(format!("welcome write: {e}")))?;

    lock(&shared.directory).insert(
        hello.guid,
        PeerInfo {
            guid: hello.guid,
            name: hello.name.clone(),
            addr: hello.addr,
        },
    );

    // Anti-entropy, acceptor side: both ends compare the same digest
    // pair (HELLO's vs WELCOME's), so they agree on whether it runs.
    if hello.digest != own_digest {
        let offer = read_frame_sync(&mut stream, &mut dec, shared)?;
        if offer.tag != TAG_SYNC_OFFER {
            return Err(SciError::Codec(format!(
                "expected SYNC_OFFER, got tag {:#04x}",
                offer.tag
            )));
        }
        let summaries = parse_offer(&offer.payload)?;
        let (send_entries, wants) = lock(&shared.store).delta_for(&summaries);
        let delta = delta_frame(&send_entries, &wants);
        write_frame_direct(&mut stream, &delta, &shared.counters)
            .map_err(|e| SciError::Codec(format!("delta write: {e}")))?;
        let reply = read_frame_sync(&mut stream, &mut dec, shared)?;
        if reply.tag != TAG_SYNC_DELTA {
            return Err(SciError::Codec(format!(
                "expected SYNC_DELTA, got tag {:#04x}",
                reply.tag
            )));
        }
        let (entries, _wants) = parse_delta(&reply.payload)?;
        let mut store = lock(&shared.store);
        for e in entries {
            if store.merge(e) {
                shared.counters.sync_applied.inc();
            }
        }
        drop(store);
        shared.counters.sync_rounds.inc();
    }

    finish_conn(shared, stream, dec, hello.guid);
    Ok(())
}

/// Dials `addr` from `local`, running the client side of the handshake
/// (and anti-entropy when digests differ). Returns the peer's GUID.
fn dial(local: &Arc<NodeShared>, addr: SocketAddr) -> SciResult<Guid> {
    let io_err = |e: std::io::Error| SciError::Codec(format!("dial {addr}: {e}"));
    let mut stream = TcpStream::connect(addr).map_err(io_err)?;
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(io_err)?;
    let _ = stream.set_nodelay(true);

    let own_digest = lock(&local.store).digest();
    let hello = hello_frame(local.version, &local.identity(), own_digest);
    write_frame_direct(&mut stream, &hello, &local.counters).map_err(io_err)?;

    let mut dec = StreamDecoder::new();
    let frame = read_frame_sync(&mut stream, &mut dec, local)?;
    let (welcome, gossip) = match frame.tag {
        TAG_WELCOME => parse_welcome(&frame.payload)?,
        TAG_REJECT => {
            let (version, reason) = parse_reject(&frame.payload)?;
            return Err(SciError::Codec(format!(
                "peer at {addr} (protocol {version}) rejected handshake: {reason}"
            )));
        }
        tag => {
            return Err(SciError::Codec(format!(
                "expected WELCOME or REJECT, got tag {tag:#04x}"
            )))
        }
    };

    {
        let mut dir = lock(&local.directory);
        dir.insert(
            welcome.guid,
            PeerInfo {
                guid: welcome.guid,
                name: welcome.name.clone(),
                addr,
            },
        );
        for peer in gossip {
            if peer.guid != local.guid {
                dir.entry(peer.guid).or_insert(peer);
            }
        }
    }

    // Anti-entropy, dialer side.
    if welcome.digest != own_digest {
        let summaries = lock(&local.store).summaries();
        write_frame_direct(&mut stream, &offer_frame(&summaries), &local.counters)
            .map_err(io_err)?;
        let reply = read_frame_sync(&mut stream, &mut dec, local)?;
        if reply.tag != TAG_SYNC_DELTA {
            return Err(SciError::Codec(format!(
                "expected SYNC_DELTA, got tag {:#04x}",
                reply.tag
            )));
        }
        let (entries, wants) = parse_delta(&reply.payload)?;
        let wanted = {
            let mut store = lock(&local.store);
            for e in entries {
                if store.merge(e) {
                    local.counters.sync_applied.inc();
                }
            }
            store.entries_for(&wants)
        };
        // Always answer, even with an empty delta, so the acceptor's
        // state machine sees a fixed three-message exchange.
        write_frame_direct(&mut stream, &delta_frame(&wanted, &[]), &local.counters)
            .map_err(io_err)?;
        local.counters.sync_rounds.inc();
    }

    finish_conn(local, stream, dec, welcome.guid);
    Ok(welcome.guid)
}

// ---------------------------------------------------------------------
// The transport
// ---------------------------------------------------------------------

/// A [`Transport`] over real loopback TCP sockets.
///
/// Each node owns a listener on `127.0.0.1:0` and an acceptor thread;
/// each established connection owns a reader thread. Sends are
/// synchronous and acked (see the module docs), so the federation and
/// chaos layers observe the same delivery semantics as
/// [`crate::net::SimNetwork`] — one hop, immediate drainability — with
/// every byte actually crossing the kernel's TCP stack.
pub struct TcpTransport {
    nodes: HashMap<Guid, TcpNode>,
    names: HashMap<String, Guid>,
    stats: LoadStats,
    registry: Registry,
    counters: NetCounters,
    version: u32,
    shutdown: Arc<AtomicBool>,
    hop_latency: VirtualDuration,
}

impl TcpTransport {
    /// Creates an empty transport speaking [`TCP_PROTOCOL_VERSION`].
    pub fn new() -> Self {
        let registry = Registry::new();
        let counters = NetCounters::new(&registry);
        TcpTransport {
            nodes: HashMap::new(),
            names: HashMap::new(),
            stats: LoadStats::new(),
            registry,
            counters,
            version: TCP_PROTOCOL_VERSION,
            shutdown: Arc::new(AtomicBool::new(false)),
            hop_latency: VirtualDuration::from_millis(1),
        }
    }

    /// Overrides the protocol version offered by nodes added *after*
    /// this call — the lever version-mismatch tests pull.
    pub fn set_protocol_version(&mut self, version: u32) {
        self.version = version;
    }

    /// The kernel-assigned listener address of `node`.
    pub fn listener_addr(&self, node: Guid) -> Option<SocketAddr> {
        self.nodes.get(&node).map(|n| n.shared.listen_addr)
    }

    /// Dials `addr` from `local` and completes the peering handshake,
    /// returning the remote node's GUID. The remote listener may
    /// belong to a different `TcpTransport` instance.
    ///
    /// # Errors
    ///
    /// Unknown `local` node, connection failure, handshake timeout or
    /// a `REJECT` from the peer (version mismatch).
    pub fn peer_with(&mut self, local: Guid, addr: SocketAddr) -> SciResult<Guid> {
        let shared = self
            .nodes
            .get(&local)
            .ok_or(SciError::UnknownRange(local))?
            .shared
            .clone();
        dial(&shared, addr)
    }

    /// Number of live (handshaken) connections held by `node`.
    pub fn connections_of(&self, node: Guid) -> usize {
        self.nodes
            .get(&node)
            .map(|n| lock(&n.shared.conns).len())
            .unwrap_or(0)
    }

    /// The live value of a replicated registration entry at `node`.
    pub fn registration_value(&self, node: Guid, key: &str) -> Option<String> {
        self.nodes
            .get(&node)
            .and_then(|n| lock(&n.shared.store).get(key).map(str::to_owned))
    }

    fn conn_to(&self, src: &Arc<NodeShared>, dst: Guid) -> Option<Arc<Conn>> {
        let _ = self;
        lock(&src.conns).get(&dst).cloned()
    }
}

impl Default for TcpTransport {
    fn default() -> Self {
        TcpTransport::new()
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("nodes", &self.nodes.len())
            .field("version", &self.version)
            .finish()
    }
}

impl Transport for TcpTransport {
    fn add_node(&mut self, guid: Guid, name: &str) -> SciResult<()> {
        if self.nodes.contains_key(&guid) {
            return Err(SciError::Internal(format!("duplicate node {guid}")));
        }
        if self.names.contains_key(name) {
            return Err(SciError::Internal(format!("duplicate range name `{name}`")));
        }
        let bind_err = |e: std::io::Error| SciError::Internal(format!("listener bind: {e}"));
        // Port 0: the kernel picks a free port, so parallel test runs
        // never collide on an address.
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(bind_err)?;
        listener.set_nonblocking(true).map_err(bind_err)?;
        let listen_addr = listener.local_addr().map_err(bind_err)?;
        let (inbox_tx, inbox_rx) = mpsc::channel();
        let shared = Arc::new(NodeShared {
            guid,
            name: name.to_owned(),
            listen_addr,
            version: self.version,
            inbox_tx,
            store: Mutex::new(SyncStore::new()),
            conns: Mutex::new(HashMap::new()),
            directory: Mutex::new(HashMap::new()),
            shutdown: self.shutdown.clone(),
            counters: self.counters.clone(),
        });
        let accept_shared = shared.clone();
        let accept_handle = thread::spawn(move || run_acceptor(&accept_shared, &listener));
        self.nodes.insert(
            guid,
            TcpNode {
                shared,
                inbox_rx,
                accept_handle: Some(accept_handle),
            },
        );
        self.names.insert(name.to_owned(), guid);
        Ok(())
    }

    fn find_by_name(&self, name: &str) -> Option<Guid> {
        self.names.get(name).copied()
    }

    fn connect_full(&mut self) {
        let infos: Vec<PeerInfo> = self.nodes.values().map(|n| n.shared.identity()).collect();
        // Everyone learns everyone's listener, so any pair is at least
        // dialable even before a live connection exists.
        for node in self.nodes.values() {
            let mut dir = lock(&node.shared.directory);
            for p in &infos {
                if p.guid != node.shared.guid {
                    dir.entry(p.guid).or_insert_with(|| p.clone());
                }
            }
        }
        // One dial per unordered pair: the acceptor registers the
        // reverse connection on its side of the same socket.
        let mut guids: Vec<Guid> = self.nodes.keys().copied().collect();
        guids.sort();
        for (i, &a) in guids.iter().enumerate() {
            for &b in &guids[i + 1..] {
                let (Some(na), Some(nb)) = (self.nodes.get(&a), self.nodes.get(&b)) else {
                    continue;
                };
                let shared = na.shared.clone();
                if self.conn_to(&shared, b).is_none() {
                    let _ = dial(&shared, nb.shared.listen_addr);
                }
            }
        }
    }

    fn join(&mut self, node: Guid, bootstrap: Guid, seed: u64) -> SciResult<()> {
        // Discovery over TCP is the peering handshake plus gossip; the
        // simulation's lookup seed has no socket equivalent.
        let _ = seed;
        let target = self
            .nodes
            .get(&bootstrap)
            .map(|n| n.shared.listen_addr)
            .ok_or(SciError::UnknownRange(bootstrap))?;
        let shared = self
            .nodes
            .get(&node)
            .ok_or(SciError::UnknownRange(node))?
            .shared
            .clone();
        dial(&shared, target)?;
        Ok(())
    }

    fn send(&mut self, message: Message) -> SciResult<RouteOutcome> {
        let (src, dst) = (message.src, message.dst);
        let unroutable = SciError::Unroutable { from: src, to: dst };
        let Some(node) = self.nodes.get(&src) else {
            self.stats.record_failure();
            return Err(unroutable);
        };
        let shared = node.shared.clone();
        // A live connection, or a lazy dial through the directory.
        let conn = match self.conn_to(&shared, dst) {
            Some(c) => c,
            None => {
                let addr = lock(&shared.directory).get(&dst).map(|p| p.addr);
                let dialed = match addr {
                    Some(a) => dial(&shared, a)
                        .ok()
                        .and_then(|_| self.conn_to(&shared, dst)),
                    None => None,
                };
                match dialed {
                    Some(c) => c,
                    None => {
                        self.stats.record_failure();
                        return Err(unroutable);
                    }
                }
            }
        };
        let seq = conn.next_seq.fetch_add(1, Ordering::Relaxed);
        if write_frame(&conn.stream, &data_frame(seq, &message), &shared.counters).is_err() {
            self.stats.record_failure();
            return Err(unroutable);
        }
        // Block until the receiver acked enqueue. Acks are per-conn and
        // monotonic, so anything below `seq` is a stale ack from a send
        // that already timed out — skip it.
        let acked = {
            let rx = lock(&conn.ack_rx);
            loop {
                match rx.recv_timeout(ACK_TIMEOUT) {
                    Ok(s) if s >= seq => break true,
                    Ok(_) => {}
                    Err(_) => break false,
                }
            }
        };
        if !acked {
            shared.counters.ack_timeouts.inc();
            self.stats.record_failure();
            return Err(unroutable);
        }
        self.stats.record_forward(src);
        self.stats.record_delivery(1);
        Ok(RouteOutcome {
            path: vec![src, dst],
            hops: 1,
            latency: self.hop_latency,
        })
    }

    fn drain(&mut self, node: Guid) -> Vec<Message> {
        self.nodes
            .get(&node)
            .map(|n| n.inbox_rx.try_iter().collect())
            .unwrap_or_default()
    }

    fn stats(&self) -> &LoadStats {
        &self.stats
    }

    fn telemetry(&self) -> Option<&Registry> {
        Some(&self.registry)
    }

    fn publish_registration(&mut self, node: Guid, key: &str, value: &str) -> SciResult<()> {
        let shared = self
            .nodes
            .get(&node)
            .ok_or(SciError::UnknownRange(node))?
            .shared
            .clone();
        let entry = lock(&shared.store).publish(key, value, node);
        broadcast_delta(&shared, &entry);
        Ok(())
    }

    fn retract_registration(&mut self, node: Guid, key: &str) -> SciResult<()> {
        let shared = self
            .nodes
            .get(&node)
            .ok_or(SciError::UnknownRange(node))?
            .shared
            .clone();
        let entry = lock(&shared.store).retract(key, node);
        broadcast_delta(&shared, &entry);
        Ok(())
    }

    fn registration_digest(&self, node: Guid) -> Option<u64> {
        self.nodes
            .get(&node)
            .map(|n| lock(&n.shared.store).digest())
    }

    fn link_model(&self) -> Option<Vec<TransportLinkModel>> {
        let mut links = Vec::new();
        for node in self.nodes.values() {
            let src = node.shared.guid;
            let live: Vec<Guid> = lock(&node.shared.conns).keys().copied().collect();
            for &dst in &live {
                links.push(TransportLinkModel {
                    src,
                    dst,
                    established: true,
                });
            }
            for &dst in lock(&node.shared.directory).keys() {
                if dst != src && !live.contains(&dst) {
                    links.push(TransportLinkModel {
                        src,
                        dst,
                        established: false,
                    });
                }
            }
        }
        links.sort_by_key(|l| (l.src, l.dst));
        Some(links)
    }
}

/// Pushes one freshly written entry to every live connection of the
/// publishing node, so connected peers converge without waiting for
/// the next handshake.
fn broadcast_delta(shared: &Arc<NodeShared>, entry: &SyncEntry) {
    let frame = delta_frame(std::slice::from_ref(entry), &[]);
    let conns: Vec<Arc<Conn>> = lock(&shared.conns).values().cloned().collect();
    for conn in conns {
        let _ = write_frame(&conn.stream, &frame, &shared.counters);
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for node in self.nodes.values_mut() {
            let conns: Vec<Arc<Conn>> = lock(&node.shared.conns).values().cloned().collect();
            for conn in conns {
                let _ = lock(&conn.stream).shutdown(Shutdown::Both);
            }
            if let Some(handle) = node.accept_handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::message::MessageKind;

    fn msg(id: u128, src: Guid, dst: Guid) -> Message {
        Message::new(
            Guid::from_u128(id),
            src,
            dst,
            MessageKind::EventRelay,
            Bytes::from_static(b"payload"),
        )
    }

    fn wait_until(mut cond: impl FnMut() -> bool) -> bool {
        for _ in 0..400 {
            if cond() {
                return true;
            }
            thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn roundtrip_over_real_sockets() {
        let mut t = TcpTransport::new();
        let a = Guid::from_u128(0xa);
        let b = Guid::from_u128(0xb);
        t.add_node(a, "a").unwrap();
        t.add_node(b, "b").unwrap();
        t.connect_full();
        let out = t.send(msg(1, a, b)).unwrap();
        assert_eq!(out.hops, 1);
        assert_eq!(out.path, vec![a, b]);
        // Acked send: the message is drainable the moment send returns.
        let delivered = t.drain(b);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].id, Guid::from_u128(1));
        assert!(t.drain(b).is_empty(), "drain consumes");
        assert_eq!(t.stats().delivered(), 1);
        let snap = t.telemetry().unwrap().snapshot();
        assert!(snap.counter("net.tcp.handshakes") >= 2);
        assert!(snap.counter("net.tcp.frames.sent") >= 2);
        assert!(snap.counter("net.tcp.bytes.recv") > 0);
    }

    #[test]
    fn reverse_direction_works_on_the_same_socket_pair() {
        let mut t = TcpTransport::new();
        let a = Guid::from_u128(0xa);
        let b = Guid::from_u128(0xb);
        t.add_node(a, "a").unwrap();
        t.add_node(b, "b").unwrap();
        t.connect_full();
        t.send(msg(1, a, b)).unwrap();
        assert!(
            wait_until(|| t.connections_of(b) == 1),
            "acceptor registers the reverse connection"
        );
        t.send(msg(2, b, a)).unwrap();
        assert_eq!(t.drain(a).len(), 1);
        assert_eq!(t.drain(b).len(), 1);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut old = TcpTransport::new();
        let a = Guid::from_u128(0xa);
        old.add_node(a, "a").unwrap();

        let mut new = TcpTransport::new();
        new.set_protocol_version(TCP_PROTOCOL_VERSION + 1);
        let b = Guid::from_u128(0xb);
        new.add_node(b, "b").unwrap();

        let err = old
            .peer_with(a, new.listener_addr(b).unwrap())
            .expect_err("mismatched versions must not peer");
        assert!(
            err.to_string().contains("rejected"),
            "dialer learns the rejection: {err}"
        );
        assert_eq!(
            new.telemetry()
                .unwrap()
                .snapshot()
                .counter("net.tcp.handshake.rejected"),
            1
        );
        assert_eq!(old.connections_of(a), 0);
    }

    #[test]
    fn late_joiner_converges_through_anti_entropy() {
        let mut t = TcpTransport::new();
        let a = Guid::from_u128(0xa);
        let b = Guid::from_u128(0xb);
        t.add_node(a, "a").unwrap();
        t.publish_registration(a, "place/L10.01", "range-a")
            .unwrap();
        t.publish_registration(a, "place/lobby", "range-a").unwrap();
        t.retract_registration(a, "place/lobby").unwrap();

        t.add_node(b, "b").unwrap();
        assert_ne!(t.registration_digest(a), t.registration_digest(b));
        t.join(b, a, 0).unwrap();
        assert_eq!(
            t.registration_digest(a),
            t.registration_digest(b),
            "handshake anti-entropy converges the late joiner"
        );
        assert_eq!(
            t.registration_value(b, "place/L10.01").as_deref(),
            Some("range-a")
        );
        assert_eq!(
            t.registration_value(b, "place/lobby"),
            None,
            "tombstones replicate as absence"
        );
        assert!(
            t.telemetry()
                .unwrap()
                .snapshot()
                .counter("net.tcp.sync.rounds")
                >= 1
        );
    }

    #[test]
    fn live_publish_propagates_to_connected_peers() {
        let mut t = TcpTransport::new();
        let a = Guid::from_u128(0xa);
        let b = Guid::from_u128(0xb);
        t.add_node(a, "a").unwrap();
        t.add_node(b, "b").unwrap();
        t.connect_full();
        t.publish_registration(a, "place/L10.02", "range-a")
            .unwrap();
        assert!(
            wait_until(|| t.registration_value(b, "place/L10.02").is_some()),
            "live delta reaches the connected peer"
        );
        assert!(
            wait_until(|| t.registration_digest(a) == t.registration_digest(b)),
            "stores converge"
        );
    }

    #[test]
    fn gossip_makes_third_parties_dialable() {
        let mut t = TcpTransport::new();
        let a = Guid::from_u128(0xa);
        let b = Guid::from_u128(0xb);
        let c = Guid::from_u128(0xc);
        t.add_node(a, "a").unwrap();
        t.add_node(b, "b").unwrap();
        t.add_node(c, "c").unwrap();
        // a ↔ b live; then c joins via a and learns b from gossip.
        t.join(b, a, 0).unwrap();
        assert!(wait_until(|| t.connections_of(a) == 1));
        t.join(c, a, 0).unwrap();
        let links = t.link_model().unwrap();
        assert!(
            links
                .iter()
                .any(|l| l.src == c && l.dst == b && !l.established),
            "gossip made b dialable from c: {links:?}"
        );
        // The lazy dial turns the dialable link into a live one.
        t.send(msg(9, c, b)).unwrap();
        assert_eq!(t.drain(b).len(), 1);
        let links = t.link_model().unwrap();
        assert!(links
            .iter()
            .any(|l| l.src == c && l.dst == b && l.established));
    }

    #[test]
    fn sync_store_merge_is_lww_with_tombstones() {
        let origin_a = Guid::from_u128(1);
        let origin_b = Guid::from_u128(2);
        let mut s = SyncStore::new();
        s.publish("k", "old", origin_a);
        let newer = SyncEntry {
            key: "k".into(),
            value: "new".into(),
            version: 9,
            origin: origin_b,
            deleted: false,
        };
        assert!(s.merge(newer.clone()));
        assert!(!s.merge(newer), "replays are idempotent");
        assert_eq!(s.get("k"), Some("new"));
        // A publish after merging version 9 must stamp past it.
        let e = s.publish("k2", "v", origin_a);
        assert!(e.version > 9, "lamport clock advanced by merge");
        s.retract("k", origin_a);
        assert_eq!(s.get("k"), None);
        assert_eq!(s.len(), 2, "tombstone still replicates");
    }

    #[test]
    fn unknown_destination_is_unroutable() {
        let mut t = TcpTransport::new();
        let a = Guid::from_u128(0xa);
        t.add_node(a, "a").unwrap();
        let ghost = Guid::from_u128(0xdead);
        assert!(matches!(
            t.send(msg(1, a, ghost)),
            Err(SciError::Unroutable { .. })
        ));
        assert_eq!(t.stats().failed(), 1);
    }
}
