//! Transport abstraction over the SCINET.
//!
//! The federation layer needs exactly three capabilities from the
//! overlay: *route* a message to a destination range (accounting hops
//! and latency), let the destination *deliver* (drain) what arrived,
//! and expose routing *stats*. [`Transport`] captures that surface so
//! drivers can swap the wire:
//!
//! * [`crate::net::SimNetwork`] — the deterministic single-threaded
//!   simulation every experiment runs on;
//! * [`ThreadedTransport`] — the same Kademlia routing fabric, but with
//!   channel-backed mailboxes whose sending halves are `Clone + Send`,
//!   so concurrent producers (one runtime thread per range) can deliver
//!   into a node's inbox without sharing the router.

use std::collections::HashMap;

use crossbeam::channel::{unbounded, Receiver, Sender};

use sci_types::{Guid, SciResult};

use crate::message::Message;
use crate::net::{RouteOutcome, SimNetwork};
use crate::stats::LoadStats;

/// The overlay surface the federation layer depends on: route +
/// deliver + stats, plus the topology bootstrap calls.
pub trait Transport {
    /// Adds a node (one per range).
    ///
    /// # Errors
    ///
    /// Rejects duplicate GUIDs or range names.
    fn add_node(&mut self, guid: Guid, name: &str) -> SciResult<()>;

    /// Resolves a range name to its node GUID.
    fn find_by_name(&self, name: &str) -> Option<Guid>;

    /// Gives every node full overlay knowledge.
    fn connect_full(&mut self);

    /// Joins `node` through `bootstrap` using the discovery protocol.
    ///
    /// # Errors
    ///
    /// As for [`crate::discovery::join`].
    fn join(&mut self, node: Guid, bootstrap: Guid, seed: u64) -> SciResult<()>;

    /// Routes a message hop-by-hop and delivers it to the destination
    /// mailbox, returning the route taken.
    ///
    /// # Errors
    ///
    /// As for [`SimNetwork::route`]: unknown endpoints, partitions,
    /// routing failure.
    fn send(&mut self, message: Message) -> SciResult<RouteOutcome>;

    /// Removes and returns everything delivered to `node`'s mailbox.
    fn drain(&mut self, node: Guid) -> Vec<Message>;

    /// Cumulative routing statistics.
    fn stats(&self) -> &LoadStats;

    /// Releases any traffic the transport is holding back (delayed
    /// messages in a fault-injecting decorator, for example). Default:
    /// nothing is ever held, so nothing to do.
    fn flush(&mut self) {}

    /// The transport's own telemetry registry, if it keeps one (the
    /// fault layer's injection counters, for example). Default: none.
    fn telemetry(&self) -> Option<&sci_telemetry::Registry> {
        None
    }

    /// The transport's declared fault schedule (seed, probabilities,
    /// named partitions), if it injects faults. Federations fold this
    /// into the [`FederationModel`](sci_types::FederationModel) that
    /// `sci-analysis` checks before runtime. Default: none — the
    /// transport is fault-free as far as static analysis can tell.
    fn fault_model(&self) -> Option<sci_types::FaultSchedule> {
        None
    }

    /// Publishes one entry of `node`'s replicated registration state
    /// (range adverts, place coverage) into the transport's
    /// anti-entropy store, if it keeps one. In-process transports
    /// share memory, so replication is a no-op for them.
    ///
    /// # Errors
    ///
    /// Transport-specific; the defaults never fail.
    fn publish_registration(&mut self, node: Guid, key: &str, value: &str) -> SciResult<()> {
        let _ = (node, key, value);
        Ok(())
    }

    /// Tombstones a previously published registration entry so peers
    /// converge on its absence. No-op for in-process transports.
    ///
    /// # Errors
    ///
    /// Transport-specific; the defaults never fail.
    fn retract_registration(&mut self, node: Guid, key: &str) -> SciResult<()> {
        let _ = (node, key);
        Ok(())
    }

    /// A digest over `node`'s replicated registration state — equal
    /// digests mean converged stores. `None` when the transport keeps
    /// no anti-entropy store.
    fn registration_digest(&self, node: Guid) -> Option<u64> {
        let _ = node;
        None
    }

    /// The wire-level peerings this transport holds or can open, for
    /// the [`FederationModel`](sci_types::FederationModel)'s SCI-A207
    /// check. `None` (the default) declares an in-process transport:
    /// reachability is free and there is nothing to verify.
    fn link_model(&self) -> Option<Vec<sci_types::TransportLinkModel>> {
        None
    }
}

impl Transport for SimNetwork {
    fn add_node(&mut self, guid: Guid, name: &str) -> SciResult<()> {
        SimNetwork::add_node(self, guid, name)
    }

    fn find_by_name(&self, name: &str) -> Option<Guid> {
        SimNetwork::find_by_name(self, name)
    }

    fn connect_full(&mut self) {
        self.populate_full();
    }

    fn join(&mut self, node: Guid, bootstrap: Guid, seed: u64) -> SciResult<()> {
        crate::discovery::join(self, node, bootstrap, seed)
    }

    fn send(&mut self, message: Message) -> SciResult<RouteOutcome> {
        SimNetwork::send(self, message)
    }

    fn drain(&mut self, node: Guid) -> Vec<Message> {
        self.node_mut(node)
            .map(|n| n.drain_inbox())
            .unwrap_or_default()
    }

    fn stats(&self) -> &LoadStats {
        SimNetwork::stats(self)
    }
}

/// A transport whose mailboxes are channels instead of in-router
/// inboxes.
///
/// Routing (path computation, hop/latency accounting, failure
/// injection) still runs through an owned [`SimNetwork`] — the fabric —
/// but a delivered message lands in a per-node channel. The sending
/// half of each mailbox can be cloned out with
/// [`ThreadedTransport::sender_for`] and shipped to another thread, and
/// the receiving half handed off wholesale with
/// [`ThreadedTransport::take_receiver`] so a range's runtime thread can
/// block on its own inbox.
pub struct ThreadedTransport {
    router: SimNetwork,
    senders: HashMap<Guid, Sender<Message>>,
    receivers: HashMap<Guid, Receiver<Message>>,
}

impl ThreadedTransport {
    /// Creates an empty transport.
    pub fn new() -> Self {
        ThreadedTransport {
            router: SimNetwork::new(),
            senders: HashMap::new(),
            receivers: HashMap::new(),
        }
    }

    /// Read access to the routing fabric.
    pub fn router(&self) -> &SimNetwork {
        &self.router
    }

    /// Mutable access to the routing fabric, for failure injection.
    pub fn router_mut(&mut self) -> &mut SimNetwork {
        &mut self.router
    }

    /// A clonable producer handle for `node`'s mailbox; any thread
    /// holding one can deliver into the node without the router.
    pub fn sender_for(&self, node: Guid) -> Option<Sender<Message>> {
        self.senders.get(&node).cloned()
    }

    /// Hands the consuming half of `node`'s mailbox to the caller
    /// (typically a per-range worker thread). After this,
    /// [`Transport::drain`] on that node returns nothing — the new
    /// owner drains instead.
    pub fn take_receiver(&mut self, node: Guid) -> Option<Receiver<Message>> {
        self.receivers.remove(&node)
    }
}

impl Default for ThreadedTransport {
    fn default() -> Self {
        ThreadedTransport::new()
    }
}

impl std::fmt::Debug for ThreadedTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedTransport")
            .field("nodes", &self.senders.len())
            .finish()
    }
}

impl Transport for ThreadedTransport {
    fn add_node(&mut self, guid: Guid, name: &str) -> SciResult<()> {
        self.router.add_node(guid, name)?;
        let (tx, rx) = unbounded();
        self.senders.insert(guid, tx);
        self.receivers.insert(guid, rx);
        Ok(())
    }

    fn find_by_name(&self, name: &str) -> Option<Guid> {
        self.router.find_by_name(name)
    }

    fn connect_full(&mut self) {
        self.router.populate_full();
    }

    fn join(&mut self, node: Guid, bootstrap: Guid, seed: u64) -> SciResult<()> {
        crate::discovery::join(&mut self.router, node, bootstrap, seed)
    }

    fn send(&mut self, message: Message) -> SciResult<RouteOutcome> {
        // The fabric computes the path and accounts load; delivery goes
        // through the destination's channel so the inbox is shareable
        // across threads.
        let dst = message.dst;
        let outcome = self.router.route(message.src, dst)?;
        if let Some(tx) = self.senders.get(&dst) {
            // A send can only fail if the receiving half was taken and
            // dropped — the node is gone; routing already vouched for
            // its liveness, so treat it as delivered to a dead letter.
            let _ = tx.send(message);
        }
        Ok(outcome)
    }

    fn drain(&mut self, node: Guid) -> Vec<Message> {
        self.receivers
            .get(&node)
            .map(|rx| rx.try_iter().collect())
            .unwrap_or_default()
    }

    fn stats(&self) -> &LoadStats {
        self.router.stats()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::message::MessageKind;
    use bytes::Bytes;

    fn msg(id: u128, src: Guid, dst: Guid) -> Message {
        Message::new(
            Guid::from_u128(id),
            src,
            dst,
            MessageKind::Ping,
            Bytes::new(),
        )
    }

    fn two_nodes<T: Transport>(t: &mut T) -> (Guid, Guid) {
        let a = Guid::from_u128(0xa);
        let b = Guid::from_u128(0xb);
        t.add_node(a, "a").unwrap();
        t.add_node(b, "b").unwrap();
        t.connect_full();
        (a, b)
    }

    #[test]
    fn sim_network_transport_roundtrip() {
        let mut t = SimNetwork::new();
        let (a, b) = two_nodes(&mut t);
        let out = Transport::send(&mut t, msg(1, a, b)).unwrap();
        assert!(out.hops >= 1);
        let delivered = t.drain(b);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].id, Guid::from_u128(1));
        assert!(t.drain(b).is_empty(), "drain consumes");
    }

    #[test]
    fn threaded_transport_delivers_through_channels() {
        let mut t = ThreadedTransport::new();
        let (a, b) = two_nodes(&mut t);
        t.send(msg(2, a, b)).unwrap();
        let delivered = t.drain(b);
        assert_eq!(delivered.len(), 1);
        assert_eq!(Transport::stats(&t).delivered(), 1);
    }

    #[test]
    fn threaded_transport_mailbox_crosses_threads() {
        let mut t = ThreadedTransport::new();
        let (a, b) = two_nodes(&mut t);
        let rx = t.take_receiver(b).unwrap();
        let consumer = std::thread::spawn(move || rx.recv().unwrap().id);
        t.send(msg(3, a, b)).unwrap();
        assert_eq!(consumer.join().unwrap(), Guid::from_u128(3));
        assert!(t.drain(b).is_empty(), "receiver was handed off");
    }

    #[test]
    fn threaded_transport_direct_sender_bypasses_router() {
        let mut t = ThreadedTransport::new();
        let (a, b) = two_nodes(&mut t);
        let tx = t.sender_for(b).unwrap();
        let producer = std::thread::spawn(move || {
            tx.send(msg(4, a, b)).unwrap();
        });
        producer.join().unwrap();
        assert_eq!(t.drain(b).len(), 1);
        assert_eq!(Transport::stats(&t).delivered(), 0, "no route taken");
    }

    #[test]
    fn threaded_transport_respects_partitions() {
        let mut t = ThreadedTransport::new();
        let (a, b) = two_nodes(&mut t);
        t.router_mut().set_partition(b, 1).unwrap();
        assert!(t.send(msg(5, a, b)).is_err());
        assert!(t.drain(b).is_empty());
    }
}
