//! Deterministic fault injection for any [`Transport`].
//!
//! Pervasive environments face churn as the norm, not the exception:
//! entities arrive and depart, links lose and reorder packets, and
//! whole Ranges fall off the overlay for a while. [`FaultyTransport`]
//! wraps an inner transport and injects exactly those failures — per
//! message, from a seeded PRNG — so every chaotic run is replayable
//! from a single `u64` seed.
//!
//! Fault model, decided per [`Transport::send`] in a fixed draw order
//! (four PRNG draws per send, taken unconditionally, so the schedule
//! depends only on the seed and the call sequence):
//!
//! 1. **partition** — if source and destination sit in different named
//!    partition groups, the send fails outright (no PRNG draw).
//! 2. **drop** — with probability [`FaultProbs::drop`] the send reports
//!    failure. A second draw against [`FaultProbs::ack_loss`] decides
//!    whether the message nonetheless reached the destination (ack
//!    loss — the dangerous half of at-least-once delivery) or vanished
//!    entirely (request loss).
//! 3. **delay** — with probability [`FaultProbs::delay`] the message is
//!    held in an internal queue and the send reports failure; the queue
//!    drains into the inner transport on [`Transport::flush`].
//! 4. **duplicate** — with probability [`FaultProbs::duplicate`] the
//!    message is delivered twice; the send reports success.
//!
//! [`Transport::drain`] additionally reverses the drained batch with
//! probability [`FaultProbs::reorder`] whenever it holds two or more
//! messages.
//!
//! Every injected fault is counted in a [`sci_telemetry::Registry`]
//! (`fault.drops`, `fault.delays`, `fault.dups`, `fault.reorders`,
//! `fault.partition_blocks`), surfaced through
//! [`Transport::telemetry`] so federation snapshots can fold the
//! injection schedule into the same view as the recovery counters it
//! provokes.
//!
//! The layer is strictly a decorator: code that does not wrap its
//! transport pays nothing.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sci_telemetry::{Counter, Registry};
use sci_types::{FaultModel, FaultSchedule, Guid, LinkFaultModel, SciError, SciResult};

use crate::message::Message;
use crate::net::RouteOutcome;
use crate::stats::LoadStats;
use crate::transport::Transport;

/// Per-link fault probabilities, each in `0.0..=1.0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProbs {
    /// Probability a send reports failure (see [`FaultProbs::ack_loss`]
    /// for whether the message was actually lost).
    pub drop: f64,
    /// Probability a send is held back and released only on
    /// [`Transport::flush`]; the sender sees a failure.
    pub delay: f64,
    /// Probability a successful send delivers the message twice.
    pub duplicate: f64,
    /// Probability a drained mailbox of two or more messages is
    /// reversed.
    pub reorder: f64,
    /// Given a drop, the probability the message was delivered anyway
    /// (ack loss) rather than lost outright (request loss). `1.0` makes
    /// every "failed" send an at-least-once delivery, which is the
    /// worst case for exactly-once relay layers.
    pub ack_loss: f64,
}

impl FaultProbs {
    /// No faults at all.
    pub const NONE: FaultProbs = FaultProbs {
        drop: 0.0,
        delay: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        ack_loss: 0.0,
    };

    /// A balanced lossy link: drops (half of them ack losses), delays,
    /// duplicates and reorders, each at the given base rate.
    pub fn lossy(rate: f64) -> FaultProbs {
        FaultProbs {
            drop: rate,
            delay: rate,
            duplicate: rate,
            reorder: rate,
            ack_loss: 0.5,
        }
    }
}

impl Default for FaultProbs {
    fn default() -> Self {
        FaultProbs::NONE
    }
}

struct FaultCounters {
    drops: Counter,
    delays: Counter,
    dups: Counter,
    reorders: Counter,
    partition_blocks: Counter,
}

impl FaultCounters {
    fn new(registry: &Registry) -> Self {
        FaultCounters {
            drops: registry.counter("fault.drops"),
            delays: registry.counter("fault.delays"),
            dups: registry.counter("fault.dups"),
            reorders: registry.counter("fault.reorders"),
            partition_blocks: registry.counter("fault.partition_blocks"),
        }
    }
}

/// A fault-injecting decorator around any [`Transport`].
///
/// All randomness comes from one [`StdRng`] seeded at construction;
/// given the same seed and the same sequence of transport calls, the
/// injected fault schedule is identical — a failing chaos run is
/// reproduced by its seed alone.
pub struct FaultyTransport<T> {
    inner: T,
    rng: StdRng,
    seed: u64,
    default_probs: FaultProbs,
    link_probs: HashMap<(Guid, Guid), FaultProbs>,
    /// Node → named partition group; nodes in different groups cannot
    /// exchange messages. Absent means the common default group.
    partitions: HashMap<Guid, String>,
    delayed: VecDeque<Message>,
    registry: Registry,
    counters: FaultCounters,
}

impl<T> std::fmt::Debug for FaultyTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyTransport")
            .field("seed", &self.seed)
            .field("probs", &self.default_probs)
            .field("delayed", &self.delayed.len())
            .finish()
    }
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with a fault layer driven by `seed`. Starts with
    /// [`FaultProbs::NONE`]: no faults until probabilities are raised,
    /// so topology setup can run clean.
    pub fn new(inner: T, seed: u64) -> Self {
        let registry = Registry::new();
        let counters = FaultCounters::new(&registry);
        FaultyTransport {
            inner,
            rng: StdRng::seed_from_u64(seed),
            seed,
            default_probs: FaultProbs::NONE,
            link_probs: HashMap::new(),
            partitions: HashMap::new(),
            delayed: VecDeque::new(),
            registry,
            counters,
        }
    }

    /// The seed this schedule replays from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Read access to the wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Sets the fault probabilities applied to every link without an
    /// override.
    pub fn set_default_probs(&mut self, probs: FaultProbs) {
        self.default_probs = probs;
    }

    /// Overrides the fault probabilities of the directed link
    /// `src → dst`.
    pub fn set_link_probs(&mut self, src: Guid, dst: Guid, probs: FaultProbs) {
        self.link_probs.insert((src, dst), probs);
    }

    /// Assigns `nodes` to the named partition group. Messages cannot
    /// cross group boundaries; nodes never assigned a group share an
    /// implicit default group.
    pub fn partition(&mut self, name: &str, nodes: &[Guid]) {
        for &n in nodes {
            self.partitions.insert(n, name.to_owned());
        }
    }

    /// Removes every named partition (held-back traffic stays queued
    /// until [`Transport::flush`]).
    pub fn heal_partitions(&mut self) {
        self.partitions.clear();
    }

    /// Full recovery: clears partitions and link overrides, zeroes the
    /// default probabilities, and flushes all delayed traffic — the
    /// "eventual connectivity" phase of a chaos schedule.
    pub fn heal(&mut self) {
        self.partitions.clear();
        self.link_probs.clear();
        self.default_probs = FaultProbs::NONE;
        self.flush_delayed();
    }

    /// Messages currently held back by delay faults or partitions.
    pub fn delayed_len(&self) -> usize {
        self.delayed.len()
    }

    /// Injected-fault counters: `fault.drops`, `fault.delays`,
    /// `fault.dups`, `fault.reorders`, `fault.partition_blocks`.
    pub fn fault_registry(&self) -> &Registry {
        &self.registry
    }

    fn blocked(&self, src: Guid, dst: Guid) -> bool {
        const DEFAULT_GROUP: &str = "";
        let a = self.partitions.get(&src).map_or(DEFAULT_GROUP, |s| s);
        let b = self.partitions.get(&dst).map_or(DEFAULT_GROUP, |s| s);
        a != b
    }

    fn probs_for(&self, src: Guid, dst: Guid) -> FaultProbs {
        self.link_probs
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_probs)
    }

    fn flush_delayed(&mut self) {
        let held = std::mem::take(&mut self.delayed);
        for msg in held {
            if self.blocked(msg.src, msg.dst) {
                self.delayed.push_back(msg);
            } else {
                // The destination may be dead or unroutable in the
                // inner transport; a delayed message that cannot land
                // is simply lost, like any packet in flight at the
                // wrong moment.
                let _ = self.inner.send(msg);
            }
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn add_node(&mut self, guid: Guid, name: &str) -> SciResult<()> {
        self.inner.add_node(guid, name)
    }

    fn find_by_name(&self, name: &str) -> Option<Guid> {
        self.inner.find_by_name(name)
    }

    fn connect_full(&mut self) {
        self.inner.connect_full();
    }

    fn join(&mut self, node: Guid, bootstrap: Guid, seed: u64) -> SciResult<()> {
        self.inner.join(node, bootstrap, seed)
    }

    fn send(&mut self, message: Message) -> SciResult<RouteOutcome> {
        let (src, dst) = (message.src, message.dst);
        if self.blocked(src, dst) {
            self.counters.partition_blocks.inc();
            return Err(SciError::Unroutable { from: src, to: dst });
        }
        let p = self.probs_for(src, dst);
        // Four unconditional draws per send keep the schedule a pure
        // function of (seed, call sequence), whatever branches fire.
        let drop_roll = self.rng.gen::<f64>();
        let ack_roll = self.rng.gen::<f64>();
        let delay_roll = self.rng.gen::<f64>();
        let dup_roll = self.rng.gen::<f64>();
        if drop_roll < p.drop {
            self.counters.drops.inc();
            if ack_roll < p.ack_loss {
                // Ack loss: the message lands, but the sender is told
                // it did not — retransmission will duplicate it.
                let _ = self.inner.send(message);
            }
            return Err(SciError::Unroutable { from: src, to: dst });
        }
        if delay_roll < p.delay {
            self.counters.delays.inc();
            self.delayed.push_back(message);
            return Err(SciError::Unroutable { from: src, to: dst });
        }
        let outcome = self.inner.send(message.clone())?;
        if dup_roll < p.duplicate {
            self.counters.dups.inc();
            let _ = self.inner.send(message);
        }
        Ok(outcome)
    }

    fn drain(&mut self, node: Guid) -> Vec<Message> {
        let mut messages = self.inner.drain(node);
        if messages.len() >= 2 {
            let p = self.probs_for(node, node);
            if self.rng.gen::<f64>() < p.reorder {
                self.counters.reorders.inc();
                messages.reverse();
            }
        }
        messages
    }

    fn stats(&self) -> &LoadStats {
        self.inner.stats()
    }

    fn flush(&mut self) {
        self.inner.flush();
        self.flush_delayed();
    }

    fn telemetry(&self) -> Option<&Registry> {
        Some(&self.registry)
    }

    fn publish_registration(&mut self, node: Guid, key: &str, value: &str) -> SciResult<()> {
        // Registration replication is control-plane traffic; the fault
        // layer targets the data plane, so it passes through clean.
        self.inner.publish_registration(node, key, value)
    }

    fn retract_registration(&mut self, node: Guid, key: &str) -> SciResult<()> {
        self.inner.retract_registration(node, key)
    }

    fn registration_digest(&self, node: Guid) -> Option<u64> {
        self.inner.registration_digest(node)
    }

    fn link_model(&self) -> Option<Vec<sci_types::TransportLinkModel>> {
        self.inner.link_model()
    }

    fn fault_model(&self) -> Option<FaultSchedule> {
        let mut link_probs: Vec<LinkFaultModel> = self
            .link_probs
            .iter()
            .map(|(&(src, dst), &p)| LinkFaultModel {
                src,
                dst,
                probs: export_probs(p),
            })
            .collect();
        link_probs.sort_by_key(|l| (l.src, l.dst));
        let mut partitions: Vec<(Guid, String)> = self
            .partitions
            .iter()
            .map(|(&n, g)| (n, g.clone()))
            .collect();
        partitions.sort();
        Some(FaultSchedule {
            seed: self.seed,
            default_probs: export_probs(self.default_probs),
            link_probs,
            partitions,
        })
    }
}

/// Converts the overlay's [`FaultProbs`] into the dependency-free
/// mirror `sci-analysis` consumes.
fn export_probs(p: FaultProbs) -> FaultModel {
    FaultModel {
        drop: p.drop,
        delay: p.delay,
        duplicate: p.duplicate,
        reorder: p.reorder,
        ack_loss: p.ack_loss,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::message::MessageKind;
    use crate::net::SimNetwork;
    use bytes::Bytes;

    fn msg(id: u128, src: Guid, dst: Guid) -> Message {
        Message::new(
            Guid::from_u128(id),
            src,
            dst,
            MessageKind::Ping,
            Bytes::new(),
        )
    }

    fn rig(seed: u64) -> (FaultyTransport<SimNetwork>, Guid, Guid) {
        let mut t = FaultyTransport::new(SimNetwork::new(), seed);
        let a = Guid::from_u128(0xa);
        let b = Guid::from_u128(0xb);
        t.add_node(a, "a").unwrap();
        t.add_node(b, "b").unwrap();
        t.connect_full();
        (t, a, b)
    }

    #[test]
    fn no_faults_is_transparent() {
        let (mut t, a, b) = rig(1);
        for i in 0..20u128 {
            t.send(msg(i, a, b)).unwrap();
        }
        assert_eq!(t.drain(b).len(), 20);
        let snap = t.fault_registry().snapshot();
        assert_eq!(snap.counter("fault.drops"), 0);
        assert_eq!(snap.counter("fault.dups"), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let outcome = |seed: u64| {
            let (mut t, a, b) = rig(seed);
            t.set_default_probs(FaultProbs::lossy(0.4));
            let oks: Vec<bool> = (0..50u128).map(|i| t.send(msg(i, a, b)).is_ok()).collect();
            let delivered = t.drain(b).len();
            (oks, delivered, t.fault_registry().snapshot())
        };
        assert_eq!(outcome(7), outcome(7), "seed 7 replays identically");
        assert_ne!(
            outcome(7).0,
            outcome(8).0,
            "different seeds give different schedules"
        );
    }

    #[test]
    fn drops_and_delays_report_failure() {
        let (mut t, a, b) = rig(3);
        t.set_default_probs(FaultProbs {
            drop: 1.0,
            ack_loss: 0.0,
            ..FaultProbs::NONE
        });
        assert!(t.send(msg(1, a, b)).is_err());
        assert!(t.drain(b).is_empty(), "request loss delivers nothing");

        t.set_default_probs(FaultProbs {
            delay: 1.0,
            ..FaultProbs::NONE
        });
        assert!(t.send(msg(2, a, b)).is_err());
        assert_eq!(t.delayed_len(), 1);
        assert!(t.drain(b).is_empty(), "delayed message is in flight");
        t.set_default_probs(FaultProbs::NONE);
        t.flush();
        assert_eq!(t.drain(b).len(), 1, "flush releases the delayed message");
    }

    #[test]
    fn ack_loss_delivers_despite_reported_failure() {
        let (mut t, a, b) = rig(4);
        t.set_default_probs(FaultProbs {
            drop: 1.0,
            ack_loss: 1.0,
            ..FaultProbs::NONE
        });
        assert!(t.send(msg(1, a, b)).is_err());
        assert_eq!(t.drain(b).len(), 1, "ack loss: delivered anyway");
    }

    #[test]
    fn duplicates_deliver_twice() {
        let (mut t, a, b) = rig(5);
        t.set_default_probs(FaultProbs {
            duplicate: 1.0,
            ..FaultProbs::NONE
        });
        t.send(msg(1, a, b)).unwrap();
        assert_eq!(t.drain(b).len(), 2);
        assert_eq!(t.fault_registry().snapshot().counter("fault.dups"), 1);
    }

    #[test]
    fn reorder_reverses_the_drained_batch() {
        let (mut t, a, b) = rig(6);
        t.send(msg(1, a, b)).unwrap();
        t.send(msg(2, a, b)).unwrap();
        t.set_default_probs(FaultProbs {
            reorder: 1.0,
            ..FaultProbs::NONE
        });
        let drained = t.drain(b);
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].id, Guid::from_u128(2), "batch reversed");
        assert_eq!(t.fault_registry().snapshot().counter("fault.reorders"), 1);
    }

    #[test]
    fn named_partitions_block_until_healed() {
        let (mut t, a, b) = rig(7);
        t.partition("island", &[b]);
        assert!(matches!(
            t.send(msg(1, a, b)),
            Err(SciError::Unroutable { .. })
        ));
        assert_eq!(
            t.fault_registry()
                .snapshot()
                .counter("fault.partition_blocks"),
            1
        );
        t.heal_partitions();
        t.send(msg(2, a, b)).unwrap();
        assert_eq!(t.drain(b).len(), 1);
    }

    #[test]
    fn link_overrides_beat_defaults() {
        let (mut t, a, b) = rig(8);
        t.set_default_probs(FaultProbs {
            drop: 1.0,
            ack_loss: 0.0,
            ..FaultProbs::NONE
        });
        t.set_link_probs(a, b, FaultProbs::NONE);
        t.send(msg(1, a, b)).unwrap();
        assert_eq!(t.drain(b).len(), 1, "clean override on a lossy default");
    }

    #[test]
    fn fault_model_exports_the_declared_schedule() {
        let (mut t, a, b) = rig(11);
        t.set_default_probs(FaultProbs::lossy(0.25));
        t.set_link_probs(a, b, FaultProbs::NONE);
        t.partition("island", &[b]);
        let model = t.fault_model().expect("fault layer declares itself");
        assert_eq!(model.seed, 11);
        assert_eq!(model.default_probs.drop, 0.25);
        assert_eq!(model.link_probs.len(), 1);
        assert_eq!(model.link_probs[0].src, a);
        assert_eq!(model.link_probs[0].probs.drop, 0.0);
        assert_eq!(model.partitions, vec![(b, "island".to_owned())]);
        t.heal();
        let healed = t.fault_model().expect("still declared after heal");
        assert!(healed.partitions.is_empty());
        assert_eq!(healed.default_probs.drop, 0.0);
    }

    #[test]
    fn heal_restores_full_service() {
        let (mut t, a, b) = rig(9);
        t.set_default_probs(FaultProbs {
            delay: 1.0,
            ..FaultProbs::NONE
        });
        assert!(t.send(msg(1, a, b)).is_err());
        assert_eq!(t.delayed_len(), 1);
        t.partition("island", &[b]);
        t.heal();
        assert_eq!(t.delayed_len(), 0);
        t.send(msg(2, a, b)).unwrap();
        assert_eq!(
            t.drain(b).len(),
            2,
            "delayed message flushed plus the new one"
        );
    }
}
