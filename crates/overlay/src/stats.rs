//! Per-node load accounting and hop statistics.
//!
//! Experiment E1's measurable: how unevenly does routing load spread?
//! The hierarchical baseline concentrates traffic at the tree root; the
//! overlay spreads it. [`LoadStats`] counts forwards per node and
//! aggregates hop-count distributions.

use std::collections::HashMap;

use sci_types::Guid;

/// Counters for routed traffic across a network.
#[derive(Clone, Debug, Default)]
pub struct LoadStats {
    forwards: HashMap<Guid, u64>,
    hops: Vec<u32>,
    delivered: u64,
    failed: u64,
    recoveries: u64,
}

impl LoadStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        LoadStats::default()
    }

    /// Records one forwarding action at `node` (source and intermediate
    /// nodes count; the destination does not forward).
    pub fn record_forward(&mut self, node: Guid) {
        *self.forwards.entry(node).or_insert(0) += 1;
    }

    /// Records a successful delivery that took `hops` hops.
    pub fn record_delivery(&mut self, hops: u32) {
        self.delivered += 1;
        self.hops.push(hops);
    }

    /// Records a routing failure.
    pub fn record_failure(&mut self) {
        self.failed += 1;
    }

    /// Records a lookup-based recovery at a stuck hop.
    pub fn record_recovery(&mut self) {
        self.recoveries += 1;
    }

    /// Lookup-based recoveries performed.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Messages delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages that could not be routed.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Forwarding count of one node.
    pub fn forwards_of(&self, node: Guid) -> u64 {
        self.forwards.get(&node).copied().unwrap_or(0)
    }

    /// The most loaded node and its forward count.
    pub fn max_load(&self) -> Option<(Guid, u64)> {
        self.forwards
            .iter()
            .max_by_key(|&(g, &c)| (c, *g))
            .map(|(&g, &c)| (g, c))
    }

    /// Mean forwards over nodes that forwarded at least once.
    pub fn mean_load(&self) -> f64 {
        if self.forwards.is_empty() {
            0.0
        } else {
            self.forwards.values().sum::<u64>() as f64 / self.forwards.len() as f64
        }
    }

    /// Ratio of max to mean load — 1.0 is perfectly even, large values
    /// indicate a bottleneck.
    pub fn imbalance(&self) -> f64 {
        match self.max_load() {
            Some((_, max)) if self.mean_load() > 0.0 => max as f64 / self.mean_load(),
            _ => 0.0,
        }
    }

    /// Mean hops per delivered message.
    pub fn mean_hops(&self) -> f64 {
        if self.hops.is_empty() {
            0.0
        } else {
            self.hops.iter().map(|&h| h as f64).sum::<f64>() / self.hops.len() as f64
        }
    }

    /// Hop counts of every delivered message, in delivery order. The
    /// telemetry layer folds this distribution into its histogram
    /// registry instead of keeping a parallel accounting mechanism.
    pub fn hops(&self) -> &[u32] {
        &self.hops
    }

    /// Maximum hops observed.
    pub fn max_hops(&self) -> u32 {
        self.hops.iter().copied().max().unwrap_or(0)
    }

    /// The `q`-quantile (0..=1) of the hop distribution.
    pub fn hop_quantile(&self, q: f64) -> u32 {
        if self.hops.is_empty() {
            return 0;
        }
        let mut sorted = self.hops.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }
}

impl std::fmt::Display for LoadStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "delivered={} failed={} mean_hops={:.2} max_hops={} max_load={} imbalance={:.2}",
            self.delivered,
            self.failed,
            self.mean_hops(),
            self.max_hops(),
            self.max_load().map(|(_, c)| c).unwrap_or(0),
            self.imbalance(),
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn load_accounting() {
        let mut s = LoadStats::new();
        let (a, b) = (Guid::from_u128(1), Guid::from_u128(2));
        s.record_forward(a);
        s.record_forward(a);
        s.record_forward(b);
        s.record_delivery(2);
        s.record_delivery(4);
        s.record_failure();
        assert_eq!(s.forwards_of(a), 2);
        assert_eq!(s.max_load(), Some((a, 2)));
        assert_eq!(s.mean_load(), 1.5);
        assert!((s.imbalance() - 2.0 / 1.5).abs() < 1e-12);
        assert_eq!(s.mean_hops(), 3.0);
        assert_eq!(s.max_hops(), 4);
        assert_eq!(s.delivered(), 2);
        assert_eq!(s.failed(), 1);
    }

    #[test]
    fn quantiles() {
        let mut s = LoadStats::new();
        for h in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            s.record_delivery(h);
        }
        assert_eq!(s.hop_quantile(0.0), 1);
        assert_eq!(s.hop_quantile(0.5), 6);
        assert_eq!(s.hop_quantile(1.0), 10);
    }

    #[test]
    fn empty_stats_are_calm() {
        let s = LoadStats::new();
        assert_eq!(s.mean_hops(), 0.0);
        assert_eq!(s.imbalance(), 0.0);
        assert_eq!(s.hop_quantile(0.5), 0);
        assert!(s.max_load().is_none());
    }
}
