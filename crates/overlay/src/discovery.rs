//! Range discovery: joining the SCINET.
//!
//! "The SCINET can be created via Range discovery, requiring little
//! initialisation" (paper, Section 3). A joining node knows one
//! bootstrap node; it performs an iterative `find_node` lookup toward
//! its own GUID to find its overlay neighbourhood, then refreshes one
//! random target per bucket distance band to spread its knowledge across
//! the id space. All lookups run over the simulated tables — the same
//! data a real deployment would exchange in
//! [`crate::message::MessageKind::FindNode`] messages.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sci_types::{Guid, SciError, SciResult};

use crate::net::SimNetwork;

/// How many candidates a `find_node` reply carries.
pub const FIND_NODE_FANOUT: usize = 8;

/// How many leading bucket indices a join refreshes (one lookup per
/// bucket, Kademlia-style). 24 buckets cover networks of ~16M nodes;
/// deeper buckets are populated by the self-lookup.
pub const REFRESH_BUCKETS: u32 = 24;

/// Joins `joiner` to the network through `bootstrap`.
///
/// The joiner must already have been added with
/// [`SimNetwork::add_node`]; this wires its routing table and announces
/// it to the nodes it contacts (bidirectional insertion, as contact
/// implies in Kademlia-style networks).
///
/// # Errors
///
/// Returns [`SciError::UnknownRange`] if either node does not exist, and
/// [`SciError::Internal`] if `joiner == bootstrap`.
pub fn join(net: &mut SimNetwork, joiner: Guid, bootstrap: Guid, seed: u64) -> SciResult<()> {
    if joiner == bootstrap {
        return Err(SciError::Internal(
            "node cannot bootstrap from itself".into(),
        ));
    }
    for g in [joiner, bootstrap] {
        if net.node(g).is_none() {
            return Err(SciError::UnknownRange(g));
        }
    }

    net.link(joiner, bootstrap)?;
    net.link(bootstrap, joiner)?;

    // Iterative lookup toward our own id populates the neighbourhood,
    // then a per-bucket refresh fills the distant regions.
    lookup(net, joiner, joiner)?;
    refresh(net, joiner, seed)?;
    Ok(())
}

/// Per-bucket refresh for one node: for each leading bucket index, look
/// up a random id that differs from the node's id first at that bit.
/// This is what keeps greedy forwarding from hitting an empty bucket
/// whose region is populated.
///
/// # Errors
///
/// Returns [`SciError::UnknownRange`] if the node does not exist.
pub fn refresh(net: &mut SimNetwork, node: Guid, seed: u64) -> SciResult<()> {
    let mut rng = StdRng::seed_from_u64(seed ^ node.as_u128() as u64);
    for bucket in 0..REFRESH_BUCKETS.min(Guid::BITS) {
        let keep_high: u128 = if bucket == 0 {
            0
        } else {
            !0u128 << (Guid::BITS - bucket)
        };
        let flip: u128 = 1u128 << (Guid::BITS - 1 - bucket);
        let low_mask: u128 = flip - 1;
        let random_low: u128 = rng.gen::<u128>() & low_mask;
        let target = Guid::from_u128(((node.as_u128() & keep_high) ^ flip) | random_low);
        lookup(net, node, target)?;
    }
    Ok(())
}

/// One round of network-wide bucket maintenance: every alive node
/// refreshes its buckets (the periodic refresh of Kademlia-style
/// networks, which heals the stale knowledge of early joiners as the
/// network grows).
///
/// # Errors
///
/// Propagates refresh failures.
pub fn maintain(net: &mut SimNetwork, seed: u64) -> SciResult<()> {
    let nodes: Vec<Guid> = net.guids().collect();
    for node in nodes {
        if net.node(node).map(|n| n.is_alive()).unwrap_or(false) {
            refresh(net, node, seed)?;
        }
    }
    Ok(())
}

/// Iterative `find_node`: repeatedly asks the closest known nodes for
/// their closest entries to `target`, inserting every node learned (and
/// announcing `asker` back), until no closer node is learned.
///
/// Returns the closest node to `target` the asker ends up knowing.
///
/// # Errors
///
/// Returns [`SciError::UnknownRange`] if `asker` does not exist.
pub fn lookup(net: &mut SimNetwork, asker: Guid, target: Guid) -> SciResult<Option<Guid>> {
    if net.node(asker).is_none() {
        return Err(SciError::UnknownRange(asker));
    }
    let mut asked: Vec<Guid> = Vec::new();
    loop {
        let Some(asker_node) = net.node(asker) else {
            return Err(SciError::UnknownRange(asker));
        };
        let frontier = asker_node.table().closest_n(target, FIND_NODE_FANOUT);
        let next = frontier.into_iter().find(|g| !asked.contains(g));
        let Some(peer) = next else {
            break;
        };
        asked.push(peer);
        // Skip dead peers — a real lookup would time out on them.
        let learned = match net.node(peer) {
            Some(n) if n.is_alive() => n.table().closest_n(target, FIND_NODE_FANOUT),
            _ => continue,
        };
        for g in learned {
            if g != asker {
                net.link(asker, g)?;
            }
        }
        // Contact announces the asker to the peer.
        net.link(peer, asker)?;
    }
    Ok(net.node(asker).and_then(|n| n.table().closest_to(target)))
}

/// Builds a network of `n` nodes by sequential discovery joins (the
/// first node is the bootstrap), followed by one maintenance round so
/// early joiners learn about late arrivals. Returns the node GUIDs in
/// join order.
///
/// # Errors
///
/// Propagates join failures (which indicate a bug, given fresh GUIDs).
pub fn grow_network(
    net: &mut SimNetwork,
    ids: &mut sci_types::guid::GuidGenerator,
    n: usize,
    seed: u64,
) -> SciResult<Vec<Guid>> {
    let mut guids = Vec::with_capacity(n);
    for i in 0..n {
        let g = ids.next_guid();
        net.add_node(g, format!("range-{i}-{g}"))?;
        if let Some(&bootstrap) = guids.first() {
            join(net, g, bootstrap, seed)?;
        }
        guids.push(g);
    }
    maintain(net, seed)?;
    Ok(guids)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use sci_types::guid::GuidGenerator;

    #[test]
    fn join_links_both_sides() {
        let mut net = SimNetwork::new();
        let a = Guid::from_u128(0x10);
        let b = Guid::from_u128(0x20);
        net.add_node(a, "a").unwrap();
        net.add_node(b, "b").unwrap();
        join(&mut net, b, a, 7).unwrap();
        assert!(net.node(a).unwrap().table().contains(b));
        assert!(net.node(b).unwrap().table().contains(a));
    }

    #[test]
    fn self_join_rejected() {
        let mut net = SimNetwork::new();
        let a = Guid::from_u128(1);
        net.add_node(a, "a").unwrap();
        assert!(join(&mut net, a, a, 0).is_err());
    }

    #[test]
    fn discovery_grown_network_routes_all_pairs() {
        let mut net = SimNetwork::new();
        let mut ids = GuidGenerator::seeded(11);
        let guids = grow_network(&mut net, &mut ids, 48, 11).unwrap();
        let mut failures = 0;
        for (i, &a) in guids.iter().enumerate() {
            for &b in guids.iter().skip(i + 1) {
                if net.route(a, b).is_err() {
                    failures += 1;
                }
            }
        }
        assert_eq!(failures, 0, "discovery left unroutable pairs");
    }

    #[test]
    fn lookup_finds_closest_existing_node() {
        let mut net = SimNetwork::new();
        let mut ids = GuidGenerator::seeded(5);
        let guids = grow_network(&mut net, &mut ids, 24, 5).unwrap();
        let asker = guids[0];
        // Look up an arbitrary target; the result must be a real node at
        // minimum distance among the asker's final knowledge.
        let target = Guid::from_u128(0x1234_5678_9abc_def0);
        let found = lookup(&mut net, asker, target).unwrap().unwrap();
        assert!(guids.contains(&found));
        let best = guids
            .iter()
            .filter(|&&g| g != asker)
            .map(|&g| g.xor_distance(target))
            .min()
            .unwrap();
        // The lookup's answer is (close to) the global best; allow the
        // asker itself to be discounted.
        assert!(
            found.xor_distance(target) <= best,
            "lookup converged far from the global optimum"
        );
    }
}
