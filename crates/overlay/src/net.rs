//! The simulated SCINET.
//!
//! [`SimNetwork`] hosts one overlay node per Range and routes messages
//! hop-by-hop through the nodes' routing tables, accounting load and hop
//! counts as it goes. Failure injection (node death, network partitions)
//! exercises the robustness behaviours the paper calls for; dead
//! neighbours are detected on use and evicted from routing tables, the
//! overlay's stand-in for a liveness protocol.

use std::collections::HashMap;

use sci_types::{Guid, SciError, SciResult, VirtualDuration};

use crate::message::{Message, MessageKind};
use crate::routing::RoutingTable;
use crate::stats::LoadStats;

/// One overlay node: the SCINET face of a Range's Context Server.
#[derive(Clone, Debug)]
pub struct NodeState {
    guid: Guid,
    name: String,
    table: RoutingTable,
    alive: bool,
    partition: u8,
    inbox: Vec<Message>,
}

impl NodeState {
    /// The node's GUID.
    pub fn guid(&self) -> Guid {
        self.guid
    }

    /// The range name this node advertises.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Read access to the routing table.
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// Is the node currently alive?
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Messages delivered to this node, in arrival order.
    pub fn inbox(&self) -> &[Message] {
        &self.inbox
    }

    /// Removes and returns all delivered messages.
    pub fn drain_inbox(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.inbox)
    }
}

/// The result of routing one message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RouteOutcome {
    /// Nodes traversed, source and destination inclusive.
    pub path: Vec<Guid>,
    /// Hop count (`path.len() - 1`).
    pub hops: u32,
    /// Accumulated link latency.
    pub latency: VirtualDuration,
}

/// A simulated overlay network of Range nodes.
#[derive(Clone, Debug)]
pub struct SimNetwork {
    nodes: HashMap<Guid, NodeState>,
    by_name: HashMap<String, Guid>,
    stats: LoadStats,
    bucket_capacity: usize,
    hop_latency: VirtualDuration,
}

impl SimNetwork {
    /// Creates an empty network with default bucket capacity and a
    /// 1 ms per-hop latency model.
    pub fn new() -> Self {
        SimNetwork {
            nodes: HashMap::new(),
            by_name: HashMap::new(),
            stats: LoadStats::new(),
            bucket_capacity: crate::routing::DEFAULT_BUCKET_CAPACITY,
            hop_latency: VirtualDuration::from_millis(1),
        }
    }

    /// Sets the per-bucket routing table capacity for nodes added later.
    pub fn set_bucket_capacity(&mut self, capacity: usize) {
        self.bucket_capacity = capacity;
    }

    /// Sets the per-hop link latency.
    pub fn set_hop_latency(&mut self, latency: VirtualDuration) {
        self.hop_latency = latency;
    }

    /// Adds a node with an empty routing table (call
    /// [`crate::discovery::join`] or [`SimNetwork::populate_full`] to
    /// wire it up).
    ///
    /// # Errors
    ///
    /// Rejects duplicate GUIDs and duplicate range names.
    pub fn add_node(&mut self, guid: Guid, name: impl Into<String>) -> SciResult<()> {
        let name = name.into();
        if self.nodes.contains_key(&guid) {
            return Err(SciError::Internal(format!("node {guid} already exists")));
        }
        if self.by_name.contains_key(&name) {
            return Err(SciError::Parse(format!(
                "range name `{name}` already taken"
            )));
        }
        self.nodes.insert(
            guid,
            NodeState {
                guid,
                name: name.clone(),
                table: RoutingTable::with_capacity(guid, self.bucket_capacity),
                alive: true,
                partition: 0,
                inbox: Vec::new(),
            },
        );
        self.by_name.insert(name, guid);
        Ok(())
    }

    /// Gives every node full knowledge of every other node (subject to
    /// bucket capacities). Benchmarks use this to isolate routing
    /// behaviour from discovery behaviour.
    pub fn populate_full(&mut self) {
        let guids: Vec<Guid> = self.nodes.keys().copied().collect();
        for &a in &guids {
            let Some(node) = self.nodes.get_mut(&a) else {
                continue;
            };
            for &b in &guids {
                if a != b {
                    node.table.insert(b);
                }
            }
        }
    }

    /// Number of nodes (alive or dead).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node.
    pub fn node(&self, guid: Guid) -> Option<&NodeState> {
        self.nodes.get(&guid)
    }

    /// Mutable access to a node (test and maintenance surface).
    pub fn node_mut(&mut self, guid: Guid) -> Option<&mut NodeState> {
        self.nodes.get_mut(&guid)
    }

    /// Resolves a range name to its node GUID.
    pub fn find_by_name(&self, name: &str) -> Option<Guid> {
        self.by_name.get(name).copied()
    }

    /// All node GUIDs, unordered.
    pub fn guids(&self) -> impl Iterator<Item = Guid> + '_ {
        self.nodes.keys().copied()
    }

    /// Marks a node dead: it no longer forwards or receives.
    pub fn kill(&mut self, guid: Guid) -> SciResult<()> {
        self.nodes
            .get_mut(&guid)
            .map(|n| n.alive = false)
            .ok_or(SciError::UnknownRange(guid))
    }

    /// Brings a dead node back.
    pub fn revive(&mut self, guid: Guid) -> SciResult<()> {
        self.nodes
            .get_mut(&guid)
            .map(|n| n.alive = true)
            .ok_or(SciError::UnknownRange(guid))
    }

    /// Assigns a node to a partition group; messages cannot cross
    /// groups. All nodes start in group 0.
    pub fn set_partition(&mut self, guid: Guid, group: u8) -> SciResult<()> {
        self.nodes
            .get_mut(&guid)
            .map(|n| n.partition = group)
            .ok_or(SciError::UnknownRange(guid))
    }

    /// Heals all partitions.
    pub fn heal_partitions(&mut self) {
        for n in self.nodes.values_mut() {
            n.partition = 0;
        }
    }

    /// Inserts `peer` into `node`'s routing table.
    pub fn link(&mut self, node: Guid, peer: Guid) -> SciResult<bool> {
        if !self.nodes.contains_key(&peer) {
            return Err(SciError::UnknownRange(peer));
        }
        self.nodes
            .get_mut(&node)
            .map(|n| n.table.insert(peer))
            .ok_or(SciError::UnknownRange(node))
    }

    /// Cumulative routing statistics.
    pub fn stats(&self) -> &LoadStats {
        &self.stats
    }

    /// Resets the routing statistics.
    pub fn reset_stats(&mut self) {
        self.stats = LoadStats::new();
    }

    fn reachable(&self, from: Guid, to: Guid) -> bool {
        match (self.nodes.get(&from), self.nodes.get(&to)) {
            (Some(a), Some(b)) => b.alive && a.partition == b.partition,
            _ => false,
        }
    }

    /// Greedily computes the overlay path from `src` to `dst`, evicting
    /// dead neighbours from tables along the way, and records stats.
    ///
    /// # Errors
    ///
    /// * [`SciError::UnknownRange`] if either endpoint does not exist or
    ///   `src` is dead.
    /// * [`SciError::Unroutable`] on TTL exhaustion, local minima
    ///   (insufficient table knowledge) or partition/death of `dst`.
    pub fn route(&mut self, src: Guid, dst: Guid) -> SciResult<RouteOutcome> {
        let src_state = self.nodes.get(&src).ok_or(SciError::UnknownRange(src))?;
        if !src_state.alive {
            return Err(SciError::UnknownRange(src));
        }
        if !self.nodes.contains_key(&dst) {
            return Err(SciError::UnknownRange(dst));
        }

        let mut path = vec![src];
        let mut current = src;
        let mut ttl = crate::message::DEFAULT_TTL;
        // Stuck nodes get one chance to learn a closer neighbour via an
        // iterative lookup — the standard Kademlia recovery when greedy
        // forwarding meets a stale bucket.
        let mut lookup_used_at: Option<Guid> = None;

        while current != dst {
            if ttl == 0 {
                self.stats.record_failure();
                return Err(SciError::Unroutable { from: src, to: dst });
            }
            ttl -= 1;

            // Candidates in closeness order; skip unreachable ones and
            // evict dead ones from the table as we learn about them.
            let candidates = self.nodes[&current].table.closest_n(dst, usize::MAX);
            let my_distance = current.xor_distance(dst);
            let mut next = None;
            let mut dead = Vec::new();
            for cand in candidates {
                if cand.xor_distance(dst) >= my_distance {
                    break; // sorted: nothing further helps
                }
                let cand_alive = self.nodes.get(&cand).map(|n| n.alive).unwrap_or(false);
                if !cand_alive {
                    dead.push(cand);
                    continue;
                }
                if self.reachable(current, cand) {
                    next = Some(cand);
                    break;
                }
            }
            if !dead.is_empty() {
                if let Some(node) = self.nodes.get_mut(&current) {
                    for d in dead {
                        node.table.remove(d);
                    }
                }
            }
            let Some(next) = next else {
                if lookup_used_at != Some(current) {
                    lookup_used_at = Some(current);
                    self.stats.record_recovery();
                    crate::discovery::lookup(self, current, dst)?;
                    continue; // retry with the refreshed table
                }
                self.stats.record_failure();
                return Err(SciError::Unroutable { from: src, to: dst });
            };
            self.stats.record_forward(current);
            path.push(next);
            current = next;
        }

        let hops = (path.len() - 1) as u32;
        self.stats.record_delivery(hops);
        Ok(RouteOutcome {
            path,
            hops,
            latency: self.hop_latency.mul(hops as u64),
        })
    }

    /// Routes a message and, on success, appends it (TTL-decremented per
    /// hop) to the destination inbox. Returns the route taken.
    ///
    /// # Errors
    ///
    /// As for [`SimNetwork::route`].
    pub fn send(&mut self, message: Message) -> SciResult<RouteOutcome> {
        let outcome = self.route(message.src, message.dst)?;
        let mut delivered = message;
        for _ in 0..outcome.hops {
            delivered = delivered.forwarded().ok_or(SciError::Unroutable {
                from: delivered.src,
                to: delivered.dst,
            })?;
        }
        let (src, dst) = (delivered.src, delivered.dst);
        self.nodes
            .get_mut(&dst)
            .ok_or(SciError::Unroutable { from: src, to: dst })?
            .inbox
            .push(delivered);
        Ok(outcome)
    }

    /// Convenience: send a ping from `src` to `dst` with a fresh id.
    pub fn ping(&mut self, id: Guid, src: Guid, dst: Guid) -> SciResult<RouteOutcome> {
        self.send(Message::new(
            id,
            src,
            dst,
            MessageKind::Ping,
            bytes::Bytes::new(),
        ))
    }
}

impl Default for SimNetwork {
    fn default() -> Self {
        SimNetwork::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use sci_types::guid::GuidGenerator;

    fn network(n: usize, seed: u64) -> (SimNetwork, Vec<Guid>) {
        let mut net = SimNetwork::new();
        let mut ids = GuidGenerator::seeded(seed);
        let guids: Vec<Guid> = (0..n)
            .map(|i| {
                let g = ids.next_guid();
                net.add_node(g, format!("range-{i}")).unwrap();
                g
            })
            .collect();
        net.populate_full();
        (net, guids)
    }

    #[test]
    fn all_pairs_route_with_full_knowledge() {
        let (mut net, guids) = network(32, 1);
        for &a in &guids {
            for &b in &guids {
                let out = net.route(a, b).unwrap();
                assert_eq!(out.path.first().copied(), Some(a));
                assert_eq!(out.path.last().copied(), Some(b));
                assert!(out.hops <= 128);
            }
        }
        assert_eq!(net.stats().delivered(), 32 * 32);
        assert_eq!(net.stats().failed(), 0);
    }

    #[test]
    fn self_route_is_zero_hops() {
        let (mut net, guids) = network(4, 2);
        let out = net.route(guids[0], guids[0]).unwrap();
        assert_eq!(out.hops, 0);
        assert_eq!(out.latency, VirtualDuration::ZERO);
    }

    #[test]
    fn hops_scale_logarithmically() {
        let (mut net, guids) = network(256, 3);
        for (i, &a) in guids.iter().enumerate() {
            let b = guids[(i * 7 + 1) % guids.len()];
            net.route(a, b).unwrap();
        }
        let mean = net.stats().mean_hops();
        assert!(
            mean > 0.5 && mean < 16.0,
            "mean hops {mean} should be O(log n) for n=256"
        );
    }

    #[test]
    fn dead_destination_is_unroutable() {
        let (mut net, guids) = network(8, 4);
        net.kill(guids[3]).unwrap();
        assert!(net.route(guids[0], guids[3]).is_err());
    }

    #[test]
    fn routes_around_dead_intermediates() {
        let (mut net, guids) = network(64, 5);
        // Kill a third of the network (but keep endpoints).
        for &g in guids.iter().skip(2).step_by(3) {
            net.kill(g).unwrap();
        }
        let out = net.route(guids[0], guids[1]);
        assert!(
            out.is_ok(),
            "greedy routing should avoid dead nodes: {out:?}"
        );
    }

    #[test]
    fn partitions_block_and_heal() {
        let (mut net, guids) = network(8, 6);
        for &g in &guids[4..] {
            net.set_partition(g, 1).unwrap();
        }
        assert!(net.route(guids[0], guids[5]).is_err());
        assert!(
            net.route(guids[0], guids[1]).is_ok(),
            "same side still works"
        );
        net.heal_partitions();
        assert!(net.route(guids[0], guids[5]).is_ok());
    }

    #[test]
    fn send_delivers_to_inbox_with_decremented_ttl() {
        let (mut net, guids) = network(16, 7);
        let msg = Message::new(
            Guid::from_u128(42),
            guids[0],
            guids[9],
            MessageKind::QueryForward,
            bytes::Bytes::from_static(b"payload"),
        );
        let out = net.send(msg).unwrap();
        let inbox = net.node(guids[9]).unwrap().inbox();
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].id, Guid::from_u128(42));
        assert_eq!(inbox[0].ttl, crate::message::DEFAULT_TTL - out.hops as u16);
    }

    #[test]
    fn duplicate_names_and_guids_rejected() {
        let mut net = SimNetwork::new();
        net.add_node(Guid::from_u128(1), "a").unwrap();
        assert!(net.add_node(Guid::from_u128(1), "b").is_err());
        assert!(net.add_node(Guid::from_u128(2), "a").is_err());
        assert_eq!(net.find_by_name("a"), Some(Guid::from_u128(1)));
        assert_eq!(net.find_by_name("zzz"), None);
    }

    #[test]
    fn latency_accumulates_per_hop() {
        let (mut net, guids) = network(32, 8);
        net.set_hop_latency(VirtualDuration::from_millis(5));
        let out = net.route(guids[0], guids[17]).unwrap();
        assert_eq!(
            out.latency,
            VirtualDuration::from_millis(5).mul(out.hops as u64)
        );
    }
}
