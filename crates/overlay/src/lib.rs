//! # sci-overlay
//!
//! The SCINET: SCI's upper layer, "a network overlay of partially
//! connected nodes" (paper, Section 3) in which each node is the Context
//! Server of one Range and addressing is by GUID, "rather than
//! traditional addressing schemes".
//!
//! The paper motivates the overlay with a claim borrowed from Dearle et
//! al. \[9\]: "routing through an overlay network avoids any bottlenecks
//! created when using hierarchical infrastructures whilst achieving
//! comparable performance". This crate makes that claim measurable:
//!
//! * [`routing::RoutingTable`] — Kademlia-style per-prefix buckets over
//!   128-bit GUIDs with greedy XOR-distance forwarding.
//! * [`net::SimNetwork`] — a simulated overlay: join/leave, hop-by-hop
//!   routing with per-node load accounting, link latency and failure
//!   injection.
//! * [`hierarchy::HierarchicalNetwork`] — the baseline: the same ranges
//!   arranged as a b-ary tree routed through lowest common ancestors,
//!   whose root is the bottleneck the overlay is supposed to avoid.
//! * [`message`] — the binary wire codec (built on `bytes`) for
//!   inter-range messages: query forwarding, responses, range adverts,
//!   liveness pings.
//! * [`fault::FaultyTransport`] — a seeded fault-injection decorator
//!   over any [`transport::Transport`]: per-link drops, delays,
//!   duplicates, reorders and named partitions, all replayable from a
//!   single `u64` seed.
//!
//! Experiment E1 (`sci-bench`, `e1_overlay`) sweeps network size and
//! compares hop counts and maximum per-node forwarding load across the
//! two arrangements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod discovery;
pub mod fault;
pub mod hierarchy;
pub mod message;
pub mod net;
pub mod routing;
pub mod stats;
pub mod tcp;
pub mod transport;

pub use fault::{FaultProbs, FaultyTransport};
pub use hierarchy::HierarchicalNetwork;
pub use message::{Message, MessageKind};
pub use net::{RouteOutcome, SimNetwork};
pub use routing::RoutingTable;
pub use stats::LoadStats;
pub use tcp::{SyncEntry, SyncStore, TcpTransport, TCP_PROTOCOL_VERSION};
pub use transport::{ThreadedTransport, Transport};
