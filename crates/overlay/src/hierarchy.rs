//! The hierarchical baseline.
//!
//! The arrangement the paper argues *against*: ranges organised as a
//! balanced b-ary tree (think: campus server over building servers over
//! floor servers), with messages routed up to the lowest common ancestor
//! and back down. Correct and simple — but every cross-subtree message
//! transits the ancestors, so the root's forwarding load grows with the
//! whole network's traffic. Experiment E1 measures exactly that against
//! [`crate::net::SimNetwork`].

use std::collections::HashMap;

use sci_types::{Guid, SciError, SciResult, VirtualDuration};

use crate::net::RouteOutcome;
use crate::stats::LoadStats;

/// A balanced b-ary tree of Range nodes with LCA routing.
#[derive(Clone, Debug)]
pub struct HierarchicalNetwork {
    /// Node GUIDs in breadth-first order; index 0 is the root.
    order: Vec<Guid>,
    index: HashMap<Guid, usize>,
    branching: usize,
    stats: LoadStats,
    hop_latency: VirtualDuration,
}

impl HierarchicalNetwork {
    /// Builds a tree over the given nodes with branching factor `b`,
    /// assigning positions in the order given (first node is the root).
    ///
    /// # Panics
    ///
    /// Panics if `b < 2` or `nodes` is empty.
    pub fn new(nodes: impl IntoIterator<Item = Guid>, b: usize) -> Self {
        let order: Vec<Guid> = nodes.into_iter().collect();
        assert!(b >= 2, "branching factor must be at least 2");
        assert!(!order.is_empty(), "a tree needs at least one node");
        let index = order.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        HierarchicalNetwork {
            order,
            index,
            branching: b,
            stats: LoadStats::new(),
            hop_latency: VirtualDuration::from_millis(1),
        }
    }

    /// Sets the per-hop link latency.
    pub fn set_hop_latency(&mut self, latency: VirtualDuration) {
        self.hop_latency = latency;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the tree is empty (never: construction demands
    /// one node; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The root node (the prospective bottleneck).
    pub fn root(&self) -> Guid {
        self.order[0]
    }

    /// Routing statistics.
    pub fn stats(&self) -> &LoadStats {
        &self.stats
    }

    /// Resets routing statistics.
    pub fn reset_stats(&mut self) {
        self.stats = LoadStats::new();
    }

    fn parent(&self, idx: usize) -> Option<usize> {
        if idx == 0 {
            None
        } else {
            Some((idx - 1) / self.branching)
        }
    }

    fn path_to_root(&self, mut idx: usize) -> Vec<usize> {
        let mut path = vec![idx];
        while let Some(p) = self.parent(idx) {
            path.push(p);
            idx = p;
        }
        path
    }

    /// Routes `src` → `dst` via the lowest common ancestor, recording
    /// per-node load exactly as the overlay does (each non-terminal node
    /// on the path counts one forward).
    ///
    /// # Errors
    ///
    /// Returns [`SciError::UnknownRange`] for unknown endpoints.
    pub fn route(&mut self, src: Guid, dst: Guid) -> SciResult<RouteOutcome> {
        let &si = self.index.get(&src).ok_or(SciError::UnknownRange(src))?;
        let &di = self.index.get(&dst).ok_or(SciError::UnknownRange(dst))?;

        let up = self.path_to_root(si);
        let down = self.path_to_root(di);
        // Find the LCA: deepest index present in both root paths. Two
        // nodes of one tree always share the root; a miss means the
        // hierarchy was corrupted, which routing reports rather than
        // panics on.
        let Some(lca_pos_in_up) = up.iter().position(|i| down.contains(i)) else {
            return Err(SciError::Unroutable { from: src, to: dst });
        };
        let lca = up[lca_pos_in_up];

        let mut path: Vec<usize> = up[..=lca_pos_in_up].to_vec();
        let mut descend: Vec<usize> = down.iter().copied().take_while(|&i| i != lca).collect();
        descend.reverse();
        path.extend(descend);

        let guids: Vec<Guid> = path.iter().map(|&i| self.order[i]).collect();
        for &g in &guids[..guids.len() - 1] {
            self.stats.record_forward(g);
        }
        let hops = (guids.len() - 1) as u32;
        self.stats.record_delivery(hops);
        Ok(RouteOutcome {
            path: guids,
            hops,
            latency: self.hop_latency.mul(hops as u64),
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn nodes(n: usize) -> Vec<Guid> {
        (1..=n as u128).map(Guid::from_u128).collect()
    }

    #[test]
    fn root_and_structure() {
        let net = HierarchicalNetwork::new(nodes(7), 2);
        assert_eq!(net.root(), Guid::from_u128(1));
        assert_eq!(net.len(), 7);
    }

    #[test]
    fn sibling_route_passes_parent() {
        // Binary tree: 0 root; 1,2 children; 3,4 under 1; 5,6 under 2.
        let ns = nodes(7);
        let mut net = HierarchicalNetwork::new(ns.clone(), 2);
        let out = net.route(ns[3], ns[4]).unwrap();
        assert_eq!(out.path, vec![ns[3], ns[1], ns[4]]);
        assert_eq!(out.hops, 2);
    }

    #[test]
    fn cross_subtree_route_passes_root() {
        let ns = nodes(7);
        let mut net = HierarchicalNetwork::new(ns.clone(), 2);
        let out = net.route(ns[3], ns[6]).unwrap();
        assert!(out.path.contains(&ns[0]), "must transit the root");
        assert_eq!(out.hops, 4);
    }

    #[test]
    fn self_route_zero_hops() {
        let ns = nodes(3);
        let mut net = HierarchicalNetwork::new(ns.clone(), 2);
        let out = net.route(ns[1], ns[1]).unwrap();
        assert_eq!(out.hops, 0);
    }

    #[test]
    fn ancestor_descendant_route() {
        let ns = nodes(7);
        let mut net = HierarchicalNetwork::new(ns.clone(), 2);
        let out = net.route(ns[0], ns[5]).unwrap();
        assert_eq!(out.path, vec![ns[0], ns[2], ns[5]]);
        let back = net.route(ns[5], ns[0]).unwrap();
        assert_eq!(back.path, vec![ns[5], ns[2], ns[0]]);
    }

    #[test]
    fn root_accumulates_disproportionate_load() {
        let ns = nodes(63); // 6-level binary tree
        let mut net = HierarchicalNetwork::new(ns.clone(), 2);
        // Leaf-to-leaf traffic across the whole tree.
        let leaves: Vec<Guid> = ns[31..].to_vec();
        for (i, &a) in leaves.iter().enumerate() {
            for &b in leaves.iter().skip(i + 1) {
                net.route(a, b).unwrap();
            }
        }
        let (hot, load) = net.stats().max_load().unwrap();
        // Under uniform all-pairs traffic the hottest node is at the top
        // of the tree (the root or one of its children — children also
        // carry their subtree-internal traffic).
        let top: Vec<Guid> = ns[..3].to_vec();
        assert!(top.contains(&hot), "hot node {hot} should be near the root");
        assert!(
            load as f64 > 3.0 * net.stats().mean_load(),
            "top-of-tree load {load} should dwarf the mean {}",
            net.stats().mean_load()
        );
    }

    #[test]
    fn unknown_nodes_error() {
        let ns = nodes(3);
        let mut net = HierarchicalNetwork::new(ns.clone(), 2);
        assert!(net.route(ns[0], Guid::from_u128(999)).is_err());
        assert!(net.route(Guid::from_u128(999), ns[0]).is_err());
    }

    #[test]
    fn ternary_tree_routes() {
        let ns = nodes(13);
        let mut net = HierarchicalNetwork::new(ns.clone(), 3);
        for &a in &ns {
            for &b in &ns {
                let out = net.route(a, b).unwrap();
                assert_eq!(out.path.first().copied(), Some(a));
                assert_eq!(out.path.last().copied(), Some(b));
            }
        }
    }
}
