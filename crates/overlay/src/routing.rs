//! GUID prefix routing tables.
//!
//! Each overlay node keeps one bucket per shared-prefix length: bucket
//! `b` holds up to `k` neighbours whose GUIDs share exactly `b` leading
//! bits with the owner (i.e. differ first at bit `b`). Forwarding is
//! greedy by XOR distance; because the destination itself always
//! qualifies for the bucket of the first differing bit, a table built
//! from full membership knowledge can always make strict progress, which
//! `tests/prop_routing.rs` verifies as a property.

use sci_types::Guid;

/// Default bucket capacity.
pub const DEFAULT_BUCKET_CAPACITY: usize = 8;

/// A per-prefix-length bucket routing table for one overlay node.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    owner: Guid,
    capacity: usize,
    buckets: Vec<Vec<Guid>>,
}

impl RoutingTable {
    /// Creates an empty table for `owner` with the default bucket
    /// capacity.
    pub fn new(owner: Guid) -> Self {
        RoutingTable::with_capacity(owner, DEFAULT_BUCKET_CAPACITY)
    }

    /// Creates an empty table with an explicit per-bucket capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity table could never
    /// route.
    pub fn with_capacity(owner: Guid, capacity: usize) -> Self {
        assert!(capacity > 0, "bucket capacity must be positive");
        RoutingTable {
            owner,
            capacity,
            buckets: vec![Vec::new(); Guid::BITS as usize],
        }
    }

    /// The table owner's GUID.
    pub fn owner(&self) -> Guid {
        self.owner
    }

    /// The bucket index a peer belongs to: the length of the shared
    /// prefix with the owner. Returns `None` for the owner itself.
    pub fn bucket_index(&self, peer: Guid) -> Option<usize> {
        if peer == self.owner {
            None
        } else {
            Some(self.owner.leading_equal_bits(peer) as usize)
        }
    }

    /// Inserts a peer. Returns `true` if the peer is now present.
    ///
    /// A full bucket keeps its existing entries *except* that a peer
    /// closer to the owner than the bucket's farthest entry evicts it —
    /// this keeps near neighbours resident, which preserves last-hop
    /// reachability.
    pub fn insert(&mut self, peer: Guid) -> bool {
        let Some(idx) = self.bucket_index(peer) else {
            return false;
        };
        let capacity = self.capacity;
        let owner = self.owner;
        let bucket = &mut self.buckets[idx];
        if bucket.contains(&peer) {
            return true;
        }
        if bucket.len() < capacity {
            bucket.push(peer);
            return true;
        }
        // Evict the farthest-from-owner entry if the newcomer is
        // closer. A full bucket is non-empty, so the maximum exists;
        // a zero-capacity bucket simply refuses the newcomer.
        let Some((far_pos, far_guid)) = bucket
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, g)| owner.xor_distance(g))
        else {
            return false;
        };
        if owner.xor_distance(peer) < owner.xor_distance(far_guid) {
            bucket[far_pos] = peer;
            true
        } else {
            false
        }
    }

    /// Removes a peer (e.g. on failure detection). Returns `true` if it
    /// was present.
    pub fn remove(&mut self, peer: Guid) -> bool {
        let Some(idx) = self.bucket_index(peer) else {
            return false;
        };
        let bucket = &mut self.buckets[idx];
        if let Some(pos) = bucket.iter().position(|&g| g == peer) {
            bucket.remove(pos);
            true
        } else {
            false
        }
    }

    /// Returns `true` if the peer is in the table.
    pub fn contains(&self, peer: Guid) -> bool {
        self.bucket_index(peer)
            .map(|i| self.buckets[i].contains(&peer))
            .unwrap_or(false)
    }

    /// The neighbour strictly closest (by XOR) to `target` among all
    /// entries, or `None` if the table is empty.
    pub fn closest_to(&self, target: Guid) -> Option<Guid> {
        self.iter().min_by_key(|&g| g.xor_distance(target))
    }

    /// The next hop for `target`: the closest neighbour, but only if it
    /// is strictly closer to the target than the owner is (greedy
    /// progress rule). `None` means this node is a local minimum — the
    /// message is undeliverable from here.
    pub fn next_hop(&self, target: Guid) -> Option<Guid> {
        let candidate = self.closest_to(target)?;
        if candidate.xor_distance(target) < self.owner.xor_distance(target) {
            Some(candidate)
        } else {
            None
        }
    }

    /// Up to `n` table entries closest to `target`, ascending by
    /// distance (used by the discovery protocol's `find_node`).
    pub fn closest_n(&self, target: Guid, n: usize) -> Vec<Guid> {
        let mut all: Vec<Guid> = self.iter().collect();
        all.sort_by_key(|&g| g.xor_distance(target));
        all.truncate(n);
        all
    }

    /// Iterates over every entry.
    pub fn iter(&self) -> impl Iterator<Item = Guid> + '_ {
        self.buckets.iter().flatten().copied()
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn g(raw: u128) -> Guid {
        Guid::from_u128(raw)
    }

    #[test]
    fn owner_never_inserted() {
        let mut t = RoutingTable::new(g(5));
        assert!(!t.insert(g(5)));
        assert!(t.is_empty());
    }

    #[test]
    fn bucket_indexing_by_shared_prefix() {
        let owner = g(0);
        let t = RoutingTable::new(owner);
        // A peer with only the top bit set shares 0 leading bits.
        assert_eq!(t.bucket_index(g(1 << 127)), Some(0));
        // A peer equal to owner except the lowest bit shares 127 bits.
        assert_eq!(t.bucket_index(g(1)), Some(127));
        assert_eq!(t.bucket_index(owner), None);
    }

    #[test]
    fn insert_is_idempotent_and_capped() {
        let mut t = RoutingTable::with_capacity(g(0), 2);
        // All of these share 0 leading bits with owner 0 (top bit set).
        let peers: Vec<Guid> = (0..4).map(|i| g((1 << 127) | i)).collect();
        assert!(t.insert(peers[0]));
        assert!(t.insert(peers[0]), "re-insert reports present");
        assert!(t.insert(peers[1]));
        assert_eq!(t.len(), 2);
        // peers[2] is farther from owner than both residents: rejected.
        assert!(!t.insert(peers[3]));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn closer_peer_evicts_farther() {
        let owner = g(0);
        let mut t = RoutingTable::with_capacity(owner, 1);
        let far = g((1 << 127) | 0xffff);
        let near = g(1 << 127);
        assert!(t.insert(far));
        assert!(t.insert(near), "closer peer evicts");
        assert!(t.contains(near));
        assert!(!t.contains(far));
    }

    #[test]
    fn next_hop_makes_progress() {
        let owner = g(0b1000 << 124);
        let target = g(0b1111 << 124);
        let mut t = RoutingTable::new(owner);
        let closer = g(0b1100 << 124);
        t.insert(closer);
        assert_eq!(t.next_hop(target), Some(closer));
    }

    #[test]
    fn next_hop_refuses_regress() {
        let owner = g(0b1110 << 124);
        let target = g(0b1111 << 124);
        let mut t = RoutingTable::new(owner);
        // The only neighbour is farther from the target than we are.
        t.insert(g(0b0001 << 124));
        assert_eq!(t.next_hop(target), None);
    }

    #[test]
    fn closest_n_sorted() {
        let owner = g(0);
        let mut t = RoutingTable::new(owner);
        for i in 1..=5u128 {
            t.insert(g(i << 100));
        }
        let target = g(1 << 100);
        let closest = t.closest_n(target, 3);
        assert_eq!(closest.len(), 3);
        assert_eq!(closest[0], target);
        for w in closest.windows(2) {
            assert!(w[0].xor_distance(target) <= w[1].xor_distance(target));
        }
    }

    #[test]
    fn remove_lifecycle() {
        let mut t = RoutingTable::new(g(0));
        let p = g(42);
        t.insert(p);
        assert!(t.contains(p));
        assert!(t.remove(p));
        assert!(!t.remove(p));
        assert!(t.is_empty());
    }
}
