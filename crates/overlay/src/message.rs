//! The SCINET wire format.
//!
//! Inter-range traffic is serialised to a compact binary frame (built on
//! the `bytes` crate):
//!
//! ```text
//! magic(2) version(1) kind(1) msg_id(16) src(16) dst(16) ttl(2)
//! payload_len(4) payload(...)
//! ```
//!
//! Payloads are opaque to the overlay; `sci-core` puts query XML and
//! response values inside them.

use bytes::{Buf, BufMut, BytesMut};
// Re-exported so facade users can build payloads without naming the
// vendored crate directly.
pub use bytes::Bytes;

use sci_types::{Guid, SciError, SciResult};

const MAGIC: u16 = 0x5C1E; // "SCI E(vent)"
const VERSION: u8 = 1;
/// Frames larger than this are rejected by the decoder.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Default time-to-live for routed messages, in hops. 128 corrective
/// hops suffice for any pair of 128-bit GUIDs.
pub const DEFAULT_TTL: u16 = 160;

/// The kinds of inter-range message SCI exchanges.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MessageKind {
    /// A query forwarded toward the range that should answer it
    /// (CAPA: lobby CS → Level 10 CS).
    QueryForward,
    /// A response carrying context back to the querying range.
    QueryResponse,
    /// A range advertising its name and coverage to the SCINET.
    RangeAdvert,
    /// Liveness probe.
    Ping,
    /// Liveness reply.
    Pong,
    /// Discovery: ask a node for its neighbours closest to a target.
    FindNode,
    /// Discovery: the reply listing those neighbours.
    FindNodeReply,
    /// A context event streamed to a remote subscriber range.
    EventRelay,
    /// An entity's packaged state moving to a new home range.
    Migrate,
}

impl MessageKind {
    /// All message kinds.
    pub const ALL: [MessageKind; 9] = [
        MessageKind::QueryForward,
        MessageKind::QueryResponse,
        MessageKind::RangeAdvert,
        MessageKind::Ping,
        MessageKind::Pong,
        MessageKind::FindNode,
        MessageKind::FindNodeReply,
        MessageKind::EventRelay,
        MessageKind::Migrate,
    ];

    /// The kind's wire tag (0–8). Shared by the message header and the
    /// TCP transport's frame tags, so a frame's kind is readable before
    /// the payload is parsed.
    pub fn to_wire(self) -> u8 {
        match self {
            MessageKind::QueryForward => 0,
            MessageKind::QueryResponse => 1,
            MessageKind::RangeAdvert => 2,
            MessageKind::Ping => 3,
            MessageKind::Pong => 4,
            MessageKind::FindNode => 5,
            MessageKind::FindNodeReply => 6,
            MessageKind::EventRelay => 7,
            MessageKind::Migrate => 8,
        }
    }

    /// Parses a wire tag back into a kind.
    ///
    /// # Errors
    ///
    /// Returns [`SciError::Codec`] for tags outside 0–8.
    pub fn from_wire(byte: u8) -> SciResult<MessageKind> {
        MessageKind::ALL
            .into_iter()
            .find(|k| k.to_wire() == byte)
            .ok_or_else(|| SciError::Codec(format!("unknown message kind {byte}")))
    }
}

/// One inter-range message.
#[derive(Clone, PartialEq, Debug)]
pub struct Message {
    /// Unique id of this message (for dedup and response correlation).
    pub id: Guid,
    /// Originating node.
    pub src: Guid,
    /// Destination node.
    pub dst: Guid,
    /// Message kind.
    pub kind: MessageKind,
    /// Remaining hop budget; decremented at each forward.
    pub ttl: u16,
    /// Opaque payload.
    pub payload: Bytes,
}

impl Message {
    /// Creates a message with the default TTL.
    pub fn new(
        id: Guid,
        src: Guid,
        dst: Guid,
        kind: MessageKind,
        payload: impl Into<Bytes>,
    ) -> Self {
        Message {
            id,
            src,
            dst,
            kind,
            ttl: DEFAULT_TTL,
            payload: payload.into(),
        }
    }

    /// Serialises to the wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(58 + self.payload.len());
        buf.put_u16(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(self.kind.to_wire());
        buf.put_slice(&self.id.to_bytes());
        buf.put_slice(&self.src.to_bytes());
        buf.put_slice(&self.dst.to_bytes());
        buf.put_u16(self.ttl);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses a message from the wire format.
    ///
    /// # Errors
    ///
    /// Returns [`SciError::Codec`] for truncated frames, bad magic,
    /// unsupported versions, unknown kinds or oversized payloads.
    pub fn decode(mut buf: Bytes) -> SciResult<Message> {
        if buf.remaining() < 58 {
            return Err(SciError::Codec(format!(
                "frame too short: {} bytes",
                buf.remaining()
            )));
        }
        let magic = buf.get_u16();
        if magic != MAGIC {
            return Err(SciError::Codec(format!("bad magic {magic:#06x}")));
        }
        let version = buf.get_u8();
        if version != VERSION {
            return Err(SciError::Codec(format!("unsupported version {version}")));
        }
        let kind = MessageKind::from_wire(buf.get_u8())?;
        let mut guid_bytes = [0u8; 16];
        buf.copy_to_slice(&mut guid_bytes);
        let id = Guid::from_bytes(guid_bytes);
        buf.copy_to_slice(&mut guid_bytes);
        let src = Guid::from_bytes(guid_bytes);
        buf.copy_to_slice(&mut guid_bytes);
        let dst = Guid::from_bytes(guid_bytes);
        let ttl = buf.get_u16();
        let len = buf.get_u32() as usize;
        if len > MAX_PAYLOAD {
            return Err(SciError::Codec(format!(
                "payload of {len} bytes exceeds cap"
            )));
        }
        if buf.remaining() != len {
            return Err(SciError::Codec(format!(
                "payload length mismatch: header says {len}, frame has {}",
                buf.remaining()
            )));
        }
        Ok(Message {
            id,
            src,
            dst,
            kind,
            ttl,
            payload: buf,
        })
    }

    /// A copy with the TTL decremented, or `None` when the budget is
    /// exhausted.
    pub fn forwarded(&self) -> Option<Message> {
        let ttl = self.ttl.checked_sub(1)?;
        Some(Message {
            ttl,
            ..self.clone()
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample(kind: MessageKind) -> Message {
        Message::new(
            Guid::from_u128(1),
            Guid::from_u128(2),
            Guid::from_u128(3),
            kind,
            Bytes::from_static(b"<query>...</query>"),
        )
    }

    #[test]
    fn roundtrip_all_kinds() {
        for kind in MessageKind::ALL {
            let m = sample(kind);
            let decoded = Message::decode(m.encode()).unwrap();
            assert_eq!(decoded, m);
        }
    }

    #[test]
    fn empty_payload_roundtrips() {
        let m = Message::new(
            Guid::from_u128(9),
            Guid::from_u128(8),
            Guid::from_u128(7),
            MessageKind::Ping,
            Bytes::new(),
        );
        assert_eq!(Message::decode(m.encode()).unwrap(), m);
    }

    #[test]
    fn rejects_corruption() {
        let good = sample(MessageKind::QueryForward).encode();

        let mut bad_magic = good.to_vec();
        bad_magic[0] ^= 0xff;
        assert!(Message::decode(Bytes::from(bad_magic)).is_err());

        let mut bad_version = good.to_vec();
        bad_version[2] = 99;
        assert!(Message::decode(Bytes::from(bad_version)).is_err());

        let mut bad_kind = good.to_vec();
        bad_kind[3] = 250;
        assert!(Message::decode(Bytes::from(bad_kind)).is_err());

        let truncated = good.slice(0..30);
        assert!(Message::decode(truncated).is_err());

        let mut extra = good.to_vec();
        extra.push(0);
        assert!(
            Message::decode(Bytes::from(extra)).is_err(),
            "trailing byte"
        );
    }

    #[test]
    fn ttl_expiry() {
        let mut m = sample(MessageKind::Ping);
        m.ttl = 1;
        let f = m.forwarded().unwrap();
        assert_eq!(f.ttl, 0);
        assert!(f.forwarded().is_none());
    }
}
