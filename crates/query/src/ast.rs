//! Query abstract syntax.
//!
//! The five sections of the paper's query model (Figure 6):
//!
//! * [`What`] — "what this query is looking for, be it an entity type
//!   (e.g. a printer), a named entity (identified by a GUID) or
//!   information fitting a pattern".
//! * [`Where`] — "the location (if applicable) … explicit (e.g. Room
//!   10.01) or implicit (e.g. closest to me)".
//! * [`When`] — "the temporal aspect … the conditions under which the
//!   configuration should be executed".
//! * [`Which`] — "the desired qualitative aspects governing selection
//!   from multiple entities".
//! * [`Mode`] — "the intent of the query": profile request, event
//!   subscription, one-time subscription or advertisement request.

use std::fmt;

use sci_types::{ContextType, EntityKind, Guid, VirtualDuration, VirtualTime};

use crate::builder::QueryBuilder;
use crate::predicate::Predicate;

/// A reference to an entity that may be the query's own submitter.
///
/// Queries routinely say "closest to *me*"; `Subject::Owner` defers the
/// binding to resolution time, when the Context Server substitutes the
/// owning CAA's user.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Subject {
    /// The query's owner ("me").
    Owner,
    /// An explicit entity.
    Entity(Guid),
}

impl Subject {
    /// Resolves the subject against the query owner's GUID.
    pub fn resolve(self, owner: Guid) -> Guid {
        match self {
            Subject::Owner => owner,
            Subject::Entity(id) => id,
        }
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Owner => f.write_str("me"),
            Subject::Entity(id) => write!(f, "{id}"),
        }
    }
}

/// The What section: what the query is looking for.
#[derive(Clone, PartialEq, Debug)]
pub enum What {
    /// An entity of a given class, e.g. "a printer" (`Device`).
    Kind(EntityKind),
    /// A specific named entity, identified by GUID.
    Named(Guid),
    /// Information fitting a pattern: a context type plus attribute
    /// constraints, e.g. "temperature in degrees Celsius".
    Information {
        /// The context type requested.
        ty: ContextType,
        /// Constraints the provider's attributes must satisfy.
        constraints: Vec<Predicate>,
    },
}

impl What {
    /// Convenience constructor for an unconstrained information pattern.
    pub fn info(ty: ContextType) -> What {
        What::Information {
            ty,
            constraints: Vec::new(),
        }
    }
}

impl fmt::Display for What {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            What::Kind(k) => write!(f, "any {k}"),
            What::Named(id) => write!(f, "entity {id}"),
            What::Information { ty, constraints } => {
                write!(f, "{ty}")?;
                for p in constraints {
                    write!(f, " where {p}")?;
                }
                Ok(())
            }
        }
    }
}

/// The Where section: the location of the information required.
#[derive(Clone, PartialEq, Debug)]
pub enum Where {
    /// No location constraint.
    Anywhere,
    /// An explicit logical place, e.g. `Room L10.01`.
    Place(String),
    /// A named range (forwarding target in the SCINET).
    Range(String),
    /// Implicit: closest to a subject, e.g. "closest to me".
    ClosestTo(Subject),
    /// Within a radius (metres) of a subject's position.
    Within {
        /// The reference entity.
        center: Subject,
        /// Radius in metres.
        radius_m: f64,
    },
}

impl fmt::Display for Where {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Where::Anywhere => f.write_str("anywhere"),
            Where::Place(p) => write!(f, "in {p}"),
            Where::Range(r) => write!(f, "in range {r}"),
            Where::ClosestTo(s) => write!(f, "closest to {s}"),
            Where::Within { center, radius_m } => write!(f, "within {radius_m}m of {center}"),
        }
    }
}

/// The When section: when the configuration should be executed.
#[derive(Clone, PartialEq, Debug)]
pub enum When {
    /// Execute as soon as the query is resolved.
    Immediate,
    /// Execute at an absolute virtual-time instant.
    At(VirtualTime),
    /// Execute after a delay from submission.
    After(VirtualDuration),
    /// Execute when an entity enters a place — the CAPA trigger
    /// ("listens for Bob entering L10.01").
    OnEnter {
        /// Whose arrival to wait for.
        entity: Subject,
        /// The place being entered.
        place: String,
    },
    /// Execute when an entity leaves a place.
    OnLeave {
        /// Whose departure to wait for.
        entity: Subject,
        /// The place being left.
        place: String,
    },
}

impl fmt::Display for When {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            When::Immediate => f.write_str("now"),
            When::At(t) => write!(f, "at {t}"),
            When::After(d) => write!(f, "after {d}"),
            When::OnEnter { entity, place } => write!(f, "when {entity} enters {place}"),
            When::OnLeave { entity, place } => write!(f, "when {entity} leaves {place}"),
        }
    }
}

/// The Which section: qualitative selection among multiple candidates.
#[derive(Clone, PartialEq, Debug)]
pub enum Which {
    /// Any single candidate (resolver's choice).
    Any,
    /// All candidates.
    All,
    /// The spatially closest candidate (to the Where reference, or to the
    /// owner if the Where clause has no reference point).
    Closest,
    /// The candidate minimising a numeric attribute, e.g. "shortest time
    /// to service completion".
    MinAttr(String),
    /// The candidate maximising a numeric attribute.
    MaxAttr(String),
    /// Keep only candidates satisfying all predicates, then select among
    /// the survivors with the inner criterion.
    Filtered {
        /// Predicates every surviving candidate must satisfy.
        predicates: Vec<Predicate>,
        /// Tie-breaking criterion applied to survivors.
        then: Box<Which>,
    },
}

impl Which {
    /// Wraps `self` in a filter (builder-style helper).
    pub fn filtered(self, predicates: Vec<Predicate>) -> Which {
        if predicates.is_empty() {
            self
        } else {
            Which::Filtered {
                predicates,
                then: Box::new(self),
            }
        }
    }

    /// Returns `true` if this criterion can select more than one
    /// candidate.
    pub fn is_multi(&self) -> bool {
        match self {
            Which::All => true,
            Which::Filtered { then, .. } => then.is_multi(),
            _ => false,
        }
    }
}

impl fmt::Display for Which {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Which::Any => f.write_str("any"),
            Which::All => f.write_str("all"),
            Which::Closest => f.write_str("closest"),
            Which::MinAttr(a) => write!(f, "min {a}"),
            Which::MaxAttr(a) => write!(f, "max {a}"),
            Which::Filtered { predicates, then } => {
                f.write_str("filter(")?;
                for (i, p) in predicates.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" and ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ") then {then}")
            }
        }
    }
}

/// The query mode: "the intent of the query" (paper, Section 4.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mode {
    /// Profile request: obtain information about CEs.
    Profile,
    /// Event subscription: subscribe and be updated with any changes.
    Subscribe,
    /// One-time subscription: cancelled after the CAA receives an event.
    SubscribeOnce,
    /// Advertisement request: obtain the interface to communicate with a
    /// service.
    Advertisement,
}

impl Mode {
    /// All modes.
    pub const ALL: [Mode; 4] = [
        Mode::Profile,
        Mode::Subscribe,
        Mode::SubscribeOnce,
        Mode::Advertisement,
    ];

    /// Stable name used by the codec.
    pub const fn name(self) -> &'static str {
        match self {
            Mode::Profile => "profile",
            Mode::Subscribe => "subscribe",
            Mode::SubscribeOnce => "subscribe-once",
            Mode::Advertisement => "advertisement",
        }
    }

    /// Parses a mode name.
    pub fn from_name(name: &str) -> Option<Mode> {
        Mode::ALL.into_iter().find(|m| m.name() == name)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete five-section context query.
///
/// Construct with [`Query::builder`]; serialise with
/// [`crate::codec::to_xml`].
#[derive(Clone, PartialEq, Debug)]
pub struct Query {
    /// Unique id of this query (`<query_id>`).
    pub id: Guid,
    /// GUID of the submitting CAA or user (`<owner_id>`).
    pub owner: Guid,
    /// What is being looked for.
    pub what: What,
    /// Location scope.
    pub where_: Where,
    /// Temporal trigger.
    pub when: When,
    /// Selection criterion.
    pub which: Which,
    /// Intent.
    pub mode: Mode,
}

impl Query {
    /// Starts building a query with the given id and owner.
    pub fn builder(id: Guid, owner: Guid) -> QueryBuilder {
        QueryBuilder::new(id, owner)
    }

    /// The context type this query ultimately needs, if determinable
    /// from the What clause. `Kind`/`Named` queries target an entity
    /// rather than a typed flow.
    pub fn requested_type(&self) -> Option<&ContextType> {
        match &self.what {
            What::Information { ty, .. } => Some(ty),
            _ => None,
        }
    }

    /// Returns `true` if the When clause requires waiting for a trigger
    /// (i.e. the configuration must be stored, as in the CAPA scenario).
    pub fn is_deferred(&self) -> bool {
        !matches!(self.when, When::Immediate)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query {} by {}: {} {} {} pick {} mode {}",
            self.id, self.owner, self.what, self.where_, self.when, self.which, self.mode
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_name_roundtrip() {
        for m in Mode::ALL {
            assert_eq!(Mode::from_name(m.name()), Some(m));
        }
        assert_eq!(Mode::from_name("push"), None);
    }

    #[test]
    fn subject_resolution() {
        let owner = Guid::from_u128(10);
        assert_eq!(Subject::Owner.resolve(owner), owner);
        let other = Guid::from_u128(11);
        assert_eq!(Subject::Entity(other).resolve(owner), other);
    }

    #[test]
    fn requested_type_only_for_information() {
        let q = Query::builder(Guid::from_u128(1), Guid::from_u128(2))
            .info(ContextType::Path)
            .build();
        assert_eq!(q.requested_type(), Some(&ContextType::Path));

        let q2 = Query::builder(Guid::from_u128(1), Guid::from_u128(2))
            .kind(EntityKind::Device)
            .build();
        assert_eq!(q2.requested_type(), None);
    }

    #[test]
    fn deferred_detection() {
        let now = Query::builder(Guid::from_u128(1), Guid::from_u128(2))
            .info(ContextType::Location)
            .build();
        assert!(!now.is_deferred());

        let later = Query::builder(Guid::from_u128(1), Guid::from_u128(2))
            .info(ContextType::Location)
            .when(When::OnEnter {
                entity: Subject::Owner,
                place: "L10.01".into(),
            })
            .build();
        assert!(later.is_deferred());
    }

    #[test]
    fn which_multi_detection() {
        assert!(Which::All.is_multi());
        assert!(!Which::Closest.is_multi());
        let filtered_all = Which::All.filtered(vec![]);
        assert!(filtered_all.is_multi());
    }

    #[test]
    fn empty_filter_is_identity() {
        assert_eq!(Which::Closest.filtered(vec![]), Which::Closest);
    }

    #[test]
    fn display_everything() {
        let q = Query::builder(Guid::from_u128(1), Guid::from_u128(2))
            .kind(EntityKind::Device)
            .closest()
            .mode(Mode::Advertisement)
            .where_(Where::ClosestTo(Subject::Owner))
            .when(When::After(VirtualDuration::from_secs(5)))
            .build();
        let s = q.to_string();
        assert!(s.contains("device"));
        assert!(s.contains("closest"));
        assert!(s.contains("advertisement"));
    }
}
