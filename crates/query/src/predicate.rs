//! Attribute predicates.
//!
//! Predicates constrain candidate Context Entities by their profile
//! attributes. They appear in two places in the query model: inside a
//! What pattern ("temperature *in degrees Celsius*") and inside a Which
//! filter ("closest printer *with no queue*").

use std::fmt;

use sci_types::{ContextValue, Metadata};

/// Comparison operators usable in predicates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than (numeric).
    Lt,
    /// Less than or equal (numeric).
    Le,
    /// Strictly greater than (numeric).
    Gt,
    /// Greater than or equal (numeric).
    Ge,
    /// Textual containment (haystack attribute contains needle value).
    Contains,
    /// The attribute merely exists, regardless of value.
    Exists,
}

impl CmpOp {
    /// All operators.
    pub const ALL: [CmpOp; 8] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Contains,
        CmpOp::Exists,
    ];

    /// Stable name used by the codec.
    pub const fn name(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
            CmpOp::Contains => "contains",
            CmpOp::Exists => "exists",
        }
    }

    /// Parses an operator name.
    pub fn from_name(name: &str) -> Option<CmpOp> {
        CmpOp::ALL.into_iter().find(|op| op.name() == name)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single attribute constraint: `attr op value`.
///
/// # Example
///
/// ```
/// use sci_query::{CmpOp, Predicate};
/// use sci_types::{ContextValue, Metadata};
///
/// let free = Predicate::new("queue", CmpOp::Le, ContextValue::Int(0));
/// let mut printer = Metadata::new();
/// printer.set("queue", ContextValue::Int(0));
/// assert!(free.eval(&printer));
/// printer.set("queue", ContextValue::Int(3));
/// assert!(!free.eval(&printer));
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Predicate {
    /// Attribute name to inspect.
    pub attr: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand value ([`ContextValue::Empty`] for [`CmpOp::Exists`]).
    pub value: ContextValue,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(attr: impl Into<String>, op: CmpOp, value: ContextValue) -> Self {
        Predicate {
            attr: attr.into(),
            op,
            value,
        }
    }

    /// Shorthand for an equality predicate.
    pub fn eq(attr: impl Into<String>, value: ContextValue) -> Self {
        Predicate::new(attr, CmpOp::Eq, value)
    }

    /// Shorthand for an existence predicate.
    pub fn exists(attr: impl Into<String>) -> Self {
        Predicate::new(attr, CmpOp::Exists, ContextValue::Empty)
    }

    /// Evaluates the predicate against an attribute set.
    ///
    /// Missing attributes fail every operator except [`CmpOp::Ne`]
    /// (absence is "not equal") — this makes filters conservative: a
    /// printer that does not advertise a `queue` attribute is never
    /// selected by `queue le 0`.
    pub fn eval(&self, attrs: &Metadata) -> bool {
        let actual = attrs.get(&self.attr);
        match (self.op, actual) {
            (CmpOp::Exists, found) => found.is_some(),
            (CmpOp::Ne, None) => true,
            (_, None) => false,
            (CmpOp::Eq, Some(v)) => values_equal(v, &self.value),
            (CmpOp::Ne, Some(v)) => !values_equal(v, &self.value),
            (CmpOp::Contains, Some(v)) => match (v.as_text(), self.value.as_text()) {
                (Some(hay), Some(needle)) => hay.contains(needle),
                _ => false,
            },
            (op, Some(v)) => match (v.as_float(), self.value.as_float()) {
                (Some(a), Some(b)) => match op {
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                    _ => unreachable!("non-ordering ops handled above"),
                },
                _ => false,
            },
        }
    }
}

/// Structural equality with numeric widening (Int 3 == Float 3.0) and
/// Text/Place interchange, mirroring [`ContextValue::as_text`].
fn values_equal(a: &ContextValue, b: &ContextValue) -> bool {
    if a == b {
        return true;
    }
    if let (Some(x), Some(y)) = (a.as_float(), b.as_float()) {
        return x == y;
    }
    if let (Some(x), Some(y)) = (a.as_text(), b.as_text()) {
        return x == y;
    }
    false
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.op == CmpOp::Exists {
            write!(f, "{} exists", self.attr)
        } else {
            write!(f, "{} {} {}", self.attr, self.op, self.value)
        }
    }
}

/// Evaluates a conjunction of predicates.
pub fn eval_all(predicates: &[Predicate], attrs: &Metadata) -> bool {
    predicates.iter().all(|p| p.eval(attrs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn printer_attrs(queue: i64, paper: bool) -> Metadata {
        let mut m = Metadata::new();
        m.set("queue", ContextValue::Int(queue));
        m.set("paper", ContextValue::Bool(paper));
        m.set("room", ContextValue::place("L10.02"));
        m
    }

    #[test]
    fn ordering_ops() {
        let attrs = printer_attrs(3, true);
        assert!(Predicate::new("queue", CmpOp::Gt, ContextValue::Int(2)).eval(&attrs));
        assert!(Predicate::new("queue", CmpOp::Ge, ContextValue::Int(3)).eval(&attrs));
        assert!(!Predicate::new("queue", CmpOp::Lt, ContextValue::Int(3)).eval(&attrs));
        assert!(Predicate::new("queue", CmpOp::Le, ContextValue::Float(3.0)).eval(&attrs));
    }

    #[test]
    fn equality_with_widening() {
        let attrs = printer_attrs(0, true);
        assert!(Predicate::eq("queue", ContextValue::Float(0.0)).eval(&attrs));
        assert!(Predicate::eq("paper", ContextValue::Bool(true)).eval(&attrs));
        assert!(Predicate::eq("room", ContextValue::text("L10.02")).eval(&attrs));
    }

    #[test]
    fn missing_attribute_semantics() {
        let attrs = printer_attrs(0, true);
        assert!(!Predicate::eq("toner", ContextValue::Int(1)).eval(&attrs));
        assert!(Predicate::new("toner", CmpOp::Ne, ContextValue::Int(1)).eval(&attrs));
        assert!(!Predicate::exists("toner").eval(&attrs));
        assert!(Predicate::exists("queue").eval(&attrs));
        assert!(
            !Predicate::new("toner", CmpOp::Lt, ContextValue::Int(9)).eval(&attrs),
            "ordering against a missing attribute must fail"
        );
    }

    #[test]
    fn contains_on_text() {
        let attrs = printer_attrs(0, true);
        assert!(Predicate::new("room", CmpOp::Contains, ContextValue::text("10")).eval(&attrs));
        assert!(!Predicate::new("room", CmpOp::Contains, ContextValue::text("11")).eval(&attrs));
        assert!(
            !Predicate::new("queue", CmpOp::Contains, ContextValue::text("0")).eval(&attrs),
            "contains over a non-text attribute fails"
        );
    }

    #[test]
    fn conjunction() {
        let attrs = printer_attrs(0, true);
        let ps = vec![
            Predicate::new("queue", CmpOp::Le, ContextValue::Int(0)),
            Predicate::eq("paper", ContextValue::Bool(true)),
        ];
        assert!(eval_all(&ps, &attrs));
        let broken = printer_attrs(0, false);
        assert!(!eval_all(&ps, &broken));
        assert!(eval_all(&[], &attrs), "empty conjunction is true");
    }

    #[test]
    fn op_name_roundtrip() {
        for op in CmpOp::ALL {
            assert_eq!(CmpOp::from_name(op.name()), Some(op));
        }
        assert_eq!(CmpOp::from_name("like"), None);
    }

    #[test]
    fn type_mismatch_ordering_fails() {
        let attrs = printer_attrs(0, true);
        assert!(!Predicate::new("room", CmpOp::Lt, ContextValue::Int(5)).eval(&attrs));
        assert!(!Predicate::new("queue", CmpOp::Lt, ContextValue::text("x")).eval(&attrs));
    }
}
