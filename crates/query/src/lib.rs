//! # sci-query
//!
//! The SCI context query language.
//!
//! "Currently we use a simple query model to support requests for
//! information from CAAs" (paper, Section 4.3). A query has five sections
//! — **What**, **Where**, **When**, **Which** — plus a **mode** that
//! "indicates the intent of the query". This crate provides:
//!
//! * [`Query`] and its clause types — the abstract syntax.
//! * [`QueryBuilder`] — ergonomic construction.
//! * [`codec`] — a hand-rolled serialiser/parser for the paper's Figure 6
//!   XML document form (`<query><query_id/>…<mode/></query>`).
//! * [`Predicate`] — attribute constraints used in What patterns and
//!   Which filters.
//! * [`matcher`] — does a CE profile satisfy a What clause?
//!
//! # Example
//!
//! ```
//! use sci_query::{Query, Mode};
//! use sci_types::{EntityKind, Guid};
//!
//! // John: "print to the closest printer with no queue".
//! let q = Query::builder(Guid::from_u128(1), Guid::from_u128(2))
//!     .kind(EntityKind::Device)
//!     .attr_eq("service", "printing")
//!     .closest()
//!     .attr_int_at_most("queue", 0)
//!     .mode(Mode::Advertisement)
//!     .build();
//! let xml = sci_query::codec::to_xml(&q);
//! let back = sci_query::codec::from_xml(&xml)?;
//! assert_eq!(q, back);
//! # Ok::<(), sci_types::SciError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod codec;
pub mod matcher;
pub mod predicate;
pub mod xml;

pub use ast::{Mode, Query, Subject, What, When, Where, Which};
pub use builder::QueryBuilder;
pub use predicate::{CmpOp, Predicate};
