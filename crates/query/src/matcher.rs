//! Matching What clauses against Context Entity profiles.
//!
//! This is the entry predicate of the query resolver's type-matching
//! search: given a query's What clause, which registered CEs are
//! candidate *roots* of a configuration?

use sci_types::Profile;

use crate::ast::What;
use crate::predicate::{eval_all, Predicate};

/// Returns `true` if the attribute names a delivery-time
/// quality-of-context contract (the reserved `qoc-` prefix, e.g.
/// `qoc-max-age-us`). Such constraints are enforced when events are
/// delivered, never matched against provider attributes.
pub fn is_qoc_constraint(attr: &str) -> bool {
    attr.starts_with("qoc-")
}

/// Filters a constraint list down to the provider-attribute predicates:
/// everything except delivery-time quality-of-context contracts. Both
/// profile matching and the query resolver select providers with this.
pub fn attribute_constraints(constraints: &[Predicate]) -> Vec<Predicate> {
    constraints
        .iter()
        .filter(|c| !is_qoc_constraint(&c.attr))
        .cloned()
        .collect()
}

/// Returns `true` if the profile can satisfy the What clause directly.
///
/// * [`What::Kind`] matches entities of that class.
/// * [`What::Named`] matches exactly the named entity.
/// * [`What::Information`] matches entities that *provide* the requested
///   context type as an output and whose attributes satisfy every
///   constraint.
///
/// # Example
///
/// ```
/// use sci_query::{matcher, What};
/// use sci_types::{ContextType, EntityKind, Guid, PortSpec, Profile};
///
/// let sensor = Profile::builder(Guid::from_u128(1), EntityKind::Device, "thermo")
///     .output(PortSpec::new("t", ContextType::Temperature))
///     .build();
/// assert!(matcher::matches(&What::info(ContextType::Temperature), &sensor));
/// assert!(matcher::matches(&What::Kind(EntityKind::Device), &sensor));
/// assert!(!matcher::matches(&What::info(ContextType::Location), &sensor));
/// ```
pub fn matches(what: &What, profile: &Profile) -> bool {
    match what {
        What::Kind(kind) => profile.kind() == *kind,
        What::Named(id) => profile.id() == *id,
        What::Information { ty, constraints } => {
            let attribute_constraints = attribute_constraints(constraints);
            profile.provides(ty) && eval_all(&attribute_constraints, profile.attributes())
        }
    }
}

/// Filters a profile set down to the candidates for a What clause,
/// preserving order.
pub fn candidates<'a, I>(what: &'a What, profiles: I) -> impl Iterator<Item = &'a Profile> + 'a
where
    I: IntoIterator<Item = &'a Profile>,
    I::IntoIter: 'a,
{
    profiles.into_iter().filter(move |p| matches(what, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use sci_types::{ContextType, ContextValue, EntityKind, Guid, PortSpec};

    fn profiles() -> Vec<Profile> {
        vec![
            Profile::builder(Guid::from_u128(1), EntityKind::Device, "thermo-lab")
                .output(PortSpec::new("t", ContextType::Temperature))
                .attribute("unit", ContextValue::text("celsius"))
                .build(),
            Profile::builder(Guid::from_u128(2), EntityKind::Device, "thermo-roof")
                .output(PortSpec::new("t", ContextType::Temperature))
                .attribute("unit", ContextValue::text("fahrenheit"))
                .build(),
            Profile::builder(Guid::from_u128(3), EntityKind::Software, "objLocationCE")
                .input(PortSpec::new("presence", ContextType::Presence))
                .output(PortSpec::new("loc", ContextType::Location))
                .build(),
        ]
    }

    #[test]
    fn kind_matching() {
        let ps = profiles();
        let what = What::Kind(EntityKind::Device);
        assert_eq!(candidates(&what, &ps).count(), 2);
    }

    #[test]
    fn named_matching() {
        let ps = profiles();
        let what = What::Named(Guid::from_u128(3));
        let found: Vec<_> = candidates(&what, &ps).collect();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name(), "objLocationCE");
    }

    #[test]
    fn information_with_constraint() {
        let ps = profiles();
        // "temperature in degrees Celsius" — the paper's own example.
        let what = What::Information {
            ty: ContextType::Temperature,
            constraints: vec![Predicate::eq("unit", ContextValue::text("celsius"))],
        };
        let found: Vec<_> = candidates(&what, &ps).collect();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name(), "thermo-lab");
    }

    #[test]
    fn information_requires_output_not_input() {
        let ps = profiles();
        let what = What::info(ContextType::Presence);
        assert_eq!(
            candidates(&what, &ps).count(),
            0,
            "objLocationCE consumes presence but does not provide it"
        );
    }
}
