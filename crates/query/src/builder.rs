//! Fluent construction of queries.

use sci_types::{ContextType, ContextValue, EntityKind, Guid, VirtualDuration, VirtualTime};

use crate::ast::{Mode, Query, Subject, What, When, Where, Which};
use crate::predicate::{CmpOp, Predicate};

/// Consuming builder for [`Query`].
///
/// Defaults: `what` = any software entity, `where` = anywhere, `when` =
/// immediate, `which` = any, `mode` = subscribe. Filter predicates added
/// with the `attr_*` helpers are attached to the Which clause at
/// [`QueryBuilder::build`] time.
///
/// # Example
///
/// ```
/// use sci_query::{Mode, Query, Subject, When};
/// use sci_types::{Guid, EntityKind};
///
/// // Bob: "print to the closest printer when I reach Room L10.01".
/// let bob = Guid::from_u128(0xb0b);
/// let q = Query::builder(Guid::from_u128(1), bob)
///     .kind(EntityKind::Device)
///     .attr_eq("service", "printing")
///     .in_place("L10.01")
///     .when(When::OnEnter { entity: Subject::Owner, place: "L10.01".into() })
///     .closest()
///     .mode(Mode::Advertisement)
///     .build();
/// assert!(q.is_deferred());
/// ```
#[derive(Clone, Debug)]
pub struct QueryBuilder {
    id: Guid,
    owner: Guid,
    what: What,
    where_: Where,
    when: When,
    which: Which,
    mode: Mode,
    filters: Vec<Predicate>,
}

impl QueryBuilder {
    /// Creates a builder with the documented defaults.
    pub fn new(id: Guid, owner: Guid) -> Self {
        QueryBuilder {
            id,
            owner,
            what: What::Kind(EntityKind::Software),
            where_: Where::Anywhere,
            when: When::Immediate,
            which: Which::Any,
            mode: Mode::Subscribe,
            filters: Vec::new(),
        }
    }

    /// Sets the What clause explicitly.
    pub fn what(mut self, what: What) -> Self {
        self.what = what;
        self
    }

    /// What: an entity of the given class.
    pub fn kind(mut self, kind: EntityKind) -> Self {
        self.what = What::Kind(kind);
        self
    }

    /// What: the specific named entity.
    pub fn named(mut self, id: Guid) -> Self {
        self.what = What::Named(id);
        self
    }

    /// What: information of the given context type.
    pub fn info(mut self, ty: ContextType) -> Self {
        self.what = What::info(ty);
        self
    }

    /// What: information of the given type, constrained by predicates.
    pub fn info_matching(mut self, ty: ContextType, constraints: Vec<Predicate>) -> Self {
        self.what = What::Information { ty, constraints };
        self
    }

    /// Sets the Where clause explicitly.
    pub fn where_(mut self, where_: Where) -> Self {
        self.where_ = where_;
        self
    }

    /// Where: an explicit logical place.
    pub fn in_place(mut self, place: impl Into<String>) -> Self {
        self.where_ = Where::Place(place.into());
        self
    }

    /// Where: a named range.
    pub fn in_range(mut self, range: impl Into<String>) -> Self {
        self.where_ = Where::Range(range.into());
        self
    }

    /// Where: closest to the query owner.
    pub fn near_me(mut self) -> Self {
        self.where_ = Where::ClosestTo(Subject::Owner);
        self
    }

    /// Sets the When clause explicitly.
    pub fn when(mut self, when: When) -> Self {
        self.when = when;
        self
    }

    /// When: at an absolute instant.
    pub fn at(mut self, t: VirtualTime) -> Self {
        self.when = When::At(t);
        self
    }

    /// When: after a delay.
    pub fn after(mut self, d: VirtualDuration) -> Self {
        self.when = When::After(d);
        self
    }

    /// Sets the Which clause explicitly (filters added via `attr_*`
    /// helpers still wrap it at build time).
    pub fn which(mut self, which: Which) -> Self {
        self.which = which;
        self
    }

    /// Which: the spatially closest candidate.
    pub fn closest(mut self) -> Self {
        self.which = Which::Closest;
        self
    }

    /// Which: all candidates.
    pub fn all(mut self) -> Self {
        self.which = Which::All;
        self
    }

    /// Which: minimise a numeric attribute.
    pub fn min_attr(mut self, attr: impl Into<String>) -> Self {
        self.which = Which::MinAttr(attr.into());
        self
    }

    /// Adds a filter predicate (conjunction).
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.filters.push(predicate);
        self
    }

    /// Filter: attribute equals a text value.
    pub fn attr_eq(self, attr: impl Into<String>, value: impl Into<String>) -> Self {
        self.filter(Predicate::eq(attr, ContextValue::Text(value.into())))
    }

    /// Filter: numeric attribute is at most `max`.
    pub fn attr_int_at_most(self, attr: impl Into<String>, max: i64) -> Self {
        self.filter(Predicate::new(attr, CmpOp::Le, ContextValue::Int(max)))
    }

    /// Filter: boolean attribute is true.
    pub fn attr_true(self, attr: impl Into<String>) -> Self {
        self.filter(Predicate::eq(attr, ContextValue::Bool(true)))
    }

    /// Quality-of-context contract: delivered context must be no older
    /// than `max_age` at delivery time. Encoded as a reserved
    /// `qoc-max-age-us` constraint on the What pattern; the Context
    /// Server enforces it per delivery.
    pub fn fresh_within(mut self, max_age: VirtualDuration) -> Self {
        let pred = Predicate::eq(
            "qoc-max-age-us",
            ContextValue::Int(max_age.as_micros() as i64),
        );
        match &mut self.what {
            What::Information { constraints, .. } => constraints.push(pred),
            _ => {
                // Contracts only make sense on information patterns;
                // attach as a Which filter otherwise (harmless: the
                // attribute never exists on profiles, so Kind/Named
                // queries with a freshness contract select nothing —
                // surfaced at resolution as unresolvable).
                self.filters.push(pred);
            }
        }
        self
    }

    /// Sets the mode.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Finishes the query, attaching accumulated filters to the Which
    /// clause.
    pub fn build(self) -> Query {
        Query {
            id: self.id,
            owner: self.owner,
            what: self.what,
            where_: self.where_,
            when: self.when,
            which: self.which.filtered(self.filters),
            mode: self.mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let q = QueryBuilder::new(Guid::from_u128(1), Guid::from_u128(2)).build();
        assert_eq!(q.where_, Where::Anywhere);
        assert_eq!(q.when, When::Immediate);
        assert_eq!(q.which, Which::Any);
        assert_eq!(q.mode, Mode::Subscribe);
    }

    #[test]
    fn filters_wrap_which() {
        let q = QueryBuilder::new(Guid::from_u128(1), Guid::from_u128(2))
            .closest()
            .attr_int_at_most("queue", 0)
            .attr_true("paper")
            .build();
        match q.which {
            Which::Filtered { predicates, then } => {
                assert_eq!(predicates.len(), 2);
                assert_eq!(*then, Which::Closest);
            }
            other => panic!("expected filtered which, got {other:?}"),
        }
    }

    #[test]
    fn no_filters_leaves_which_untouched() {
        let q = QueryBuilder::new(Guid::from_u128(1), Guid::from_u128(2))
            .min_attr("queue")
            .build();
        assert_eq!(q.which, Which::MinAttr("queue".into()));
    }

    #[test]
    fn where_when_helpers() {
        let q = QueryBuilder::new(Guid::from_u128(1), Guid::from_u128(2))
            .in_range("level-ten")
            .after(VirtualDuration::from_secs(30))
            .build();
        assert_eq!(q.where_, Where::Range("level-ten".into()));
        assert_eq!(q.when, When::After(VirtualDuration::from_secs(30)));
        assert!(q.is_deferred());
    }
}
