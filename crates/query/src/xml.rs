//! A minimal XML subset, hand-rolled for the Figure 6 query document.
//!
//! The paper serialises queries as a small XML document. Rather than pull
//! in an XML dependency, this module implements exactly the subset the
//! query codec needs: elements, string attributes, text content, the five
//! standard character entities, self-closing tags, comments and an
//! optional `<?xml …?>` declaration. It does **not** support namespaces,
//! DTDs, CDATA or processing instructions other than the declaration.

use std::fmt;

use sci_types::{SciError, SciResult};

/// An XML element: name, attributes, child elements and text content.
///
/// Mixed content is flattened: all text segments directly inside the
/// element are concatenated into [`Element::text`], preserving order
/// among themselves but not relative to child elements. The query codec
/// never relies on mixed content.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<Element>,
    /// Concatenated text content.
    pub text: String,
}

impl Element {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            ..Element::default()
        }
    }

    /// Creates a leaf element holding text.
    pub fn text_node(name: impl Into<String>, text: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            text: text.into(),
            ..Element::default()
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(child);
        self
    }

    /// Looks up an attribute by name.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Finds the first child with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Finds the first child with the given tag name or errors.
    pub fn require_child(&self, name: &str) -> SciResult<&Element> {
        self.child(name).ok_or_else(|| {
            SciError::Parse(format!("element <{}> missing child <{name}>", self.name))
        })
    }

    /// Iterates over children with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// The trimmed text content.
    pub fn trimmed_text(&self) -> &str {
        self.text.trim()
    }

    /// Serialises the element (no declaration, no pretty-printing).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out);
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        escape_into(&self.text, out);
        for child in &self.children {
            child.write(out);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
}

/// Parses a document containing exactly one root element.
///
/// # Errors
///
/// Returns [`SciError::Parse`] on malformed input: unbalanced tags,
/// unterminated strings, unknown entities, or trailing garbage.
pub fn parse(input: &str) -> SciResult<Element> {
    let mut p = Parser {
        chars: input.char_indices().peekable(),
        input,
        depth: 0,
    };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_whitespace_and_comments()?;
    if p.chars.peek().is_some() {
        return Err(SciError::Parse(
            "trailing content after root element".into(),
        ));
    }
    Ok(root)
}

/// Maximum element nesting the parser accepts; adversarial documents
/// deeper than this are rejected instead of risking stack exhaustion.
const MAX_NESTING: usize = 64;

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    input: &'a str,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&mut self, msg: &str) -> SciError {
        let pos = self
            .chars
            .peek()
            .map(|(i, _)| *i)
            .unwrap_or(self.input.len());
        SciError::Parse(format!("{msg} at byte {pos}"))
    }

    fn skip_prolog(&mut self) -> SciResult<()> {
        self.skip_whitespace_and_comments()?;
        if self.input_starts_at("<?") {
            // Skip `<?xml ... ?>`.
            loop {
                match self.chars.next() {
                    Some((_, '?')) => {
                        if matches!(self.chars.peek(), Some((_, '>'))) {
                            self.chars.next();
                            break;
                        }
                    }
                    Some(_) => {}
                    None => return Err(self.err("unterminated xml declaration")),
                }
            }
            self.skip_whitespace_and_comments()?;
        }
        Ok(())
    }

    fn input_starts_at(&mut self, prefix: &str) -> bool {
        match self.chars.peek() {
            Some((i, _)) => self.input[*i..].starts_with(prefix),
            None => false,
        }
    }

    fn skip_whitespace_and_comments(&mut self) -> SciResult<()> {
        loop {
            while matches!(self.chars.peek(), Some((_, c)) if c.is_whitespace()) {
                self.chars.next();
            }
            if self.input_starts_at("<!--") {
                for _ in 0..4 {
                    self.chars.next();
                }
                loop {
                    if self.input_starts_at("-->") {
                        for _ in 0..3 {
                            self.chars.next();
                        }
                        break;
                    }
                    if self.chars.next().is_none() {
                        return Err(self.err("unterminated comment"));
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> SciResult<String> {
        let mut name = String::new();
        while let Some((_, c)) = self.chars.peek() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                name.push(*c);
                self.chars.next();
            } else {
                break;
            }
        }
        if name.is_empty() {
            return Err(self.err("expected a name"));
        }
        Ok(name)
    }

    fn expect(&mut self, expected: char) -> SciResult<()> {
        match self.chars.next() {
            Some((_, c)) if c == expected => Ok(()),
            Some((i, c)) => Err(SciError::Parse(format!(
                "expected `{expected}` but found `{c}` at byte {i}"
            ))),
            None => Err(SciError::Parse(format!(
                "expected `{expected}` but input ended"
            ))),
        }
    }

    fn parse_entity(&mut self) -> SciResult<char> {
        // The leading '&' has been consumed.
        let mut name = String::new();
        loop {
            match self.chars.next() {
                Some((_, ';')) => break,
                Some((_, c)) if name.len() < 8 => name.push(c),
                _ => return Err(self.err("unterminated entity")),
            }
        }
        match name.as_str() {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            other => Err(SciError::Parse(format!("unknown entity `&{other};`"))),
        }
    }

    fn parse_attr_value(&mut self) -> SciResult<String> {
        self.expect('"')?;
        let mut value = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(value),
                Some((_, '&')) => value.push(self.parse_entity()?),
                Some((_, '<')) => return Err(self.err("raw `<` in attribute value")),
                Some((_, c)) => value.push(c),
                None => return Err(self.err("unterminated attribute value")),
            }
        }
    }

    fn parse_element(&mut self) -> SciResult<Element> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(SciError::Parse(format!(
                "document nested deeper than {MAX_NESTING} elements"
            )));
        }
        let element = self.parse_element_inner();
        self.depth -= 1;
        element
    }

    fn parse_element_inner(&mut self) -> SciResult<Element> {
        self.expect('<')?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);

        // Attributes.
        loop {
            while matches!(self.chars.peek(), Some((_, c)) if c.is_whitespace()) {
                self.chars.next();
            }
            match self.chars.peek() {
                Some((_, '/')) => {
                    self.chars.next();
                    self.expect('>')?;
                    return Ok(element);
                }
                Some((_, '>')) => {
                    self.chars.next();
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    while matches!(self.chars.peek(), Some((_, c)) if c.is_whitespace()) {
                        self.chars.next();
                    }
                    self.expect('=')?;
                    while matches!(self.chars.peek(), Some((_, c)) if c.is_whitespace()) {
                        self.chars.next();
                    }
                    let value = self.parse_attr_value()?;
                    element.attrs.push((key, value));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }

        // Content.
        loop {
            if self.input_starts_at("<!--") {
                self.skip_whitespace_and_comments()?;
                continue;
            }
            if self.input_starts_at("</") {
                self.chars.next();
                self.chars.next();
                let close = self.parse_name()?;
                if close != element.name {
                    return Err(SciError::Parse(format!(
                        "mismatched closing tag: expected </{}>, found </{close}>",
                        element.name
                    )));
                }
                while matches!(self.chars.peek(), Some((_, c)) if c.is_whitespace()) {
                    self.chars.next();
                }
                self.expect('>')?;
                return Ok(element);
            }
            match self.chars.peek() {
                Some((_, '<')) => {
                    let child = self.parse_element()?;
                    element.children.push(child);
                }
                Some((_, '&')) => {
                    self.chars.next();
                    let c = self.parse_entity()?;
                    element.text.push(c);
                }
                Some((_, c)) => {
                    element.text.push(*c);
                    self.chars.next();
                }
                None => return Err(self.err("unterminated element content")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let doc = Element::new("query")
            .with_child(Element::text_node("query_id", "abc"))
            .with_child(Element::text_node("mode", "subscribe"));
        let xml = doc.to_xml();
        assert_eq!(parse(&xml).unwrap(), doc);
    }

    #[test]
    fn attributes_and_self_closing() {
        let xml = r#"<what><info type="location"/><pred attr="unit" op="eq">celsius</pred></what>"#;
        let e = parse(xml).unwrap();
        assert_eq!(e.name, "what");
        assert_eq!(e.children.len(), 2);
        assert_eq!(e.children[0].attr("type"), Some("location"));
        assert_eq!(e.children[1].trimmed_text(), "celsius");
    }

    #[test]
    fn escaping_roundtrip() {
        let doc = Element::text_node("t", "a < b & \"c\" > 'd'").with_attr("k", "<&>\"'");
        let parsed = parse(&doc.to_xml()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn declaration_comments_whitespace() {
        let xml = "<?xml version=\"1.0\"?>\n<!-- a comment -->\n<root>\n  <!-- inner -->\n  <leaf/>\n</root>\n";
        let e = parse(xml).unwrap();
        assert_eq!(e.name, "root");
        assert_eq!(e.children.len(), 1);
        assert_eq!(e.trimmed_text(), "");
    }

    #[test]
    fn error_cases() {
        assert!(parse("<a><b></a></b>").is_err(), "mismatched tags");
        assert!(parse("<a>").is_err(), "unterminated element");
        assert!(parse("<a/><b/>").is_err(), "two roots");
        assert!(parse("<a attr=\"x>text</a>").is_err(), "unterminated attr");
        assert!(parse("<a>&unknown;</a>").is_err(), "unknown entity");
        assert!(parse("").is_err(), "empty input");
    }

    #[test]
    fn adversarial_nesting_is_rejected_not_overflowed() {
        let deep = "<a>".repeat(100_000) + &"</a>".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.to_string().contains("nested deeper"));
        // Nesting at the limit still parses.
        let ok = "<a>".repeat(60) + &"</a>".repeat(60);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn single_quoted_attributes_are_rejected() {
        // The subset is deliberate: attributes use double quotes only.
        assert!(parse("<a k='v'/>").is_err());
    }

    #[test]
    fn nested_lookup_helpers() {
        let e = parse("<q><where><place>L10.01</place></where></q>").unwrap();
        let place = e
            .require_child("where")
            .unwrap()
            .require_child("place")
            .unwrap();
        assert_eq!(place.trimmed_text(), "L10.01");
        assert!(e.require_child("missing").is_err());
        assert_eq!(e.children_named("where").count(), 1);
    }
}
