//! Serialisation of queries to and from the Figure 6 XML document form.
//!
//! ```xml
//! <query>
//!   <query_id>…</query_id>
//!   <owner_id>…</owner_id>
//!   <what>…</what>
//!   <where>…</where>
//!   <when>…</when>
//!   <which>…</which>
//!   <mode>…</mode>
//! </query>
//! ```
//!
//! The section bodies are structured sub-elements (the paper leaves them
//! unspecified); the encoding here is total and bijective over the AST:
//! [`to_xml`] ∘ [`from_xml`] is the identity, which the property tests in
//! `tests/prop_codec.rs` check.

use sci_types::{
    ContextType, ContextValue, Coord, EntityKind, Guid, SciError, SciResult, VirtualDuration,
    VirtualTime,
};

use crate::ast::{Mode, Query, Subject, What, When, Where, Which};
use crate::predicate::{CmpOp, Predicate};
use crate::xml::{parse, Element};

/// Serialises a query to its XML document form.
pub fn to_xml(query: &Query) -> String {
    query_to_element(query).to_xml()
}

/// Parses a query from its XML document form.
///
/// # Errors
///
/// Returns [`SciError::Parse`] if the document is not well-formed XML or
/// does not encode a valid query.
pub fn from_xml(xml: &str) -> SciResult<Query> {
    let root = parse(xml)?;
    query_from_element(&root)
}

/// Builds the root `<query>` element for a query.
pub fn query_to_element(query: &Query) -> Element {
    Element::new("query")
        .with_child(Element::text_node("query_id", query.id.to_string()))
        .with_child(Element::text_node("owner_id", query.owner.to_string()))
        .with_child(what_to_element(&query.what))
        .with_child(where_to_element(&query.where_))
        .with_child(when_to_element(&query.when))
        .with_child(which_to_element(&query.which))
        .with_child(Element::text_node("mode", query.mode.name()))
}

/// Reconstructs a query from a `<query>` element.
pub fn query_from_element(root: &Element) -> SciResult<Query> {
    if root.name != "query" {
        return Err(SciError::Parse(format!(
            "expected <query> root, found <{}>",
            root.name
        )));
    }
    let id: Guid = root.require_child("query_id")?.trimmed_text().parse()?;
    let owner: Guid = root.require_child("owner_id")?.trimmed_text().parse()?;
    let what = what_from_element(root.require_child("what")?)?;
    let where_ = where_from_element(root.require_child("where")?)?;
    let when = when_from_element(root.require_child("when")?)?;
    let which = which_from_element(root.require_child("which")?)?;
    let mode_name = root.require_child("mode")?.trimmed_text().to_owned();
    let mode = Mode::from_name(&mode_name)
        .ok_or_else(|| SciError::Parse(format!("unknown mode `{mode_name}`")))?;
    Ok(Query {
        id,
        owner,
        what,
        where_,
        when,
        which,
        mode,
    })
}

fn single_child(parent: &Element) -> SciResult<&Element> {
    match parent.children.as_slice() {
        [only] => Ok(only),
        _ => Err(SciError::Parse(format!(
            "<{}> must contain exactly one variant element",
            parent.name
        ))),
    }
}

fn what_to_element(what: &What) -> Element {
    let inner = match what {
        What::Kind(kind) => Element::text_node("kind", kind.name()),
        What::Named(id) => Element::text_node("named", id.to_string()),
        What::Information { ty, constraints } => {
            let mut e = Element::new("info").with_attr("type", ty.name());
            for p in constraints {
                e = e.with_child(predicate_to_element(p));
            }
            e
        }
    };
    Element::new("what").with_child(inner)
}

fn what_from_element(e: &Element) -> SciResult<What> {
    let inner = single_child(e)?;
    match inner.name.as_str() {
        "kind" => Ok(What::Kind(inner.trimmed_text().parse::<EntityKind>()?)),
        "named" => Ok(What::Named(inner.trimmed_text().parse()?)),
        "info" => {
            let ty = inner
                .attr("type")
                .ok_or_else(|| SciError::Parse("<info> missing type attribute".into()))?;
            let constraints = inner
                .children_named("pred")
                .map(predicate_from_element)
                .collect::<SciResult<Vec<_>>>()?;
            Ok(What::Information {
                ty: ContextType::from_name(ty),
                constraints,
            })
        }
        other => Err(SciError::Parse(format!("unknown what variant <{other}>"))),
    }
}

fn subject_to_string(s: Subject) -> String {
    match s {
        Subject::Owner => "me".to_owned(),
        Subject::Entity(id) => id.to_string(),
    }
}

fn subject_from_str(s: &str) -> SciResult<Subject> {
    if s == "me" {
        Ok(Subject::Owner)
    } else {
        Ok(Subject::Entity(s.parse()?))
    }
}

fn where_to_element(where_: &Where) -> Element {
    let inner = match where_ {
        Where::Anywhere => Element::new("anywhere"),
        Where::Place(p) => Element::text_node("place", p.clone()),
        Where::Range(r) => Element::text_node("range", r.clone()),
        Where::ClosestTo(s) => Element::text_node("closest-to", subject_to_string(*s)),
        Where::Within { center, radius_m } => {
            Element::text_node("within", subject_to_string(*center))
                .with_attr("radius", format_f64(*radius_m))
        }
    };
    Element::new("where").with_child(inner)
}

fn where_from_element(e: &Element) -> SciResult<Where> {
    let inner = single_child(e)?;
    match inner.name.as_str() {
        "anywhere" => Ok(Where::Anywhere),
        "place" => Ok(Where::Place(inner.trimmed_text().to_owned())),
        "range" => Ok(Where::Range(inner.trimmed_text().to_owned())),
        "closest-to" => Ok(Where::ClosestTo(subject_from_str(inner.trimmed_text())?)),
        "within" => {
            let radius = inner
                .attr("radius")
                .ok_or_else(|| SciError::Parse("<within> missing radius".into()))?;
            Ok(Where::Within {
                center: subject_from_str(inner.trimmed_text())?,
                radius_m: parse_f64(radius)?,
            })
        }
        other => Err(SciError::Parse(format!("unknown where variant <{other}>"))),
    }
}

fn when_to_element(when: &When) -> Element {
    let inner = match when {
        When::Immediate => Element::new("immediate"),
        When::At(t) => Element::new("at").with_attr("us", t.as_micros().to_string()),
        When::After(d) => Element::new("after").with_attr("us", d.as_micros().to_string()),
        When::OnEnter { entity, place } => Element::new("on-enter")
            .with_attr("entity", subject_to_string(*entity))
            .with_child(Element::text_node("place", place.clone())),
        When::OnLeave { entity, place } => Element::new("on-leave")
            .with_attr("entity", subject_to_string(*entity))
            .with_child(Element::text_node("place", place.clone())),
    };
    Element::new("when").with_child(inner)
}

fn when_from_element(e: &Element) -> SciResult<When> {
    let inner = single_child(e)?;
    let us = |elem: &Element| -> SciResult<u64> {
        elem.attr("us")
            .ok_or_else(|| SciError::Parse(format!("<{}> missing us attribute", elem.name)))?
            .parse()
            .map_err(|_| SciError::Parse("invalid microsecond count".into()))
    };
    match inner.name.as_str() {
        "immediate" => Ok(When::Immediate),
        "at" => Ok(When::At(VirtualTime::from_micros(us(inner)?))),
        "after" => Ok(When::After(VirtualDuration::from_micros(us(inner)?))),
        "on-enter" | "on-leave" => {
            let entity = subject_from_str(
                inner
                    .attr("entity")
                    .ok_or_else(|| SciError::Parse("missing entity attribute".into()))?,
            )?;
            let place = inner.require_child("place")?.trimmed_text().to_owned();
            if inner.name == "on-enter" {
                Ok(When::OnEnter { entity, place })
            } else {
                Ok(When::OnLeave { entity, place })
            }
        }
        other => Err(SciError::Parse(format!("unknown when variant <{other}>"))),
    }
}

fn which_to_element(which: &Which) -> Element {
    Element::new("which").with_child(which_variant(which))
}

fn which_variant(which: &Which) -> Element {
    match which {
        Which::Any => Element::new("any"),
        Which::All => Element::new("all"),
        Which::Closest => Element::new("closest"),
        Which::MinAttr(a) => Element::new("min").with_attr("attr", a.clone()),
        Which::MaxAttr(a) => Element::new("max").with_attr("attr", a.clone()),
        Which::Filtered { predicates, then } => {
            let mut e = Element::new("filter");
            for p in predicates {
                e = e.with_child(predicate_to_element(p));
            }
            e.with_child(Element::new("then").with_child(which_variant(then)))
        }
    }
}

fn which_from_element(e: &Element) -> SciResult<Which> {
    which_from_variant(single_child(e)?)
}

fn which_from_variant(inner: &Element) -> SciResult<Which> {
    let attr_of = |elem: &Element| -> SciResult<String> {
        elem.attr("attr")
            .map(str::to_owned)
            .ok_or_else(|| SciError::Parse(format!("<{}> missing attr attribute", elem.name)))
    };
    match inner.name.as_str() {
        "any" => Ok(Which::Any),
        "all" => Ok(Which::All),
        "closest" => Ok(Which::Closest),
        "min" => Ok(Which::MinAttr(attr_of(inner)?)),
        "max" => Ok(Which::MaxAttr(attr_of(inner)?)),
        "filter" => {
            let predicates = inner
                .children_named("pred")
                .map(predicate_from_element)
                .collect::<SciResult<Vec<_>>>()?;
            let then_elem = inner.require_child("then")?;
            let then = which_from_variant(single_child(then_elem)?)?;
            Ok(Which::Filtered {
                predicates,
                then: Box::new(then),
            })
        }
        other => Err(SciError::Parse(format!("unknown which variant <{other}>"))),
    }
}

/// Encodes a predicate as `<pred attr="…" op="…">value?</pred>`.
pub fn predicate_to_element(p: &Predicate) -> Element {
    let mut e = Element::new("pred")
        .with_attr("attr", p.attr.clone())
        .with_attr("op", p.op.name());
    if p.op != CmpOp::Exists {
        e = e.with_child(value_to_element(&p.value));
    }
    e
}

/// Decodes a `<pred>` element.
pub fn predicate_from_element(e: &Element) -> SciResult<Predicate> {
    let attr = e
        .attr("attr")
        .ok_or_else(|| SciError::Parse("<pred> missing attr".into()))?
        .to_owned();
    let op_name = e
        .attr("op")
        .ok_or_else(|| SciError::Parse("<pred> missing op".into()))?;
    let op = CmpOp::from_name(op_name)
        .ok_or_else(|| SciError::Parse(format!("unknown operator `{op_name}`")))?;
    let value = if op == CmpOp::Exists {
        ContextValue::Empty
    } else {
        value_from_element(single_child(e)?)?
    };
    Ok(Predicate { attr, op, value })
}

/// Encodes a context value as a `<value kind="…">` element.
///
/// All [`ContextValue`] variants are supported, recursively.
pub fn value_to_element(v: &ContextValue) -> Element {
    match v {
        ContextValue::Empty => Element::new("value").with_attr("kind", "empty"),
        ContextValue::Bool(b) => {
            Element::text_node("value", b.to_string()).with_attr("kind", "bool")
        }
        ContextValue::Int(i) => Element::text_node("value", i.to_string()).with_attr("kind", "int"),
        ContextValue::Float(x) => {
            Element::text_node("value", format_f64(*x)).with_attr("kind", "float")
        }
        ContextValue::Text(s) => Element::text_node("value", s.clone()).with_attr("kind", "text"),
        ContextValue::Id(g) => Element::text_node("value", g.to_string()).with_attr("kind", "id"),
        ContextValue::Coord(c) => Element::new("value")
            .with_attr("kind", "coord")
            .with_attr("x", format_f64(c.x))
            .with_attr("y", format_f64(c.y)),
        ContextValue::Place(p) => Element::text_node("value", p.clone()).with_attr("kind", "place"),
        ContextValue::Time(t) => {
            Element::text_node("value", t.as_micros().to_string()).with_attr("kind", "time")
        }
        ContextValue::List(items) => {
            let mut e = Element::new("value").with_attr("kind", "list");
            for item in items {
                e = e.with_child(value_to_element(item));
            }
            e
        }
        ContextValue::Record(fields) => {
            let mut e = Element::new("value").with_attr("kind", "record");
            for (k, fv) in fields {
                e = e.with_child(
                    Element::new("field")
                        .with_attr("name", k.clone())
                        .with_child(value_to_element(fv)),
                );
            }
            e
        }
    }
}

/// Decodes a `<value>` element.
pub fn value_from_element(e: &Element) -> SciResult<ContextValue> {
    if e.name != "value" {
        return Err(SciError::Parse(format!(
            "expected <value>, found <{}>",
            e.name
        )));
    }
    let kind = e
        .attr("kind")
        .ok_or_else(|| SciError::Parse("<value> missing kind".into()))?;
    let text = e.trimmed_text();
    match kind {
        "empty" => Ok(ContextValue::Empty),
        "bool" => match text {
            "true" => Ok(ContextValue::Bool(true)),
            "false" => Ok(ContextValue::Bool(false)),
            other => Err(SciError::Parse(format!("invalid bool `{other}`"))),
        },
        "int" => text
            .parse()
            .map(ContextValue::Int)
            .map_err(|_| SciError::Parse(format!("invalid int `{text}`"))),
        "float" => parse_f64(text).map(ContextValue::Float),
        "text" => Ok(ContextValue::Text(e.text.clone())),
        "id" => Ok(ContextValue::Id(text.parse()?)),
        "coord" => {
            let x = parse_f64(
                e.attr("x")
                    .ok_or_else(|| SciError::Parse("coord missing x".into()))?,
            )?;
            let y = parse_f64(
                e.attr("y")
                    .ok_or_else(|| SciError::Parse("coord missing y".into()))?,
            )?;
            Ok(ContextValue::Coord(Coord::new(x, y)))
        }
        "place" => Ok(ContextValue::Place(e.text.clone())),
        "time" => text
            .parse()
            .map(|us| ContextValue::Time(VirtualTime::from_micros(us)))
            .map_err(|_| SciError::Parse(format!("invalid time `{text}`"))),
        "list" => e
            .children
            .iter()
            .map(value_from_element)
            .collect::<SciResult<Vec<_>>>()
            .map(ContextValue::List),
        "record" => {
            let mut fields = Vec::with_capacity(e.children.len());
            for field in e.children_named("field") {
                let name = field
                    .attr("name")
                    .ok_or_else(|| SciError::Parse("<field> missing name".into()))?
                    .to_owned();
                let value = value_from_element(single_child(field)?)?;
                fields.push((name, value));
            }
            Ok(ContextValue::Record(fields))
        }
        other => Err(SciError::Parse(format!("unknown value kind `{other}`"))),
    }
}

// ----------------------------------------------------------------------
// Profile / advertisement / event documents (inter-range payloads)
// ----------------------------------------------------------------------

use sci_types::{Advertisement, ContextEvent, EventSeq, Metadata, Operation, PortSpec, Profile};

fn metadata_to_elements(meta: &Metadata) -> Vec<Element> {
    meta.iter()
        .map(|(k, v)| {
            Element::new("attr")
                .with_attr("name", k)
                .with_child(value_to_element(v))
        })
        .collect()
}

fn metadata_from_children(e: &Element) -> SciResult<Vec<(String, ContextValue)>> {
    e.children_named("attr")
        .map(|attr| {
            let name = attr
                .attr("name")
                .ok_or_else(|| SciError::Parse("<attr> missing name".into()))?
                .to_owned();
            let value = value_from_element(single_child(attr)?)?;
            Ok((name, value))
        })
        .collect()
}

/// Encodes a profile as a `<profile>` document (used when profiles cross
/// ranges in query responses).
pub fn profile_to_element(p: &Profile) -> Element {
    let mut e = Element::new("profile")
        .with_attr("id", p.id().to_string())
        .with_attr("kind", p.kind().name())
        .with_attr("name", p.name());
    for port in p.inputs() {
        e = e.with_child(
            Element::new("input")
                .with_attr("name", port.name.clone())
                .with_attr("type", port.ty.name()),
        );
    }
    for port in p.outputs() {
        e = e.with_child(
            Element::new("output")
                .with_attr("name", port.name.clone())
                .with_attr("type", port.ty.name()),
        );
    }
    for attr in metadata_to_elements(p.attributes()) {
        e = e.with_child(attr);
    }
    e
}

/// Decodes a `<profile>` document.
pub fn profile_from_element(e: &Element) -> SciResult<Profile> {
    if e.name != "profile" {
        return Err(SciError::Parse(format!(
            "expected <profile>, found <{}>",
            e.name
        )));
    }
    let id: Guid = e
        .attr("id")
        .ok_or_else(|| SciError::Parse("<profile> missing id".into()))?
        .parse()?;
    let kind: EntityKind = e
        .attr("kind")
        .ok_or_else(|| SciError::Parse("<profile> missing kind".into()))?
        .parse()?;
    let name = e
        .attr("name")
        .ok_or_else(|| SciError::Parse("<profile> missing name".into()))?;
    let mut builder = Profile::builder(id, kind, name);
    let port_of = |el: &Element| -> SciResult<PortSpec> {
        let name = el
            .attr("name")
            .ok_or_else(|| SciError::Parse("port missing name".into()))?;
        let ty = el
            .attr("type")
            .ok_or_else(|| SciError::Parse("port missing type".into()))?;
        Ok(PortSpec::new(name, ContextType::from_name(ty)))
    };
    for input in e.children_named("input") {
        builder = builder.input(port_of(input)?);
    }
    for output in e.children_named("output") {
        builder = builder.output(port_of(output)?);
    }
    for (k, v) in metadata_from_children(e)? {
        builder = builder.attribute(k, v);
    }
    Ok(builder.build())
}

/// Encodes an advertisement as an `<advertisement>` document.
pub fn advertisement_to_element(ad: &Advertisement) -> Element {
    let mut e = Element::new("advertisement")
        .with_attr("provider", ad.provider().to_string())
        .with_attr("interface", ad.interface());
    for op in ad.operations() {
        let mut oe = Element::new("operation").with_attr("name", op.name.clone());
        for param in &op.params {
            oe = oe.with_child(Element::new("param").with_attr("type", param.name()));
        }
        if let Some(ret) = &op.returns {
            oe = oe.with_child(Element::new("returns").with_attr("type", ret.name()));
        }
        e = e.with_child(oe);
    }
    for attr in metadata_to_elements(ad.attributes()) {
        e = e.with_child(attr);
    }
    e
}

/// Decodes an `<advertisement>` document.
pub fn advertisement_from_element(e: &Element) -> SciResult<Advertisement> {
    if e.name != "advertisement" {
        return Err(SciError::Parse(format!(
            "expected <advertisement>, found <{}>",
            e.name
        )));
    }
    let provider: Guid = e
        .attr("provider")
        .ok_or_else(|| SciError::Parse("<advertisement> missing provider".into()))?
        .parse()?;
    let interface = e
        .attr("interface")
        .ok_or_else(|| SciError::Parse("<advertisement> missing interface".into()))?;
    let mut ad = Advertisement::new(provider, interface);
    for op in e.children_named("operation") {
        let name = op
            .attr("name")
            .ok_or_else(|| SciError::Parse("<operation> missing name".into()))?;
        let params: Vec<ContextType> = op
            .children_named("param")
            .filter_map(|p| p.attr("type"))
            .map(ContextType::from_name)
            .collect();
        let returns = op
            .child("returns")
            .and_then(|r| r.attr("type"))
            .map(ContextType::from_name);
        ad = ad.with_operation(Operation::new(name, params, returns));
    }
    for (k, v) in metadata_from_children(e)? {
        ad = ad.with_attribute(k, v);
    }
    Ok(ad)
}

/// Encodes a context event as an `<event>` document (used when events
/// are relayed between ranges).
pub fn event_to_element(ev: &ContextEvent) -> Element {
    Element::new("event")
        .with_attr("source", ev.source.to_string())
        .with_attr("type", ev.topic.name())
        .with_attr("us", ev.timestamp.as_micros().to_string())
        .with_attr("seq", ev.seq.0.to_string())
        .with_child(value_to_element(&ev.payload))
}

/// Decodes an `<event>` document.
pub fn event_from_element(e: &Element) -> SciResult<ContextEvent> {
    if e.name != "event" {
        return Err(SciError::Parse(format!(
            "expected <event>, found <{}>",
            e.name
        )));
    }
    let source: Guid = e
        .attr("source")
        .ok_or_else(|| SciError::Parse("<event> missing source".into()))?
        .parse()?;
    let ty = e
        .attr("type")
        .ok_or_else(|| SciError::Parse("<event> missing type".into()))?;
    let us: u64 = e
        .attr("us")
        .ok_or_else(|| SciError::Parse("<event> missing us".into()))?
        .parse()
        .map_err(|_| SciError::Parse("invalid event timestamp".into()))?;
    let seq: u64 = e
        .attr("seq")
        .ok_or_else(|| SciError::Parse("<event> missing seq".into()))?
        .parse()
        .map_err(|_| SciError::Parse("invalid event seq".into()))?;
    let payload = value_from_element(single_child(e)?)?;
    Ok(ContextEvent::new(
        source,
        ContextType::from_name(ty),
        payload,
        VirtualTime::from_micros(us),
    )
    .with_seq(EventSeq(seq)))
}

/// Formats an `f64` so that parsing it back yields the identical bits
/// (uses enough precision; `format!("{}")` on f64 is round-trip exact in
/// Rust).
fn format_f64(x: f64) -> String {
    format!("{x}")
}

fn parse_f64(s: &str) -> SciResult<f64> {
    s.parse()
        .map_err(|_| SciError::Parse(format!("invalid float `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use sci_types::EntityKind;

    fn capa_query() -> Query {
        QueryBuilder::new(Guid::from_u128(0xc0ffee), Guid::from_u128(0xb0b))
            .kind(EntityKind::Device)
            .attr_eq("service", "printing")
            .in_place("L10.01")
            .when(When::OnEnter {
                entity: Subject::Owner,
                place: "L10.01".into(),
            })
            .closest()
            .mode(Mode::Advertisement)
            .build()
    }

    #[test]
    fn capa_roundtrip() {
        let q = capa_query();
        let xml = to_xml(&q);
        assert!(xml.starts_with("<query>"));
        assert!(xml.contains("<query_id>"));
        assert!(xml.contains("<owner_id>"));
        assert!(xml.contains("<mode>advertisement</mode>"));
        assert_eq!(from_xml(&xml).unwrap(), q);
    }

    #[test]
    fn every_when_variant_roundtrips() {
        let whens = [
            When::Immediate,
            When::At(VirtualTime::from_secs(5)),
            When::After(VirtualDuration::from_millis(250)),
            When::OnEnter {
                entity: Subject::Entity(Guid::from_u128(7)),
                place: "lobby".into(),
            },
            When::OnLeave {
                entity: Subject::Owner,
                place: "L10.01".into(),
            },
        ];
        for when in whens {
            let q = QueryBuilder::new(Guid::from_u128(1), Guid::from_u128(2))
                .info(ContextType::Location)
                .when(when)
                .build();
            assert_eq!(from_xml(&to_xml(&q)).unwrap(), q);
        }
    }

    #[test]
    fn every_where_variant_roundtrips() {
        let wheres = [
            Where::Anywhere,
            Where::Place("Room 10.01".into()),
            Where::Range("level-ten".into()),
            Where::ClosestTo(Subject::Owner),
            Where::Within {
                center: Subject::Entity(Guid::from_u128(9)),
                radius_m: 12.5,
            },
        ];
        for w in wheres {
            let q = QueryBuilder::new(Guid::from_u128(1), Guid::from_u128(2))
                .info(ContextType::Temperature)
                .where_(w)
                .build();
            assert_eq!(from_xml(&to_xml(&q)).unwrap(), q);
        }
    }

    #[test]
    fn nested_filter_roundtrips() {
        let which = Which::Filtered {
            predicates: vec![
                Predicate::new("queue", CmpOp::Le, ContextValue::Int(0)),
                Predicate::exists("paper"),
            ],
            then: Box::new(Which::Filtered {
                predicates: vec![Predicate::eq("colour", ContextValue::Bool(true))],
                then: Box::new(Which::MinAttr("queue".into())),
            }),
        };
        let q = QueryBuilder::new(Guid::from_u128(1), Guid::from_u128(2))
            .kind(EntityKind::Device)
            .which(which)
            .build();
        assert_eq!(from_xml(&to_xml(&q)).unwrap(), q);
    }

    #[test]
    fn value_recursion_roundtrips() {
        let value = ContextValue::record([
            (
                "ids",
                ContextValue::List(vec![
                    ContextValue::Id(Guid::from_u128(1)),
                    ContextValue::Coord(Coord::new(-1.5, 2.25)),
                ]),
            ),
            ("label", ContextValue::text("a <tricky> & \"quoted\" label")),
            ("empty", ContextValue::Empty),
        ]);
        let q = QueryBuilder::new(Guid::from_u128(1), Guid::from_u128(2))
            .info_matching(
                ContextType::custom("blob"),
                vec![Predicate::eq("payload", value)],
            )
            .build();
        assert_eq!(from_xml(&to_xml(&q)).unwrap(), q);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_xml("<query></query>").is_err(), "missing sections");
        assert!(from_xml("<notquery/>").is_err(), "wrong root");
        let q = capa_query();
        let bad_mode = to_xml(&q).replace("advertisement", "teleport");
        assert!(from_xml(&bad_mode).is_err());
    }

    #[test]
    fn profile_document_roundtrip() {
        let p = Profile::builder(Guid::from_u128(0x123), EntityKind::Software, "pathCE")
            .input(PortSpec::new("from", ContextType::Location))
            .input(PortSpec::new("to", ContextType::Location))
            .output(PortSpec::new("path", ContextType::Path))
            .attribute("version", ContextValue::Int(2))
            .attribute("room", ContextValue::place("L10.01"))
            .build();
        let e = profile_to_element(&p);
        let back = profile_from_element(&e).unwrap();
        assert_eq!(back, p);
        assert!(profile_from_element(&Element::new("nope")).is_err());
    }

    #[test]
    fn advertisement_document_roundtrip() {
        let ad = Advertisement::new(Guid::from_u128(7), "printing")
            .with_operation(Operation::new(
                "submit-job",
                [ContextType::custom("document"), ContextType::Identity],
                Some(ContextType::custom("job-ticket")),
            ))
            .with_operation(Operation::new("cancel-job", [ContextType::Identity], None))
            .with_attribute("ppm", ContextValue::Int(24));
        let back = advertisement_from_element(&advertisement_to_element(&ad)).unwrap();
        assert_eq!(back, ad);
    }

    #[test]
    fn event_document_roundtrip() {
        let ev = ContextEvent::new(
            Guid::from_u128(5),
            ContextType::Presence,
            ContextValue::record([
                ("subject", ContextValue::Id(Guid::from_u128(9))),
                ("to", ContextValue::place("lobby")),
            ]),
            VirtualTime::from_millis(1234),
        )
        .with_seq(EventSeq(42));
        let back = event_from_element(&event_to_element(&ev)).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn custom_context_type_survives() {
        let q = QueryBuilder::new(Guid::from_u128(1), Guid::from_u128(2))
            .info(ContextType::custom("co2-level"))
            .build();
        let back = from_xml(&to_xml(&q)).unwrap();
        assert_eq!(
            back.requested_type(),
            Some(&ContextType::custom("co2-level"))
        );
    }
}
