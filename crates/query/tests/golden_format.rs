//! Golden tests: the serialised forms are stable. Inter-range
//! communication depends on every Context Server producing and parsing
//! the same documents, so any change to these strings is a wire-format
//! break and must be deliberate.

use sci_query::codec::{event_to_element, from_xml, profile_to_element, to_xml};
use sci_query::{CmpOp, Mode, Predicate, Query, Subject, What, When, Where, Which};
use sci_types::{
    ContextEvent, ContextType, ContextValue, EntityKind, EventSeq, Guid, PortSpec, Profile,
    VirtualTime,
};

fn capa_query() -> Query {
    Query {
        id: Guid::from_u128(0x1111),
        owner: Guid::from_u128(0x2222),
        what: What::Kind(EntityKind::Device),
        where_: Where::ClosestTo(Subject::Entity(Guid::from_u128(0xb0b))),
        when: When::OnEnter {
            entity: Subject::Entity(Guid::from_u128(0xb0b)),
            place: "L10.01".into(),
        },
        which: Which::Filtered {
            predicates: vec![
                Predicate::eq("service", ContextValue::text("printing")),
                Predicate::new("queue", CmpOp::Le, ContextValue::Int(0)),
            ],
            then: Box::new(Which::Closest),
        },
        mode: Mode::Advertisement,
    }
}

#[test]
fn query_document_is_stable() {
    let expected = concat!(
        "<query>",
        "<query_id>00000000-0000-0000-0000-000000001111</query_id>",
        "<owner_id>00000000-0000-0000-0000-000000002222</owner_id>",
        "<what><kind>device</kind></what>",
        "<where><closest-to>00000000-0000-0000-0000-000000000b0b</closest-to></where>",
        "<when><on-enter entity=\"00000000-0000-0000-0000-000000000b0b\">",
        "<place>L10.01</place></on-enter></when>",
        "<which><filter>",
        "<pred attr=\"service\" op=\"eq\"><value kind=\"text\">printing</value></pred>",
        "<pred attr=\"queue\" op=\"le\"><value kind=\"int\">0</value></pred>",
        "<then><closest/></then>",
        "</filter></which>",
        "<mode>advertisement</mode>",
        "</query>",
    );
    assert_eq!(to_xml(&capa_query()), expected);
    // And a historical document parses back to the same AST.
    assert_eq!(from_xml(expected).unwrap(), capa_query());
}

#[test]
fn profile_document_is_stable() {
    let p = Profile::builder(Guid::from_u128(0x100), EntityKind::Software, "pathCE")
        .input(PortSpec::new("from", ContextType::Location))
        .input(PortSpec::new("to", ContextType::Location))
        .output(PortSpec::new("path", ContextType::Path))
        .attribute("version", ContextValue::Int(1))
        .build();
    let expected = concat!(
        "<profile id=\"00000000-0000-0000-0000-000000000100\" ",
        "kind=\"software\" name=\"pathCE\">",
        "<input name=\"from\" type=\"location\"/>",
        "<input name=\"to\" type=\"location\"/>",
        "<output name=\"path\" type=\"path\"/>",
        "<attr name=\"version\"><value kind=\"int\">1</value></attr>",
        "</profile>",
    );
    assert_eq!(profile_to_element(&p).to_xml(), expected);
}

#[test]
fn event_document_is_stable() {
    let ev = ContextEvent::new(
        Guid::from_u128(0xd00d),
        ContextType::Presence,
        ContextValue::record([
            ("subject", ContextValue::Id(Guid::from_u128(0xb0b))),
            ("to", ContextValue::place("L10.01")),
        ]),
        VirtualTime::from_secs(12),
    )
    .with_seq(EventSeq(7));
    let expected = concat!(
        "<event source=\"00000000-0000-0000-0000-00000000d00d\" ",
        "type=\"presence\" us=\"12000000\" seq=\"7\">",
        "<value kind=\"record\">",
        "<field name=\"subject\">",
        "<value kind=\"id\">00000000-0000-0000-0000-000000000b0b</value></field>",
        "<field name=\"to\"><value kind=\"place\">L10.01</value></field>",
        "</value></event>",
    );
    assert_eq!(event_to_element(&ev).to_xml(), expected);
}
