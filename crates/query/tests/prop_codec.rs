//! Property tests: the query XML codec is a bijection over the AST.

use proptest::prelude::*;
use sci_query::codec::{from_xml, to_xml};
use sci_query::{CmpOp, Mode, Predicate, Query, Subject, What, When, Where, Which};
use sci_types::{ContextType, ContextValue, Coord, Guid, VirtualDuration, VirtualTime};

fn arb_guid() -> impl Strategy<Value = Guid> {
    any::<u128>().prop_map(Guid::from_u128)
}

fn arb_subject() -> impl Strategy<Value = Subject> {
    prop_oneof![Just(Subject::Owner), arb_guid().prop_map(Subject::Entity)]
}

fn arb_context_type() -> impl Strategy<Value = ContextType> {
    prop_oneof![
        Just(ContextType::Identity),
        Just(ContextType::Presence),
        Just(ContextType::Location),
        Just(ContextType::Path),
        Just(ContextType::Temperature),
        Just(ContextType::PrinterStatus),
        "[a-z][a-z0-9-]{0,12}".prop_map(ContextType::Custom),
    ]
}

fn arb_value() -> impl Strategy<Value = ContextValue> {
    let leaf = prop_oneof![
        Just(ContextValue::Empty),
        any::<bool>().prop_map(ContextValue::Bool),
        any::<i64>().prop_map(ContextValue::Int),
        // Finite floats only: NaN breaks PartialEq-based comparison.
        (-1.0e12f64..1.0e12).prop_map(ContextValue::Float),
        ".{0,24}".prop_map(ContextValue::Text),
        arb_guid().prop_map(ContextValue::Id),
        ((-1.0e6f64..1.0e6), (-1.0e6f64..1.0e6))
            .prop_map(|(x, y)| ContextValue::Coord(Coord::new(x, y))),
        ".{0,16}".prop_map(ContextValue::Place),
        any::<u64>().prop_map(|us| ContextValue::Time(VirtualTime::from_micros(us))),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(ContextValue::List),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..4)
                .prop_map(|fields| { ContextValue::Record(fields.into_iter().collect()) }),
        ]
    })
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    (
        "[a-z][a-z0-9_-]{0,10}",
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge),
            Just(CmpOp::Contains),
        ],
        arb_value(),
    )
        .prop_map(|(attr, op, value)| Predicate { attr, op, value })
        .boxed()
        .prop_union("[a-z][a-z0-9_-]{0,10}".prop_map(Predicate::exists).boxed())
}

fn arb_what() -> impl Strategy<Value = What> {
    prop_oneof![
        prop_oneof![
            Just(sci_types::EntityKind::Person),
            Just(sci_types::EntityKind::Software),
            Just(sci_types::EntityKind::Place),
            Just(sci_types::EntityKind::Device),
            Just(sci_types::EntityKind::Artifact),
        ]
        .prop_map(What::Kind),
        arb_guid().prop_map(What::Named),
        (
            arb_context_type(),
            prop::collection::vec(arb_predicate(), 0..3)
        )
            .prop_map(|(ty, constraints)| What::Information { ty, constraints }),
    ]
}

fn arb_where() -> impl Strategy<Value = Where> {
    prop_oneof![
        Just(Where::Anywhere),
        // Interior spaces are fine ("Room 10.01"); leading/trailing
        // whitespace is normalised away by the codec, so keep the
        // generator trim-stable.
        "[A-Za-z0-9.]([A-Za-z0-9 .]{0,14}[A-Za-z0-9.])?".prop_map(Where::Place),
        "[a-z-]{1,16}".prop_map(Where::Range),
        arb_subject().prop_map(Where::ClosestTo),
        (arb_subject(), 0.0f64..500.0)
            .prop_map(|(center, radius_m)| Where::Within { center, radius_m }),
    ]
}

fn arb_when() -> impl Strategy<Value = When> {
    prop_oneof![
        Just(When::Immediate),
        any::<u64>().prop_map(|us| When::At(VirtualTime::from_micros(us))),
        any::<u64>().prop_map(|us| When::After(VirtualDuration::from_micros(us))),
        (arb_subject(), "[A-Za-z0-9.]{1,12}")
            .prop_map(|(entity, place)| When::OnEnter { entity, place }),
        (arb_subject(), "[A-Za-z0-9.]{1,12}")
            .prop_map(|(entity, place)| When::OnLeave { entity, place }),
    ]
}

fn arb_which() -> impl Strategy<Value = Which> {
    let leaf = prop_oneof![
        Just(Which::Any),
        Just(Which::All),
        Just(Which::Closest),
        "[a-z]{1,10}".prop_map(Which::MinAttr),
        "[a-z]{1,10}".prop_map(Which::MaxAttr),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        (prop::collection::vec(arb_predicate(), 1..3), inner).prop_map(|(predicates, then)| {
            Which::Filtered {
                predicates,
                then: Box::new(then),
            }
        })
    })
}

fn arb_mode() -> impl Strategy<Value = Mode> {
    prop_oneof![
        Just(Mode::Profile),
        Just(Mode::Subscribe),
        Just(Mode::SubscribeOnce),
        Just(Mode::Advertisement),
    ]
}

prop_compose! {
    fn arb_query()(
        id in arb_guid(),
        owner in arb_guid(),
        what in arb_what(),
        where_ in arb_where(),
        when in arb_when(),
        which in arb_which(),
        mode in arb_mode(),
    ) -> Query {
        Query { id, owner, what, where_, when, which, mode }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every query survives a serialise → parse round trip unchanged.
    #[test]
    fn codec_roundtrip(q in arb_query()) {
        let xml = to_xml(&q);
        let back = from_xml(&xml).unwrap();
        prop_assert_eq!(back, q);
    }

    /// Serialised queries always carry the five Figure 6 sections.
    #[test]
    fn serialised_form_has_all_sections(q in arb_query()) {
        let xml = to_xml(&q);
        for section in ["query_id", "owner_id", "what", "where", "when", "which", "mode"] {
            prop_assert!(xml.contains(&format!("<{section}")), "missing <{}> in {}", section, xml);
        }
    }

    /// Parsing arbitrary junk never panics.
    #[test]
    fn parser_never_panics(s in ".{0,200}") {
        let _ = from_xml(&s);
    }
}
