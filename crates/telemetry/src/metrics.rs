//! Atomic instruments and the registry that names them.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-shared:
//! clone them out of the [`Registry`] once, store them next to the hot
//! path, and every update is a relaxed atomic op. The registry mutex is
//! only taken on registration and snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::snapshot::{HistogramSnapshot, TelemetrySnapshot};

/// Number of buckets in a [`Histogram`]: bucket `0` holds zero-valued
/// samples, bucket `i` holds samples in `[2^(i-1), 2^i)`, and the last
/// bucket absorbs everything at or above `2^(HISTOGRAM_BUCKETS-2)`
/// (~33 s when recording microseconds).
pub const HISTOGRAM_BUCKETS: usize = 26;

/// Monotonically increasing `u64` counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed instantaneous value (queue depths, in-flight counts).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// Fixed power-of-two-bucket latency histogram (values are expected in
/// microseconds but any `u64` works). Recording is three relaxed
/// atomic increments; no locks, no allocation.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        let pow = (64 - v.leading_zeros()) as usize;
        pow.min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    fn freeze(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count(),
            sum: self.sum(),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// Named instrument registry. Cloning is cheap (`Arc`); clones share
/// the same instruments, which is how per-range registries stay
/// readable from a federation coordinator after the range's server has
/// moved onto its worker thread.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Instruments are plain atomics; a panic while holding the
    // registration lock cannot leave them torn, so poisoning is safe to
    // shrug off.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        locked(&self.inner.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or register the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        locked(&self.inner.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or register the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        locked(&self.inner.histograms)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Freeze every instrument into a [`TelemetrySnapshot`], sorted by
    /// name (the registry maps are `BTreeMap`s, so this is
    /// deterministic).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: locked(&self.inner.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: locked(&self.inner.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: locked(&self.inner.histograms)
                .iter()
                .map(|(k, v)| v.freeze(k))
                .collect(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("a");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying instrument.
        assert_eq!(reg.counter("a").get(), 5);

        let g = reg.gauge("depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);

        let h = Histogram::default();
        for v in [0, 1, 3, 700] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 704);
        assert!((h.mean() - 176.0).abs() < f64::EPSILON);
    }

    #[test]
    fn registry_clones_share_instruments() {
        let reg = Registry::new();
        let clone = reg.clone();
        reg.counter("shared").inc();
        clone.counter("shared").add(2);
        assert_eq!(reg.snapshot().counter("shared"), 3);
    }

    #[test]
    fn instruments_are_send_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("x");
        let h = reg.histogram("h");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 400);
        assert_eq!(h.count(), 400);
    }
}
