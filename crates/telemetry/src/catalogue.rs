//! The central metric catalogue.
//!
//! Every metric name an SCI crate registers at a
//! [`Registry`](crate::Registry) must appear here — either verbatim in
//! [`METRICS`] or as an instance of a [`METRIC_PATTERNS`] family. The
//! `sci-lint` binary (SCI-A302) walks workspace sources and rejects
//! any `counter(...)`/`gauge(...)`/`histogram(...)` call whose literal
//! name is missing, so dashboards and docs can trust this file as the
//! complete vocabulary. Keep the lists sorted; the unit tests insist.

/// Every statically-named metric the workspace registers.
pub const METRICS: &[&str] = &[
    "bus.deliver.count",
    "bus.fanout",
    "bus.publish.count",
    "bus.publish.latency_us",
    "fault.delays",
    "fault.drops",
    "fault.dups",
    "fault.partition_blocks",
    "fault.reorders",
    "federation.answers.partial",
    "federation.barrier_us",
    "federation.cast_us",
    "federation.relay.answers",
    "federation.relay.dedup_hits",
    "federation.relay.events",
    "federation.relay.stale_drops",
    "federation.relay.unknown_app",
    "federation.relay_us",
    "federation.retry.attempts",
    "federation.retry.parked",
    "federation.stream.answers",
    "federation.stream.events",
    "federation.stream.pump_us",
    "net.delivered",
    "net.failed",
    "net.hops",
    "net.recoveries",
    "net.tcp.accepts",
    "net.tcp.ack_timeouts",
    "net.tcp.bytes.recv",
    "net.tcp.bytes.sent",
    "net.tcp.conns",
    "net.tcp.corrupt_frames",
    "net.tcp.frames.recv",
    "net.tcp.frames.sent",
    "net.tcp.handshake.rejected",
    "net.tcp.handshakes",
    "net.tcp.sync.applied",
    "net.tcp.sync.rounds",
    "range.app.deliveries",
    "range.call.wait_us",
    "range.deregister.unknown",
    "range.mailbox.depth",
    "range.mailbox.highwater",
    "range.mailbox.shed",
    "range.migrate.in",
    "range.migrate.inflight_us",
    "range.migrate.out",
    "range.panics",
    "range.restart.replay_errors",
    "range.restarts",
    "range.stale_drops",
    "resolver.plan.count",
    "resolver.plan.edges",
    "resolver.plan.latency_us",
    "resolver.plan.nodes",
    "resolver.plan.rejected",
    "wal.append_us",
    "wal.bytes",
    "wal.fsync_us",
    "wal.recover_us",
    "wal.segments",
    "wal.snapshot_us",
    "wal.torn_tail",
];

/// Metric families whose names are minted at runtime: `*` stands for
/// exactly one dot-free segment (the per-command telemetry derives one
/// counter/histogram pair per `RangeCommand::KINDS` entry).
pub const METRIC_PATTERNS: &[&str] = &["range.cmd.*.count", "range.cmd.*.latency_us"];

/// Whether `name` is in the catalogue, either verbatim or as an
/// instance of a pattern family.
pub fn contains(name: &str) -> bool {
    METRICS.binary_search(&name).is_ok() || METRIC_PATTERNS.iter().any(|p| matches(p, name))
}

/// Matches a single-`*` pattern against a name; `*` spans exactly one
/// dot-free segment.
fn matches(pattern: &str, name: &str) -> bool {
    match pattern.split_once('*') {
        Some((prefix, suffix)) => {
            let Some(middle) = name
                .strip_prefix(prefix)
                .and_then(|rest| rest.strip_suffix(suffix))
            else {
                return false;
            };
            !middle.is_empty() && !middle.contains('.')
        }
        None => pattern == name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_sorted_and_distinct() {
        let mut sorted = METRICS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, METRICS, "keep METRICS sorted and duplicate-free");
    }

    #[test]
    fn contains_accepts_static_names_and_families() {
        assert!(contains("bus.publish.count"));
        assert!(contains("range.cmd.register.count"));
        assert!(contains("range.cmd.set-reuse.latency_us"));
        assert!(!contains("range.cmd..count"), "empty segment rejected");
        assert!(
            !contains("range.cmd.a.b.count"),
            "the wildcard spans one segment only"
        );
        assert!(!contains("made.up.metric"));
    }
}
