//! Structured span/event tracing facade.
//!
//! Instrumented code talks to a [`Tracer`]; where the records go is
//! decided by the installed [`Subscriber`]. The default
//! [`NoopSubscriber`] reports `enabled() == false`, which lets call
//! sites skip field formatting *and* the span's clock read entirely —
//! tracing costs one `Arc` deref + one bool test when nobody listens.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// One emitted trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceRecord {
    /// Instantaneous structured event.
    Event {
        /// Dotted-lowercase event name (e.g. `federation.relay`).
        name: String,
        /// Key/value payload, in call-site order.
        fields: Vec<(String, String)>,
    },
    /// Closed span with its measured duration.
    Span {
        /// Dotted-lowercase span name (e.g. `range.cmd.ingest`).
        name: String,
        /// Wall-clock duration between span open and drop.
        elapsed_us: u64,
        /// Key/value payload, in call-site order.
        fields: Vec<(String, String)>,
    },
}

impl TraceRecord {
    /// The record's name, whichever variant it is.
    pub fn name(&self) -> &str {
        match self {
            TraceRecord::Event { name, .. } | TraceRecord::Span { name, .. } => name,
        }
    }
}

/// Where trace records go. Implementations must be cheap and
/// thread-safe; `record` may be called from range worker threads.
pub trait Subscriber: Send + Sync {
    /// When `false`, instrumented code skips record construction (and
    /// the clock read for spans) entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one record.
    fn record(&self, rec: TraceRecord);
}

/// Default subscriber: disabled, discards everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _rec: TraceRecord) {}
}

fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Bounded in-memory subscriber for tests and post-mortem inspection:
/// keeps the most recent `capacity` records.
#[derive(Debug)]
pub struct RingBufferSubscriber {
    capacity: usize,
    buf: Mutex<VecDeque<TraceRecord>>,
}

impl RingBufferSubscriber {
    /// Buffer holding at most `capacity` records (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Snapshot of the buffered records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        locked(&self.buf).iter().cloned().collect()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        locked(&self.buf).len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Subscriber for RingBufferSubscriber {
    fn record(&self, rec: TraceRecord) {
        let mut buf = locked(&self.buf);
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(rec);
    }
}

/// Human-oriented subscriber: one line per record
/// (`span range.cmd.ingest elapsed_us=12 kind=ingest`) onto any
/// `Write` sink. Write errors are swallowed — telemetry must never
/// take the middleware down.
pub struct LineSubscriber<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> LineSubscriber<W> {
    /// Wrap a sink (e.g. `std::io::stderr()`, a `Vec<u8>` in tests).
    pub fn new(out: W) -> Self {
        Self {
            out: Mutex::new(out),
        }
    }

    /// Recover the sink.
    pub fn into_inner(self) -> W {
        self.out
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<W: Write + Send> fmt::Debug for LineSubscriber<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LineSubscriber").finish_non_exhaustive()
    }
}

impl<W: Write + Send> Subscriber for LineSubscriber<W> {
    fn record(&self, rec: TraceRecord) {
        let mut out = locked(&self.out);
        let result = match rec {
            TraceRecord::Event { name, fields } => {
                let mut line = format!("event {name}");
                for (k, v) in fields {
                    line.push_str(&format!(" {k}={v}"));
                }
                writeln!(out, "{line}")
            }
            TraceRecord::Span {
                name,
                elapsed_us,
                fields,
            } => {
                let mut line = format!("span {name} elapsed_us={elapsed_us}");
                for (k, v) in fields {
                    line.push_str(&format!(" {k}={v}"));
                }
                writeln!(out, "{line}")
            }
        };
        drop(result);
    }
}

/// Cheap, cloneable handle instrumented code holds onto. Wraps the
/// installed [`Subscriber`]; defaults to [`NoopSubscriber`].
#[derive(Clone)]
pub struct Tracer {
    sub: Arc<dyn Subscriber>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::noop()
    }
}

impl Tracer {
    /// Tracer that discards everything (and tells call sites so).
    pub fn noop() -> Self {
        Self {
            sub: Arc::new(NoopSubscriber),
        }
    }

    /// Tracer feeding the given subscriber.
    pub fn new(sub: Arc<dyn Subscriber>) -> Self {
        Self { sub }
    }

    /// Whether the installed subscriber wants records.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sub.enabled()
    }

    /// Emit an instantaneous event (no-op when disabled).
    pub fn event(&self, name: &str, fields: &[(&str, String)]) {
        if self.enabled() {
            self.sub.record(TraceRecord::Event {
                name: name.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Open a span; its duration is measured from now until the guard
    /// drops. When disabled, no clock is read and drop is free.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            tracer: self,
            name,
            start: self.enabled().then(Instant::now), // sci-lint: allow(wall-clock): telemetry timing
            fields: Vec::new(),
        }
    }
}

/// RAII guard for an open span — see [`Tracer::span`].
#[derive(Debug)]
pub struct Span<'t> {
    tracer: &'t Tracer,
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(String, String)>,
}

impl Span<'_> {
    /// Attach a key/value field (dropped when tracing is disabled).
    pub fn field(&mut self, key: &str, value: impl fmt::Display) {
        if self.start.is_some() {
            self.fields.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.tracer.sub.record(TraceRecord::Span {
                name: self.name.to_string(),
                elapsed_us,
                fields: std::mem::take(&mut self.fields),
            });
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_is_disabled_and_silent() {
        let t = Tracer::noop();
        assert!(!t.enabled());
        t.event("x", &[("k", "v".to_string())]);
        let mut s = t.span("y");
        s.field("k", 1);
        drop(s);
        // Nothing observable — mainly checks nothing panics and no
        // clock is read (start is None).
    }

    #[test]
    fn ring_buffer_captures_events_and_spans() {
        let ring = Arc::new(RingBufferSubscriber::new(8));
        let t = Tracer::new(ring.clone());
        assert!(t.enabled());
        t.event("bus.publish", &[("fanout", "3".to_string())]);
        {
            let mut s = t.span("range.cmd.ingest");
            s.field("kind", "ingest");
        }
        let recs = ring.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name(), "bus.publish");
        match &recs[1] {
            TraceRecord::Span { name, fields, .. } => {
                assert_eq!(name, "range.cmd.ingest");
                assert_eq!(fields[0], ("kind".to_string(), "ingest".to_string()));
            }
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let ring = Arc::new(RingBufferSubscriber::new(2));
        let t = Tracer::new(ring.clone());
        for i in 0..5 {
            t.event(&format!("e{i}"), &[]);
        }
        let names: Vec<_> = ring
            .records()
            .iter()
            .map(|r| r.name().to_string())
            .collect();
        assert_eq!(names, ["e3", "e4"]);
    }

    #[test]
    fn line_subscriber_formats_records() {
        let sub = Arc::new(LineSubscriber::new(Vec::new()));
        let t = Tracer::new(sub.clone());
        t.event("federation.relay", &[("events", "2".to_string())]);
        drop(t);
        let sub = Arc::into_inner(sub).unwrap();
        let text = String::from_utf8(sub.into_inner()).unwrap();
        assert_eq!(text, "event federation.relay events=2\n");
    }
}
