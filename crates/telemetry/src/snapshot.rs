//! Frozen registry state: mergeable, comparable, serialisable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Frozen state of one [`Histogram`](crate::Histogram).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name of the histogram.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Per-bucket sample counts (see
    /// [`HISTOGRAM_BUCKETS`](crate::HISTOGRAM_BUCKETS)).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time freeze of a [`Registry`](crate::Registry), or the
/// merge of several (one per range plus a coordinator, say). Entries
/// are kept sorted by name so snapshots are deterministic and
/// comparable.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram freezes, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Value of the counter called `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of the gauge called `name` (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The histogram called `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Fold `other` into `self`: counters and gauges sum by name,
    /// histograms add per-bucket. Used to aggregate per-range
    /// registries into one federation-wide view. All additions
    /// saturate — a merge of extreme totals must never panic.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        let mut counters: BTreeMap<String, u64> = self.counters.drain(..).collect();
        for (name, v) in &other.counters {
            let slot = counters.entry(name.clone()).or_default();
            *slot = slot.saturating_add(*v);
        }
        self.counters = counters.into_iter().collect();

        let mut gauges: BTreeMap<String, i64> = self.gauges.drain(..).collect();
        for (name, v) in &other.gauges {
            let slot = gauges.entry(name.clone()).or_default();
            *slot = slot.saturating_add(*v);
        }
        self.gauges = gauges.into_iter().collect();

        let mut hists: BTreeMap<String, HistogramSnapshot> = self
            .histograms
            .drain(..)
            .map(|h| (h.name.clone(), h))
            .collect();
        for h in &other.histograms {
            match hists.get_mut(&h.name) {
                Some(mine) => {
                    mine.count = mine.count.saturating_add(h.count);
                    mine.sum = mine.sum.saturating_add(h.sum);
                    if mine.buckets.len() < h.buckets.len() {
                        mine.buckets.resize(h.buckets.len(), 0);
                    }
                    for (m, o) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *m = m.saturating_add(*o);
                    }
                }
                None => {
                    hists.insert(h.name.clone(), h.clone());
                }
            }
        }
        self.histograms = hists.into_values().collect();
    }

    /// Render as a deterministic single JSON object (the same
    /// hand-rolled JSON-line convention the benches use for
    /// `BENCH_*.json`). Bucket arrays are elided for empty histograms.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {v}", escape_json(name));
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {v}", escape_json(name));
        }
        out.push_str("}, \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.2}}}",
                escape_json(&h.name),
                h.count,
                h.sum,
                h.mean()
            );
        }
        out.push_str("}}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use crate::Registry;

    #[test]
    fn snapshot_reads_back_values() {
        let reg = Registry::new();
        reg.counter("pub").add(7);
        reg.gauge("depth").set(2);
        reg.histogram("lat").record(5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pub"), 7);
        assert_eq!(snap.gauge("depth"), 2);
        let h = snap.histogram("lat").unwrap();
        assert_eq!((h.count, h.sum), (1, 5));
        assert_eq!(snap.counter("missing"), 0);
        assert!(snap.histogram("missing").is_none());
    }

    #[test]
    fn merge_sums_by_name_and_keeps_sorted() {
        let a = Registry::new();
        a.counter("x").add(1);
        a.counter("z").add(10);
        a.histogram("h").record(4);
        let b = Registry::new();
        b.counter("x").add(2);
        b.counter("a").add(5);
        b.histogram("h").record(8);
        b.gauge("g").set(-1);

        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("x"), 3);
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("z"), 10);
        assert_eq!(snap.gauge("g"), -1);
        let h = snap.histogram("h").unwrap();
        assert_eq!((h.count, h.sum), (2, 12));
        let names: Vec<_> = snap.counters.iter().map(|(n, _)| n.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn json_rendering_is_deterministic_and_escaped() {
        let reg = Registry::new();
        reg.counter("a\"b").inc();
        reg.histogram("lat").record(10);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert_eq!(json, snap.to_json());
        assert!(json.contains("\"a\\\"b\": 1"));
        assert!(json.contains("\"lat\": {\"count\": 1, \"sum\": 10, \"mean\": 10.00}"));
    }
}
