//! # sci-telemetry — observability spine for the SCI middleware
//!
//! Two small, dependency-free facilities:
//!
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`]) —
//!   a lock-light registry of named instruments. Registration takes a
//!   mutex once (cold path); after that every handle is an `Arc` of
//!   atomics, so recording on the hot path is a handful of relaxed
//!   atomic ops and never blocks. [`Registry::snapshot`] freezes the
//!   current values into a [`TelemetrySnapshot`] that can be merged
//!   across ranges and serialised (JSON here, XML via `sci-core`'s
//!   existing element conventions).
//! * **Tracing** ([`Tracer`], [`Subscriber`]) — a structured span/event
//!   facade with pluggable subscribers: [`NoopSubscriber`] (default;
//!   disabled, so instrumented code skips even the clock read),
//!   [`RingBufferSubscriber`] (bounded in-memory buffer for tests) and
//!   [`LineSubscriber`] (line-format writer for humans).
//!
//! The crate is deliberately a leaf: `std` only, no workspace or
//! vendored dependencies, so `sci-event`, `sci-core` and the benches
//! can all instrument themselves without new edges in the dependency
//! graph.

#![forbid(unsafe_code)]

pub mod catalogue;
mod metrics;
mod snapshot;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS};
pub use snapshot::{HistogramSnapshot, TelemetrySnapshot};
pub use trace::{
    LineSubscriber, NoopSubscriber, RingBufferSubscriber, Span, Subscriber, TraceRecord, Tracer,
};
