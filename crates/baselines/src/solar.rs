//! A Solar-style operator-graph engine.
//!
//! "Solar supports dynamic composition of context components … It
//! requires the application developer to explicitly specify the
//! composition graph of context components. The infrastructure will try
//! to find the common parts of context processing graphs of different
//! applications and will reuse them, thus improving scalability."
//! (paper, Section 2)
//!
//! [`SolarEngine`] implements both halves of that description: an
//! application hands in an explicit [`GraphSpec`] (sources by id,
//! operators by kind, explicit edges), and structurally identical
//! sub-trees are shared between applications. What it deliberately does
//! *not* do — the robustness gap the paper identifies — is repair: when
//! a named source dies, affected applications must call
//! [`SolarEngine::respecify`] themselves.

use std::collections::HashMap;

use sci_location::floorplan::FloorPlan;
use sci_types::{ContextEvent, ContextType, ContextValue, Guid, SciError, SciResult, VirtualTime};

/// One node of an application-specified operator graph.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SpecNode {
    /// A concrete event source, named explicitly by the application.
    Source(Guid),
    /// Presence → location over the engine's floor plan, filtered to a
    /// subject.
    LocationOf(Guid),
    /// Latest-location pair → path between two subjects.
    PathBetween(Guid, Guid),
}

/// An explicit composition graph: `nodes[0]` is the output; each node
/// lists the indices of its children (inputs).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GraphSpec {
    /// The nodes, output first.
    pub nodes: Vec<SpecNode>,
    /// `children[i]` are the node indices feeding node `i`.
    pub children: Vec<Vec<usize>>,
}

impl GraphSpec {
    /// The conventional Figure 3 graph, spelled out by hand: path
    /// between two subjects over explicitly chosen door sensors — the
    /// explicitness is the point of the baseline.
    pub fn path_between(from: Guid, to: Guid, door_sensors: &[Guid]) -> Self {
        // node 0: path; node 1: loc(from); node 2: loc(to); 3..: sources.
        let mut nodes = vec![
            SpecNode::PathBetween(from, to),
            SpecNode::LocationOf(from),
            SpecNode::LocationOf(to),
        ];
        let source_ids: Vec<usize> = door_sensors
            .iter()
            .map(|&d| {
                nodes.push(SpecNode::Source(d));
                nodes.len() - 1
            })
            .collect();
        GraphSpec {
            nodes,
            children: vec![vec![1, 2], source_ids.clone(), source_ids]
                .into_iter()
                .chain(std::iter::repeat_with(Vec::new).take(door_sensors.len()))
                .collect(),
        }
    }

    /// A canonical key for one subtree (used for cross-application
    /// sharing).
    fn subtree_key(&self, idx: usize) -> String {
        let mut key = format!("{:?}(", self.nodes[idx]);
        for &c in &self.children[idx] {
            key.push_str(&self.subtree_key(c));
            key.push(',');
        }
        key.push(')');
        key
    }
}

struct OperatorInstance {
    node: SpecNode,
    /// Latest location per subject (for path operators).
    last_location: HashMap<Guid, sci_types::Coord>,
    /// Instance ids of children (or source GUIDs).
    inputs: Vec<Guid>,
    outputs_seen: u64,
}

/// One application's attachment to the engine.
#[derive(Clone, Debug)]
pub struct Attachment {
    /// The application.
    pub app: Guid,
    /// The root operator instance its deliveries come from.
    pub root: Guid,
    /// The sources its graph names (for failure accounting).
    pub sources: Vec<Guid>,
}

/// The Solar-style engine: explicit graphs, shared subtrees, no repair.
pub struct SolarEngine {
    plan: FloorPlan,
    operators: HashMap<Guid, OperatorInstance>,
    shared: HashMap<String, Guid>,
    attachments: Vec<Attachment>,
    deliveries: Vec<(Guid, ContextEvent)>,
    next_raw: u128,
}

impl std::fmt::Debug for SolarEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolarEngine")
            .field("operators", &self.operators.len())
            .field("attachments", &self.attachments.len())
            .finish()
    }
}

impl SolarEngine {
    /// Creates an engine over a floor plan.
    pub fn new(plan: FloorPlan) -> Self {
        SolarEngine {
            plan,
            operators: HashMap::new(),
            shared: HashMap::new(),
            attachments: Vec::new(),
            deliveries: Vec::new(),
            next_raw: 0x5_01a8_0000,
        }
    }

    fn fresh_id(&mut self) -> Guid {
        self.next_raw += 1;
        Guid::from_u128(self.next_raw)
    }

    /// Instantiates (or shares) the graph an application specified and
    /// attaches the application to its root. Returns the attachment.
    ///
    /// # Errors
    ///
    /// Returns [`SciError::Parse`] for malformed specs (dangling child
    /// indices).
    pub fn attach(&mut self, app: Guid, spec: &GraphSpec) -> SciResult<Attachment> {
        for children in &spec.children {
            for &c in children {
                if c >= spec.nodes.len() {
                    return Err(SciError::Parse(format!("dangling child index {c}")));
                }
            }
        }
        let root = self.instantiate(spec, 0)?;
        let sources = spec
            .nodes
            .iter()
            .filter_map(|n| match n {
                SpecNode::Source(g) => Some(*g),
                _ => None,
            })
            .collect();
        let attachment = Attachment { app, root, sources };
        self.attachments.push(attachment.clone());
        Ok(attachment)
    }

    fn instantiate(&mut self, spec: &GraphSpec, idx: usize) -> SciResult<Guid> {
        if let SpecNode::Source(g) = spec.nodes[idx] {
            return Ok(g);
        }
        let key = spec.subtree_key(idx);
        if let Some(&existing) = self.shared.get(&key) {
            return Ok(existing);
        }
        let mut inputs = Vec::new();
        for &c in &spec.children[idx] {
            inputs.push(self.instantiate(spec, c)?);
        }
        let id = self.fresh_id();
        self.operators.insert(
            id,
            OperatorInstance {
                node: spec.nodes[idx].clone(),
                last_location: HashMap::new(),
                inputs,
                outputs_seen: 0,
            },
        );
        self.shared.insert(key, id);
        Ok(id)
    }

    /// Detaches an application and re-attaches it with a new spec — the
    /// *manual* recovery step Solar requires after source failure.
    ///
    /// # Errors
    ///
    /// As for [`SolarEngine::attach`].
    pub fn respecify(&mut self, app: Guid, spec: &GraphSpec) -> SciResult<Attachment> {
        self.attachments.retain(|a| a.app != app);
        self.attach(app, spec)
    }

    /// Number of live operator instances (the sharing measurable).
    pub fn operator_count(&self) -> usize {
        self.operators.len()
    }

    /// Feeds one sensor event through every graph.
    pub fn ingest(&mut self, event: &ContextEvent, now: VirtualTime) {
        // Wavefront of (producer id, event).
        let mut wave = vec![(event.source, event.clone())];
        while let Some((producer, ev)) = wave.pop() {
            let consumer_ids: Vec<Guid> = self
                .operators
                .iter()
                .filter(|(_, op)| op.inputs.contains(&producer))
                .map(|(&id, _)| id)
                .collect();
            for id in consumer_ids {
                let op = self.operators.get_mut(&id).expect("listed");
                let out = apply_operator(&self.plan, op, &ev, now);
                if let Some(out_ev) = out {
                    op.outputs_seen += 1;
                    let stamped = ContextEvent::new(id, out_ev.topic, out_ev.payload, now);
                    for a in &self.attachments {
                        if a.root == id {
                            self.deliveries.push((a.app, stamped.clone()));
                        }
                    }
                    wave.push((id, stamped));
                }
            }
        }
    }

    /// Removes and returns deliveries for one application.
    pub fn deliveries_for(&mut self, app: Guid) -> Vec<ContextEvent> {
        let mut mine = Vec::new();
        let mut rest = Vec::new();
        for (a, e) in self.deliveries.drain(..) {
            if a == app {
                mine.push(e);
            } else {
                rest.push((a, e));
            }
        }
        self.deliveries = rest;
        mine
    }
}

fn apply_operator(
    plan: &FloorPlan,
    op: &mut OperatorInstance,
    event: &ContextEvent,
    now: VirtualTime,
) -> Option<ContextEvent> {
    match &op.node {
        SpecNode::Source(_) => None,
        SpecNode::LocationOf(subject) => {
            if event.topic != ContextType::Presence || event.subject() != Some(*subject) {
                return None;
            }
            let room = event.payload.field("to").and_then(ContextValue::as_text)?;
            let coord = plan.centroid(room).ok()?;
            Some(ContextEvent::new(
                event.source,
                ContextType::Location,
                ContextValue::record([
                    ("subject", ContextValue::Id(*subject)),
                    ("room", ContextValue::place(room)),
                    ("position", ContextValue::Coord(coord)),
                ]),
                now,
            ))
        }
        SpecNode::PathBetween(from, to) => {
            if event.topic != ContextType::Location {
                return None;
            }
            let subject = event.subject()?;
            let position = event
                .payload
                .field("position")
                .and_then(ContextValue::as_coord)?;
            op.last_location.insert(subject, position);
            let (a, b) = (*op.last_location.get(from)?, *op.last_location.get(to)?);
            let route = sci_location::Route::plan(
                plan,
                &sci_location::LocationExpr::Point(a),
                &sci_location::LocationExpr::Point(b),
            )
            .ok()?;
            Some(ContextEvent::new(
                event.source,
                ContextType::Path,
                route.to_value(),
                now,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sci_location::floorplan::capa_level10;

    fn presence(source: Guid, subject: Guid, to: &str, t: u64) -> ContextEvent {
        ContextEvent::new(
            source,
            ContextType::Presence,
            ContextValue::record([
                ("subject", ContextValue::Id(subject)),
                ("to", ContextValue::place(to)),
            ]),
            VirtualTime::from_secs(t),
        )
    }

    fn doors() -> Vec<Guid> {
        (0..3).map(|i| Guid::from_u128(0x100 + i)).collect()
    }

    #[test]
    fn explicit_graph_delivers_paths() {
        let mut engine = SolarEngine::new(capa_level10());
        let (bob, john, app) = (Guid::from_u128(1), Guid::from_u128(2), Guid::from_u128(3));
        let spec = GraphSpec::path_between(bob, john, &doors());
        engine.attach(app, &spec).unwrap();
        engine.ingest(
            &presence(doors()[0], bob, "L10.01", 1),
            VirtualTime::from_secs(1),
        );
        assert!(engine.deliveries_for(app).is_empty(), "one endpoint only");
        engine.ingest(
            &presence(doors()[1], john, "L10.02", 2),
            VirtualTime::from_secs(2),
        );
        let d = engine.deliveries_for(app);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].topic, ContextType::Path);
    }

    #[test]
    fn identical_specs_share_operators() {
        let mut engine = SolarEngine::new(capa_level10());
        let (bob, john) = (Guid::from_u128(1), Guid::from_u128(2));
        let spec = GraphSpec::path_between(bob, john, &doors());
        engine.attach(Guid::from_u128(10), &spec).unwrap();
        let before = engine.operator_count();
        engine.attach(Guid::from_u128(11), &spec).unwrap();
        assert_eq!(engine.operator_count(), before, "no duplication");
        // A different pair shares the loc(bob) subtree only.
        let spec2 = GraphSpec::path_between(bob, Guid::from_u128(9), &doors());
        engine.attach(Guid::from_u128(12), &spec2).unwrap();
        assert_eq!(engine.operator_count(), before + 2);
    }

    #[test]
    fn no_automatic_repair_but_respecify_recovers() {
        let mut engine = SolarEngine::new(capa_level10());
        let (bob, app) = (Guid::from_u128(1), Guid::from_u128(3));
        let ds = doors();
        // The application explicitly chose only door 0.
        let spec = GraphSpec {
            nodes: vec![SpecNode::LocationOf(bob), SpecNode::Source(ds[0])],
            children: vec![vec![1], vec![]],
        };
        engine.attach(app, &spec).unwrap();
        engine.ingest(&presence(ds[0], bob, "lobby", 1), VirtualTime::from_secs(1));
        assert_eq!(engine.deliveries_for(app).len(), 1);

        // Door 0 dies; door 1 keeps reporting — but the graph names door
        // 0 explicitly, so nothing arrives.
        engine.ingest(
            &presence(ds[1], bob, "corridor", 2),
            VirtualTime::from_secs(2),
        );
        assert!(
            engine.deliveries_for(app).is_empty(),
            "no automatic rebinding"
        );

        // Manual developer intervention: re-specify with the survivor.
        let spec2 = GraphSpec {
            nodes: vec![SpecNode::LocationOf(bob), SpecNode::Source(ds[1])],
            children: vec![vec![1], vec![]],
        };
        engine.respecify(app, &spec2).unwrap();
        engine.ingest(
            &presence(ds[1], bob, "L10.01", 3),
            VirtualTime::from_secs(3),
        );
        assert_eq!(
            engine.deliveries_for(app).len(),
            1,
            "recovered after re-spec"
        );
    }

    #[test]
    fn malformed_spec_rejected() {
        let mut engine = SolarEngine::new(capa_level10());
        let bad = GraphSpec {
            nodes: vec![SpecNode::LocationOf(Guid::from_u128(1))],
            children: vec![vec![7]],
        };
        assert!(engine.attach(Guid::from_u128(2), &bad).is_err());
    }
}
