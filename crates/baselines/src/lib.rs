//! # sci-baselines
//!
//! Faithful miniatures of the two systems the paper positions itself
//! against, built over the *same* event vocabulary as SCI so the three
//! can be compared head-to-head on identical sensor streams:
//!
//! * [`toolkit`] — the Context Toolkit (Dey et al.): widgets,
//!   interpreters and aggregators wired *at design time*. "After the
//!   decision has been made and these context components are built, they
//!   become fixed" (paper, Section 2) — so a failed sensor silently
//!   starves the pipeline forever.
//! * [`solar`] — Solar (Chen & Kotz): applications specify explicit
//!   operator graphs; the engine deduplicates common subgraphs across
//!   applications (the scalability idea SCI adopts) but "the requirement
//!   that the application developer has to explicitly choose data
//!   source\[s\] … will affect the robustness of the context system" —
//!   recovering from failure needs the *application* to re-specify its
//!   graph.
//!
//! Experiment E6 uses both as the fault-tolerance baselines; E8 uses
//! Solar's sharing as the reference point for SCI's automatic reuse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod solar;
pub mod toolkit;

pub use solar::{GraphSpec, SolarEngine, SpecNode};
pub use toolkit::{Aggregator, Interpreter, ToolkitPipeline, Widget};
