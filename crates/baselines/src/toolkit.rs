//! A Context-Toolkit-style pipeline: widgets → interpreters →
//! aggregators, wired once at design time.
//!
//! The three component classes follow Dey et al.'s architecture as the
//! paper summarises it: *widgets* wrap sensors and mediate their events,
//! *interpreters* transform low-level context into higher-level context,
//! *aggregators* collect all context about one entity. The crucial
//! property reproduced here is the paper's critique: the wiring is
//! **fixed after construction** — there is no registry to consult at run
//! time, so environmental change (a dead sensor, a new sensor) is
//! invisible to a built pipeline.

use sci_location::floorplan::FloorPlan;
use sci_types::{ContextEvent, ContextType, ContextValue, Guid, VirtualTime};

/// A widget: the design-time proxy for one concrete sensor.
#[derive(Clone, Debug)]
pub struct Widget {
    /// The sensor this widget wraps (event source id).
    pub sensor: Guid,
    /// The context type the widget mediates.
    pub topic: ContextType,
    events_seen: u64,
}

impl Widget {
    /// Wraps a sensor.
    pub fn new(sensor: Guid, topic: ContextType) -> Self {
        Widget {
            sensor,
            topic,
            events_seen: 0,
        }
    }

    /// Returns `true` if this widget mediates the event (its sensor, its
    /// type), counting it.
    pub fn mediates(&mut self, event: &ContextEvent) -> bool {
        let hit = event.source == self.sensor && event.topic == self.topic;
        if hit {
            self.events_seen += 1;
        }
        hit
    }

    /// Events mediated so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }
}

/// The transformation type an interpreter applies.
pub type Transform = Box<dyn FnMut(&ContextEvent) -> Option<(ContextType, ContextValue)> + Send>;

/// An interpreter: transforms one context event into a higher-level one.
pub struct Interpreter {
    transform: Transform,
}

impl std::fmt::Debug for Interpreter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Interpreter")
    }
}

impl Interpreter {
    /// Creates an interpreter from a transformation.
    pub fn new(
        transform: impl FnMut(&ContextEvent) -> Option<(ContextType, ContextValue)> + Send + 'static,
    ) -> Self {
        Interpreter {
            transform: Box::new(transform),
        }
    }

    /// The standard presence→location interpreter over a floor plan.
    pub fn presence_to_location(plan: FloorPlan) -> Self {
        Interpreter::new(move |event| {
            let subject = event.subject()?;
            let room = event.payload.field("to").and_then(ContextValue::as_text)?;
            let coord = plan.centroid(room).ok()?;
            Some((
                ContextType::Location,
                ContextValue::record([
                    ("subject", ContextValue::Id(subject)),
                    ("room", ContextValue::place(room)),
                    ("position", ContextValue::Coord(coord)),
                ]),
            ))
        })
    }

    /// Applies the transformation.
    pub fn interpret(&mut self, event: &ContextEvent) -> Option<(ContextType, ContextValue)> {
        (self.transform)(event)
    }
}

/// An aggregator: gathers all derived context about one entity.
#[derive(Clone, Debug, Default)]
pub struct Aggregator {
    subject: Option<Guid>,
    store: Vec<ContextEvent>,
}

impl Aggregator {
    /// Aggregates context about one entity.
    pub fn for_entity(subject: Guid) -> Self {
        Aggregator {
            subject: Some(subject),
            store: Vec::new(),
        }
    }

    /// Offers an event; it is stored if it concerns the aggregated
    /// entity.
    pub fn offer(&mut self, event: ContextEvent) -> bool {
        let relevant = match self.subject {
            Some(s) => event.subject() == Some(s),
            None => true,
        };
        if relevant {
            self.store.push(event);
        }
        relevant
    }

    /// All gathered context, in arrival order.
    pub fn context(&self) -> &[ContextEvent] {
        &self.store
    }

    /// The most recent piece of context of a given type.
    pub fn latest(&self, ty: &ContextType) -> Option<&ContextEvent> {
        self.store.iter().rev().find(|e| e.topic == *ty)
    }
}

/// A fully wired widgets→interpreter→aggregator pipeline.
///
/// Wiring happens in [`ToolkitPipeline::wire`] and never changes — the
/// property experiment E6 exploits: kill the wrapped sensor and the
/// pipeline starves, no matter how many equivalent sensors exist.
#[derive(Debug)]
pub struct ToolkitPipeline {
    widgets: Vec<Widget>,
    interpreter: Interpreter,
    aggregator: Aggregator,
    deliveries: Vec<ContextEvent>,
}

impl ToolkitPipeline {
    /// Wires the pipeline at design time: the given sensors (and only
    /// they) feed the interpreter; interpreted context about `subject`
    /// lands in the aggregator and the delivery log.
    pub fn wire(
        sensors: impl IntoIterator<Item = Guid>,
        topic: ContextType,
        interpreter: Interpreter,
        subject: Guid,
    ) -> Self {
        ToolkitPipeline {
            widgets: sensors
                .into_iter()
                .map(|s| Widget::new(s, topic.clone()))
                .collect(),
            interpreter,
            aggregator: Aggregator::for_entity(subject),
            deliveries: Vec::new(),
        }
    }

    /// Feeds a raw sensor event through the fixed wiring.
    pub fn ingest(&mut self, event: &ContextEvent, now: VirtualTime) {
        let mediated = self.widgets.iter_mut().any(|w| w.mediates(event));
        if !mediated {
            return;
        }
        if let Some((ty, payload)) = self.interpreter.interpret(event) {
            let derived = ContextEvent::new(event.source, ty, payload, now).with_seq(event.seq);
            if self.aggregator.offer(derived.clone()) {
                self.deliveries.push(derived);
            }
        }
    }

    /// Context delivered to the application so far.
    pub fn deliveries(&self) -> &[ContextEvent] {
        &self.deliveries
    }

    /// The aggregator (inspection).
    pub fn aggregator(&self) -> &Aggregator {
        &self.aggregator
    }

    /// The wired widgets (inspection).
    pub fn widgets(&self) -> &[Widget] {
        &self.widgets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sci_location::floorplan::capa_level10;

    fn presence(source: Guid, subject: Guid, to: &str, t: u64) -> ContextEvent {
        ContextEvent::new(
            source,
            ContextType::Presence,
            ContextValue::record([
                ("subject", ContextValue::Id(subject)),
                ("to", ContextValue::place(to)),
            ]),
            VirtualTime::from_secs(t),
        )
    }

    #[test]
    fn pipeline_delivers_interpreted_context() {
        let plan = capa_level10();
        let bob = Guid::from_u128(1);
        let sensor = Guid::from_u128(10);
        let mut p = ToolkitPipeline::wire(
            [sensor],
            ContextType::Presence,
            Interpreter::presence_to_location(plan),
            bob,
        );
        p.ingest(
            &presence(sensor, bob, "L10.01", 1),
            VirtualTime::from_secs(1),
        );
        assert_eq!(p.deliveries().len(), 1);
        assert_eq!(p.deliveries()[0].topic, ContextType::Location);
        assert_eq!(
            p.aggregator()
                .latest(&ContextType::Location)
                .unwrap()
                .subject(),
            Some(bob)
        );
    }

    #[test]
    fn unwired_sensors_are_invisible() {
        let plan = capa_level10();
        let bob = Guid::from_u128(1);
        let wired = Guid::from_u128(10);
        let unwired = Guid::from_u128(11);
        let mut p = ToolkitPipeline::wire(
            [wired],
            ContextType::Presence,
            Interpreter::presence_to_location(plan),
            bob,
        );
        // The design-time decision is final: an equivalent sensor added
        // to the environment later contributes nothing.
        p.ingest(
            &presence(unwired, bob, "L10.01", 1),
            VirtualTime::from_secs(1),
        );
        assert!(p.deliveries().is_empty());
        assert_eq!(p.widgets()[0].events_seen(), 0);
    }

    #[test]
    fn other_subjects_filtered_by_aggregator() {
        let plan = capa_level10();
        let bob = Guid::from_u128(1);
        let eve = Guid::from_u128(2);
        let sensor = Guid::from_u128(10);
        let mut p = ToolkitPipeline::wire(
            [sensor],
            ContextType::Presence,
            Interpreter::presence_to_location(plan),
            bob,
        );
        p.ingest(
            &presence(sensor, eve, "lobby", 1),
            VirtualTime::from_secs(1),
        );
        assert!(p.deliveries().is_empty());
        p.ingest(
            &presence(sensor, bob, "lobby", 2),
            VirtualTime::from_secs(2),
        );
        assert_eq!(p.deliveries().len(), 1);
    }

    #[test]
    fn aggregator_latest_by_type() {
        let mut agg = Aggregator::for_entity(Guid::from_u128(1));
        assert!(agg.latest(&ContextType::Location).is_none());
        let ev = ContextEvent::new(
            Guid::from_u128(9),
            ContextType::Location,
            ContextValue::record([("subject", ContextValue::Id(Guid::from_u128(1)))]),
            VirtualTime::ZERO,
        );
        assert!(agg.offer(ev));
        assert!(agg.latest(&ContextType::Location).is_some());
        assert_eq!(agg.context().len(), 1);
    }
}
