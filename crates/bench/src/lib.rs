//! # sci-bench
//!
//! Shared fixtures for the benchmark harness that regenerates every
//! figure of the paper (experiments E1–E8; see `DESIGN.md` for the
//! figure → experiment mapping and `EXPERIMENTS.md` for measured
//! results). Each bench target prints the experiment's shape metrics
//! (the "rows" a paper table would hold) before running its Criterion
//! timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sci_core::context_server::ContextServer;
use sci_core::logic::{factory, ObjLocationLogic, PathLogic};
use sci_location::floorplan::{capa_level10, FloorPlan};
use sci_types::guid::GuidGenerator;
use sci_types::{
    ContextEvent, ContextType, ContextValue, EntityKind, Guid, PortSpec, Profile, VirtualTime,
};

/// A Context Server populated with the Figure 3 entity classes:
/// `door_count` door sensors, one `objLocationCE`, one `pathCE`, plus
/// `distractors` unrelated source CEs (temperature) to dilute the
/// resolver's search space.
pub struct Figure3Rig {
    /// The server under test.
    pub cs: ContextServer,
    /// Deterministic id source.
    pub ids: GuidGenerator,
    /// The door sensor GUIDs.
    pub doors: Vec<Guid>,
    /// The floor plan.
    pub plan: FloorPlan,
}

impl Figure3Rig {
    /// Builds the rig.
    pub fn new(door_count: usize, distractors: usize, seed: u64) -> Self {
        let plan = capa_level10();
        let mut ids = GuidGenerator::seeded(seed);
        let mut cs = ContextServer::new(ids.next_guid(), "level-ten", plan.clone());

        let doors: Vec<Guid> = (0..door_count)
            .map(|i| {
                let id = ids.next_guid();
                cs.register(
                    Profile::builder(id, EntityKind::Device, format!("door-{i}"))
                        .output(PortSpec::new("presence", ContextType::Presence))
                        .build(),
                    VirtualTime::ZERO,
                )
                .expect("fresh guid");
                id
            })
            .collect();

        for i in 0..distractors {
            let id = ids.next_guid();
            cs.register(
                Profile::builder(id, EntityKind::Device, format!("thermo-{i}"))
                    .output(PortSpec::new("t", ContextType::Temperature))
                    .attribute("unit", ContextValue::text("celsius"))
                    .build(),
                VirtualTime::ZERO,
            )
            .expect("fresh guid");
        }

        let obj_loc = ids.next_guid();
        cs.register(
            Profile::builder(obj_loc, EntityKind::Software, "objLocationCE")
                .input(PortSpec::new("presence", ContextType::Presence))
                .output(PortSpec::new("location", ContextType::Location))
                .build(),
            VirtualTime::ZERO,
        )
        .expect("fresh guid");
        let p = plan.clone();
        cs.register_logic(obj_loc, factory(move || ObjLocationLogic::new(p.clone())));

        let path_ce = ids.next_guid();
        cs.register(
            Profile::builder(path_ce, EntityKind::Software, "pathCE")
                .input(PortSpec::new("from", ContextType::Location))
                .input(PortSpec::new("to", ContextType::Location))
                .output(PortSpec::new("path", ContextType::Path))
                .build(),
            VirtualTime::ZERO,
        )
        .expect("fresh guid");
        let p = plan.clone();
        cs.register_logic(path_ce, factory(move || PathLogic::new(p.clone())));

        Figure3Rig {
            cs,
            ids,
            doors,
            plan,
        }
    }
}

/// A door-sensor presence event.
pub fn presence_event(
    source: Guid,
    subject: Guid,
    from: &str,
    to: &str,
    t: VirtualTime,
) -> ContextEvent {
    ContextEvent::new(
        source,
        ContextType::Presence,
        ContextValue::record([
            ("subject", ContextValue::Id(subject)),
            ("from", ContextValue::place(from)),
            ("to", ContextValue::place(to)),
        ]),
        t,
    )
}

/// The path query of Figure 3.
pub fn path_query(ids: &mut GuidGenerator, app: Guid, from: Guid, to: Guid) -> sci_query::Query {
    sci_query::Query::builder(ids.next_guid(), app)
        .info_matching(
            ContextType::Path,
            vec![
                sci_query::Predicate::eq("from", ContextValue::Id(from)),
                sci_query::Predicate::eq("to", ContextValue::Id(to)),
            ],
        )
        .mode(sci_query::Mode::Subscribe)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rig_builds_and_resolves() {
        let mut rig = Figure3Rig::new(4, 10, 1);
        let app = rig.ids.next_guid();
        let bob = rig.ids.next_guid();
        let john = rig.ids.next_guid();
        let q = path_query(&mut rig.ids, app, bob, john);
        rig.cs
            .submit_query(&q, VirtualTime::ZERO)
            .expect("resolves");
        assert_eq!(rig.cs.instance_count(), 3);
    }
}
