//! E6 — the adaptivity claim (Sections 2 and 6): "adjust the composition
//! of these components dynamically in the case of environment changes,
//! thus improving service and fault tolerance while minimising user
//! intervention."
//!
//! Shape: on an identical sensor-failure schedule, counts events
//! delivered by SCI (automatic repair), the Context Toolkit pipeline
//! (static wiring — starves) and Solar (explicit graph — starves until
//! re-specified). Criterion times the repair operation itself as
//! redundancy grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sci_baselines::toolkit::Interpreter;
use sci_baselines::{GraphSpec, SolarEngine, SpecNode, ToolkitPipeline};
use sci_bench::{presence_event, Figure3Rig};
use sci_core::adaptation;
use sci_location::floorplan::capa_level10;
use sci_query::{Mode, Predicate, Query};
use sci_types::{ContextType, ContextValue, VirtualTime};

fn print_shape_table() {
    println!("\nE6: deliveries around one sensor failure (20 events, failure after 10)");
    println!(
        "{:>10} | {:>8} {:>8} {:>8}",
        "phase", "sci", "toolkit", "solar"
    );
    let mut rig = Figure3Rig::new(2, 0, 11);
    let bob = rig.ids.next_guid();
    let app = rig.ids.next_guid();
    let q = Query::builder(rig.ids.next_guid(), app)
        .info_matching(
            ContextType::Location,
            vec![Predicate::eq("subject", ContextValue::Id(bob))],
        )
        .mode(Mode::Subscribe)
        .build();
    rig.cs
        .submit_query(&q, VirtualTime::ZERO)
        .expect("resolves");

    let plan = capa_level10();
    let mut toolkit = ToolkitPipeline::wire(
        [rig.doors[0]],
        ContextType::Presence,
        Interpreter::presence_to_location(plan.clone()),
        bob,
    );
    let mut solar = SolarEngine::new(plan);
    let solar_app = rig.ids.next_guid();
    solar
        .attach(
            solar_app,
            &GraphSpec {
                nodes: vec![SpecNode::LocationOf(bob), SpecNode::Source(rig.doors[0])],
                children: vec![vec![1], vec![]],
            },
        )
        .expect("valid spec");

    let mut sci_n = 0usize;
    let mut toolkit_n;
    let mut solar_n = 0usize;
    for i in 0..10u64 {
        let t = VirtualTime::from_secs(i);
        let ev = presence_event(rig.doors[0], bob, "corridor", "L10.01", t);
        rig.cs.ingest(&ev, t).expect("ingests");
        sci_n += rig.cs.drain_outbox().len();
        toolkit.ingest(&ev, t);
        solar.ingest(&ev, t);
        solar_n += solar.deliveries_for(solar_app).len();
    }
    toolkit_n = toolkit.deliveries().len();
    println!(
        "{:>10} | {:>8} {:>8} {:>8}",
        "healthy", sci_n, toolkit_n, solar_n
    );

    // Door 0 fails; SCI repairs; the baselines are left as-is.
    adaptation::repair_source(&mut rig.cs, rig.doors[0], VirtualTime::from_secs(10));
    let (mut sci2, mut solar2) = (0usize, 0usize);
    for i in 0..10u64 {
        let t = VirtualTime::from_secs(11 + i);
        let ev = presence_event(rig.doors[1], bob, "corridor", "L10.02", t);
        rig.cs.ingest(&ev, t).expect("ingests");
        sci2 += rig.cs.drain_outbox().len();
        toolkit.ingest(&ev, t);
        solar.ingest(&ev, t);
        solar2 += solar.deliveries_for(solar_app).len();
    }
    toolkit_n = toolkit.deliveries().len() - toolkit_n;
    println!(
        "{:>10} | {:>8} {:>8} {:>8}",
        "post-fail", sci2, toolkit_n, solar2
    );
    assert_eq!(sci2, 10, "SCI lost nothing after repair");
    assert_eq!(toolkit_n, 0, "toolkit starved");
    assert_eq!(solar2, 0, "solar starved");
    println!();
}

fn bench_failover(c: &mut Criterion) {
    print_shape_table();

    let mut group = c.benchmark_group("e6_repair");
    for redundancy in [2usize, 4, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("repair_source", redundancy),
            &redundancy,
            |b, &r| {
                b.iter_with_setup(
                    || {
                        let mut rig = Figure3Rig::new(r, 0, 11);
                        let bob = rig.ids.next_guid();
                        let app = rig.ids.next_guid();
                        let q = Query::builder(rig.ids.next_guid(), app)
                            .info_matching(
                                ContextType::Location,
                                vec![Predicate::eq("subject", ContextValue::Id(bob))],
                            )
                            .mode(Mode::Subscribe)
                            .build();
                        rig.cs
                            .submit_query(&q, VirtualTime::ZERO)
                            .expect("resolves");
                        rig
                    },
                    |mut rig| {
                        let failed = rig.doors[0];
                        adaptation::repair_source(&mut rig.cs, failed, VirtualTime::from_secs(1))
                    },
                );
            },
        );
    }
    group.finish();

    c.bench_function("e6_detection_scan", |b| {
        // Cost of one liveness scan over many tracked publishers.
        let mut rig = Figure3Rig::new(2, 0, 11);
        for i in 0..1000u64 {
            let id = rig.ids.next_guid();
            rig.cs
                .register(
                    sci_types::Profile::builder(
                        id,
                        sci_types::EntityKind::Device,
                        format!("hb-{i}"),
                    )
                    .output(sci_types::PortSpec::new("p", ContextType::Presence))
                    .attribute("max-silence-us", ContextValue::Int(60_000_000))
                    .build(),
                    VirtualTime::ZERO,
                )
                .expect("fresh");
        }
        b.iter(|| {
            rig.cs
                .mediator()
                .silent_publishers(VirtualTime::from_secs(30))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_failover
}
criterion_main!(benches);
