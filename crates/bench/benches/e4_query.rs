//! E4 — Figure 6: the query model. Round-trip cost of the XML document
//! codec at increasing query complexity, and the profile-matching
//! primitive the resolver is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sci_query::codec::{from_xml, to_xml};
use sci_query::{matcher, CmpOp, Mode, Predicate, Query, Subject, What, When, Which};
use sci_types::{ContextType, ContextValue, EntityKind, Guid, PortSpec, Profile, VirtualTime};

fn query_of_complexity(predicates: usize, nesting: usize) -> Query {
    let mut which = Which::Closest;
    for level in 0..nesting {
        which = Which::Filtered {
            predicates: (0..predicates)
                .map(|i| {
                    Predicate::new(
                        format!("attr-{level}-{i}"),
                        CmpOp::Le,
                        ContextValue::Int(i as i64),
                    )
                })
                .collect(),
            then: Box::new(which),
        };
    }
    Query {
        id: Guid::from_u128(1),
        owner: Guid::from_u128(2),
        what: What::Information {
            ty: ContextType::PrinterStatus,
            constraints: (0..predicates)
                .map(|i| Predicate::eq(format!("c{i}"), ContextValue::Int(i as i64)))
                .collect(),
        },
        where_: sci_query::Where::Place("Room L10.01".into()),
        when: When::OnEnter {
            entity: Subject::Owner,
            place: "L10.01".into(),
        },
        which,
        mode: Mode::Advertisement,
    }
}

fn print_shape_table() {
    println!("\nE4: query document size and codec round-trip cost");
    println!(
        "{:>6} {:>8} | {:>10} {:>16}",
        "preds", "nesting", "bytes", "roundtrip (us)"
    );
    for (p, n) in [(0usize, 0usize), (2, 1), (4, 2), (8, 4), (16, 8)] {
        let q = query_of_complexity(p, n);
        let xml = to_xml(&q);
        let trials = 500;
        let start = std::time::Instant::now();
        for _ in 0..trials {
            let parsed = from_xml(&xml).expect("well-formed");
            assert_eq!(parsed.mode, q.mode);
        }
        println!(
            "{:>6} {:>8} | {:>10} {:>16.2}",
            p,
            n,
            xml.len(),
            start.elapsed().as_micros() as f64 / trials as f64
        );
    }
    println!();
}

fn bench_query(c: &mut Criterion) {
    print_shape_table();

    let mut group = c.benchmark_group("e4_codec");
    for (p, n) in [(2usize, 1usize), (8, 4)] {
        let q = query_of_complexity(p, n);
        let xml = to_xml(&q);
        group.bench_with_input(
            BenchmarkId::new("serialise", format!("{p}x{n}")),
            &q,
            |b, q| {
                b.iter(|| to_xml(q));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parse", format!("{p}x{n}")),
            &xml,
            |b, xml| {
                b.iter(|| from_xml(xml).expect("well-formed"));
            },
        );
    }
    group.finish();

    c.bench_function("e4_profile_matching", |b| {
        let profiles: Vec<Profile> = (0..1000)
            .map(|i| {
                Profile::builder(Guid::from_u128(i + 1), EntityKind::Device, format!("d{i}"))
                    .output(PortSpec::new(
                        "out",
                        if i % 3 == 0 {
                            ContextType::Temperature
                        } else {
                            ContextType::Presence
                        },
                    ))
                    .attribute(
                        "unit",
                        ContextValue::text(if i % 2 == 0 { "celsius" } else { "kelvin" }),
                    )
                    .build()
            })
            .collect();
        let what = What::Information {
            ty: ContextType::Temperature,
            constraints: vec![Predicate::eq("unit", ContextValue::text("celsius"))],
        };
        b.iter(|| matcher::candidates(&what, profiles.iter()).count());
    });

    let _ = VirtualTime::ZERO;
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_query
}
criterion_main!(benches);
