//! E1 — Figure 1 (the SCINET) and the Section 3 claim:
//! "routing through an overlay network avoids any bottlenecks created
//! when using hierarchical infrastructures whilst achieving comparable
//! performance."
//!
//! Sweeps network size, routes an identical uniform traffic matrix over
//! the overlay and over a balanced 4-ary hierarchy, and reports hop
//! counts (the "comparable performance" half) and maximum per-node
//! forwarding load (the "bottleneck" half). Criterion then times routing
//! throughput on both arrangements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sci_overlay::hierarchy::HierarchicalNetwork;
use sci_overlay::net::SimNetwork;
use sci_types::guid::GuidGenerator;
use sci_types::Guid;

const MESSAGES_PER_NODE: usize = 16;

fn build_overlay(n: usize, seed: u64) -> (SimNetwork, Vec<Guid>) {
    let mut net = SimNetwork::new();
    let mut ids = GuidGenerator::seeded(seed);
    let guids: Vec<Guid> = (0..n)
        .map(|i| {
            let g = ids.next_guid();
            net.add_node(g, format!("r{i}")).expect("fresh");
            g
        })
        .collect();
    net.populate_full();
    (net, guids)
}

fn traffic(guids: &[Guid]) -> Vec<(Guid, Guid)> {
    let n = guids.len();
    let mut pairs = Vec::with_capacity(n * MESSAGES_PER_NODE);
    for (i, &src) in guids.iter().enumerate() {
        for k in 1..=MESSAGES_PER_NODE {
            let dst = guids[(i + k * 131) % n];
            if dst != src {
                pairs.push((src, dst));
            }
        }
    }
    pairs
}

fn print_shape_table() {
    println!("\nE1: overlay vs hierarchy — uniform traffic, {MESSAGES_PER_NODE} msgs/node");
    println!(
        "{:>6} | {:>12} {:>12} | {:>10} {:>10} | {:>10} {:>10}",
        "N", "ovl hops", "tree hops", "ovl max", "tree max", "ovl imb", "tree imb"
    );
    for n in [16usize, 32, 64, 128, 256, 512, 1024] {
        let (mut net, guids) = build_overlay(n, 42);
        let mut tree = HierarchicalNetwork::new(guids.iter().copied(), 4);
        for (src, dst) in traffic(&guids) {
            net.route(src, dst).expect("routable");
            tree.route(src, dst).expect("routable");
        }
        println!(
            "{:>6} | {:>12.2} {:>12.2} | {:>10} {:>10} | {:>10.2} {:>10.2}",
            n,
            net.stats().mean_hops(),
            tree.stats().mean_hops(),
            net.stats().max_load().map(|(_, c)| c).unwrap_or(0),
            tree.stats().max_load().map(|(_, c)| c).unwrap_or(0),
            net.stats().imbalance(),
            tree.stats().imbalance(),
        );
    }
    println!();
}

fn bench_routing(c: &mut Criterion) {
    print_shape_table();

    let mut group = c.benchmark_group("e1_route");
    for n in [64usize, 256, 1024] {
        let (net, guids) = build_overlay(n, 42);
        let pairs = traffic(&guids);
        group.bench_with_input(BenchmarkId::new("overlay", n), &n, |b, _| {
            let mut net = net.clone();
            let mut i = 0;
            b.iter(|| {
                let (src, dst) = pairs[i % pairs.len()];
                i += 1;
                net.route(src, dst).expect("routable")
            });
        });
        let tree = HierarchicalNetwork::new(guids.iter().copied(), 4);
        group.bench_with_input(BenchmarkId::new("hierarchy", n), &n, |b, _| {
            let mut tree = tree.clone();
            let mut i = 0;
            b.iter(|| {
                let (src, dst) = pairs[i % pairs.len()];
                i += 1;
                tree.route(src, dst).expect("routable")
            });
        });
    }
    group.finish();

    // Discovery join cost (the "requiring little initialisation" claim).
    let mut group = c.benchmark_group("e1_discovery_join");
    for n in [32usize, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut net = SimNetwork::new();
                let mut ids = GuidGenerator::seeded(7);
                sci_overlay::discovery::grow_network(&mut net, &mut ids, n, 7).expect("grows")
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_routing
}
criterion_main!(benches);
