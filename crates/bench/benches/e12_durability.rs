//! E12 — the durability tax and the recovery trajectory.
//!
//! The `ingest` group streams an identical presence workload through a
//! one-range [`ParallelFederation`] three times: WAL off (the
//! baseline), WAL attached with `FsyncPolicy::EveryN(32)` (the
//! shipping default), and `FsyncPolicy::Always` (the paranoid bound).
//! Events travel the batched streaming path every federation bench
//! uses — `IngestBatch` casts, append-before-apply, dispatch to a
//! standing subscriber, stream flush, closing sync — so
//! `overhead_pct` is the end-to-end price of durability on the
//! production ingestion path, not an isolated append micro-cost (the
//! Criterion probe below covers that). The acceptance line is the
//! `every32` row: ≤ 15% over the `off` baseline.
//!
//! The `recover` group builds logs of 1k and 5k durable commands and
//! wall-clocks [`durability::recover`] over them, plus a
//! snapshot-enabled 5k variant showing the replay bound: with
//! `snapshot_every = 512` the recovered row replays < 512 commands no
//! matter how long the history grew.
//!
//! Shape rows land in `BENCH_durability.json` at the repo root —
//! compared by `scripts/bench_compare.py` (`ingest_us` and
//! `sustained_kevents_s` gated at 3.0x, `overhead_pct` / `recover_us`
//! informational; fsync latency belongs to the runner's disk).
//!
//! The Criterion group keeps a cheap steady-state probe on the raw
//! [`sci_wal::SegmentLog`] append path, away from federation noise.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sci_core::context_server::ContextServer;
use sci_core::durability::{self, DurabilityConfig};
use sci_core::runtime::{ParallelFederation, RangeCommand};
use sci_location::{FloorPlan, Rect};
use sci_query::{Mode, Query};
use sci_telemetry::Registry;
use sci_types::{
    ContextEvent, ContextType, ContextValue, Coord, EntityKind, Guid, PortSpec, Profile,
    VirtualTime,
};
use sci_wal::{Frame, FsyncPolicy, SegmentLog};

/// Events per measured ingest row (after warm-up).
const EVENTS: u64 = 6_000;
/// Events per [`RangeCommand::IngestBatch`] — the batched streaming
/// path every other federation bench uses, and the unit of one WAL
/// append. (`IngestBatch` is a single durable command, so the append
/// and its fsync discipline amortise across the batch exactly as they
/// do in production streaming.)
const BATCH: u64 = 200;
/// Warm-up events kept out of the measured window.
const WARMUP: u64 = 200;

const RANGE_ID: u128 = 0xE12;
const SENSOR: u128 = 0x5E50;
const APP: u128 = 0xA990;

fn plan() -> FloorPlan {
    FloorPlan::builder("campus")
        .zone("wing-e12")
        .room("hall", Rect::with_size(Coord::new(0.0, 0.0), 20.0, 10.0))
        .build()
        .expect("static plan")
}

fn presence(sensor: Guid, subject: u64, at: VirtualTime) -> ContextEvent {
    ContextEvent::new(
        sensor,
        ContextType::Presence,
        ContextValue::record([(
            "subject",
            ContextValue::Id(Guid::from_u128(0xBEEF_0000 + u128::from(subject))),
        )]),
        at,
    )
}

/// A unique scratch directory per call, removed by the caller.
fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("sci-e12-{tag}-{}-{n}", std::process::id()))
}

struct Row {
    group: &'static str,
    mode: &'static str,
    events: u64,
    ingest_us: f64,
    sustained_kevents_s: f64,
    overhead_pct: f64,
    wal_bytes: u64,
    records: u64,
    replayed: u64,
    recover_us: f64,
}

impl Row {
    fn blank(group: &'static str, mode: &'static str) -> Row {
        Row {
            group,
            mode,
            events: 0,
            ingest_us: 0.0,
            sustained_kevents_s: 0.0,
            overhead_pct: 0.0,
            wal_bytes: 0,
            records: 0,
            replayed: 0,
            recover_us: 0.0,
        }
    }
}

/// One ingest row: stream `EVENTS` presence events through a durable
/// (or WAL-off) range with a live subscriber, wall-clocked end to end
/// including the closing sync barrier.
fn measure_ingest(mode: &'static str, fsync: Option<FsyncPolicy>) -> Row {
    let dir = tmpdir(mode);
    let range_id = Guid::from_u128(RANGE_ID);
    let sensor = Guid::from_u128(SENSOR);
    let app = Guid::from_u128(APP);

    let mut cs = ContextServer::new(range_id, "range-0", plan());
    cs.register(
        Profile::builder(sensor, EntityKind::Device, "sensor-0")
            .output(PortSpec::new("p", ContextType::Presence))
            .build(),
        VirtualTime::ZERO,
    )
    .expect("fresh sensor");
    if let Some(policy) = fsync {
        let config = DurabilityConfig {
            dir: dir.clone(),
            fsync: policy,
            segment_bytes: 8 * 1024 * 1024,
            snapshot_every: 0, // isolate the append cost
        };
        durability::attach(&mut cs, &config, VirtualTime::ZERO).expect("wal attaches");
    }

    let mut fed = ParallelFederation::new(0xE12);
    fed.add_range(cs).expect("unique range");
    let q = Query::builder(Guid::from_u128(0x100), app)
        .info(ContextType::Presence)
        .mode(Mode::Subscribe)
        .build();
    fed.submit_from("range-0", &q, VirtualTime::ZERO)
        .expect("subscriber");

    let mut clock = 0u64;
    let mut next_subject = 0u64;
    let mut batch_of = |n: u64, clock: &mut u64| -> Vec<ContextEvent> {
        (0..n)
            .map(|_| {
                *clock += 1;
                next_subject += 1;
                presence(sensor, next_subject, VirtualTime::from_micros(*clock))
            })
            .collect()
    };
    let warmup = batch_of(WARMUP, &mut clock);
    fed.ingest_batch_at("range-0", &warmup, VirtualTime::from_micros(clock))
        .expect("warm-up ingests");
    fed.sync(VirtualTime::from_micros(clock))
        .expect("warm-up syncs");

    let start = Instant::now();
    for _ in 0..EVENTS / BATCH {
        let batch = batch_of(BATCH, &mut clock);
        fed.ingest_batch_at("range-0", &batch, VirtualTime::from_micros(clock))
            .expect("ingests");
        fed.pump_streams(VirtualTime::from_micros(clock))
            .expect("pumps");
    }
    fed.sync(VirtualTime::from_micros(clock))
        .expect("closing sync");
    let elapsed = start.elapsed().as_secs_f64();

    let deliveries = fed.deliveries_for(app).len() as u64;
    assert!(
        deliveries >= EVENTS,
        "subscriber saw {deliveries} of {EVENTS} streamed events"
    );
    let servers = fed.shutdown();
    let wal_bytes = servers
        .iter()
        .find(|cs| cs.id() == range_id)
        .map_or(0, |cs| cs.telemetry().counter("wal.bytes").get());
    let _ = std::fs::remove_dir_all(&dir);

    Row {
        events: EVENTS,
        ingest_us: elapsed * 1e6 / EVENTS as f64,
        sustained_kevents_s: EVENTS as f64 / elapsed / 1e3,
        wal_bytes,
        ..Row::blank("ingest", mode)
    }
}

/// One recovery row: build a WAL of `records` durable ingests (plus a
/// standing subscription, so replay re-runs real dispatch work), drop
/// the server, then wall-clock [`durability::recover`] over the log.
fn measure_recover(mode: &'static str, records: u64, snapshot_every: u64) -> Row {
    let dir = tmpdir(mode);
    let range_id = Guid::from_u128(RANGE_ID);
    let sensor = Guid::from_u128(SENSOR);
    let config = DurabilityConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::Never, // build fast; recovery reads regardless
        segment_bytes: 4 * 1024 * 1024,
        snapshot_every,
    };

    let mut cs = ContextServer::new(range_id, "range-0", plan());
    cs.register(
        Profile::builder(sensor, EntityKind::Device, "sensor-0")
            .output(PortSpec::new("p", ContextType::Presence))
            .build(),
        VirtualTime::ZERO,
    )
    .expect("fresh sensor");
    durability::attach(&mut cs, &config, VirtualTime::ZERO).expect("wal attaches");
    let q = Query::builder(Guid::from_u128(0x100), Guid::from_u128(APP))
        .info(ContextType::Presence)
        .mode(Mode::Subscribe)
        .build();
    cs.handle(RangeCommand::Submit(Box::new(q)), VirtualTime::ZERO)
        .expect("subscriber");
    for i in 0..records {
        cs.handle(
            RangeCommand::Ingest(presence(sensor, i, VirtualTime::from_micros(i + 1))),
            VirtualTime::from_micros(i + 1),
        )
        .expect("durable ingest");
    }
    cs.sync_wal().expect("log settles");
    drop(cs);

    let logic = HashMap::new();
    let start = Instant::now();
    let (_recovered, report) = durability::recover(
        range_id,
        "range-0",
        plan(),
        Registry::new(),
        &config,
        &logic,
    )
    .expect("recovers");
    let recover_us = start.elapsed().as_secs_f64() * 1e6;
    assert_eq!(report.torn_bytes, 0, "clean shutdown left a torn tail");
    assert_eq!(report.replay_errors, 0, "replay diverged: {report:?}");
    if snapshot_every > 0 {
        assert!(
            (report.replayed as u64) < snapshot_every,
            "snapshot failed to bound replay: {} >= {snapshot_every}",
            report.replayed
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    Row {
        records,
        replayed: report.replayed as u64,
        recover_us,
        ..Row::blank("recover", mode)
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn write_json(rows: &[Row]) {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            if r.group == "ingest" {
                format!(
                    "    {{\"group\": \"ingest\", \"mode\": \"{}\", \"events\": {}, \
                     \"ingest_us\": {:.3}, \"sustained_kevents_s\": {:.1}, \
                     \"overhead_pct\": {:.1}, \"wal_bytes\": {}}}",
                    r.mode,
                    r.events,
                    r.ingest_us,
                    r.sustained_kevents_s,
                    r.overhead_pct,
                    r.wal_bytes
                )
            } else {
                format!(
                    "    {{\"group\": \"recover\", \"mode\": \"{}\", \"records\": {}, \
                     \"replayed\": {}, \"recover_us\": {:.1}}}",
                    r.mode, r.records, r.replayed, r.recover_us
                )
            }
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e12_durability\",\n  \"unit\": \"us\",\n  \
         \"available_cores\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        available_cores(),
        body.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_durability.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn print_table(rows: &[Row]) {
    println!(
        "\nE12: durability tax, {} streamed events/row ({} cores available)",
        EVENTS,
        available_cores()
    );
    println!(
        "{:>12} | {:>12} {:>21} {:>10} {:>11} | {:>8} {:>9} {:>12}",
        "mode",
        "ingest",
        "sustained (kevents/s)",
        "overhead",
        "wal bytes",
        "records",
        "replayed",
        "recover"
    );
    for r in rows {
        if r.group == "ingest" {
            println!(
                "{:>12} | {:>9.2} us {:>21.1} {:>9.1}% {:>11} |",
                r.mode, r.ingest_us, r.sustained_kevents_s, r.overhead_pct, r.wal_bytes
            );
        } else {
            println!(
                "{:>12} | {:>12} {:>21} {:>10} {:>11} | {:>8} {:>9} {:>9.0} us",
                r.mode, "", "", "", "", r.records, r.replayed, r.recover_us
            );
        }
    }
    println!();
}

fn bench_durability(c: &mut Criterion) {
    let mut rows = vec![
        measure_ingest("off", None),
        measure_ingest("every32", Some(FsyncPolicy::EveryN(32))),
        measure_ingest("always", Some(FsyncPolicy::Always)),
    ];
    let baseline_us = rows[0].ingest_us;
    for r in &mut rows {
        r.overhead_pct = (r.ingest_us / baseline_us - 1.0) * 100.0;
    }
    rows.push(measure_recover("replay-1k", 1_000, 0));
    rows.push(measure_recover("replay-5k", 5_000, 0));
    rows.push(measure_recover("snapshot-5k", 5_000, 512));
    print_table(&rows);
    write_json(&rows);

    // Steady-state probe: the raw segment append path, no federation.
    let mut group = c.benchmark_group("e12_wal");
    group.bench_function(BenchmarkId::new("append", "every32"), |b| {
        let dir = tmpdir("probe");
        let (mut log, _) =
            SegmentLog::open(&dir, FsyncPolicy::EveryN(32), 64 * 1024 * 1024).expect("fresh log");
        let payload = vec![0xA5u8; 96];
        b.iter(|| {
            log.append(&Frame::new(2, payload.clone()))
                .expect("appends")
        });
        drop(log);
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_durability
}
criterion_main!(benches);
