//! E11 — city-scale mobility. Each range of a [`ParallelFederation`]
//! holds a registered population of `ENTITIES_PER_RANGE` (≥ 100k)
//! person entities plus a cohort of *movers*: entities with standing
//! presence subscriptions that physically relocate between ranges
//! mid-stream via `RangeCommand::{MigrateOut, MigrateIn}`. Movement
//! churn is Zipf-distributed — a hot minority of movers does most of
//! the moving, the way real commuters do — while every range keeps
//! ingesting a presence stream whose subjects are drawn from the
//! resident population.
//!
//! The harness reports, per `ranges ∈ RANGE_SWEEP` row:
//!
//! * `handoff_p50_us` / `handoff_p99_us` — wall-clock latency of one
//!   complete entity handoff (package at source, exactly-once relay,
//!   replay at target), measured around `migrate_entity`;
//! * `sustained_kevents_s` — end-to-end event throughput of the
//!   streaming ingest that runs *while* the churn is happening;
//! * `bytes_per_entity` — resident-set growth across population
//!   registration divided by the population, a coarse footprint figure
//!   (allocator reuse makes later rows an underestimate; the first row
//!   is the honest one).
//!
//! Shape rows land in `BENCH_mobility.json` at the repo root — the
//! machine-readable trajectory `scripts/bench_compare.py` gates
//! (handoff p99 and sustained throughput, direction-aware), documented
//! field-by-field in `docs/performance.md`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sci_core::context_server::ContextServer;
use sci_core::runtime::{ParallelFederation, RangeCommand};
use sci_location::{FloorPlan, Rect};
use sci_query::{Mode, Query};
use sci_types::guid::GuidGenerator;
use sci_types::{
    ContextEvent, ContextType, ContextValue, Coord, EntityKind, Guid, PortSpec, Profile,
    VirtualTime,
};

const RANGE_SWEEP: [usize; 2] = [2, 4];
/// Resident population registered in every range (the ISSUE floor is
/// 100k+ per range).
const ENTITIES_PER_RANGE: u64 = 100_000;
/// Entities that actually move; each holds a standing subscription.
const MOVERS: usize = 48;
/// Handoffs per measured row.
const MOVES: usize = 64;
/// Streaming rounds interleaved with the churn.
const ROUNDS: usize = 4;
/// Presence events batch-ingested into every range, every round.
const EVENTS_PER_ROUND: u64 = 1_500;
/// Zipf exponent for mover selection: ~1 keeps a long tail, higher
/// concentrates the churn on the hot movers.
const ZIPF_S: f64 = 1.1;

/// Guid namespace for the resident population, disjoint from the
/// generator-assigned infrastructure guids.
const POPULATION_BASE: u128 = 0x5C1_0000_0000;

fn range_plan(i: usize) -> FloorPlan {
    FloorPlan::builder("city")
        .zone(format!("district-{i}"))
        .room(
            format!("block-{i}"),
            Rect::with_size(Coord::new(0.0, 0.0), 20.0, 10.0),
        )
        .build()
        .expect("static plan")
}

fn person(id: Guid, name: String) -> Profile {
    Profile::builder(id, EntityKind::Person, name).build()
}

fn resident(range: usize, k: u64) -> Guid {
    Guid::from_u128(
        POPULATION_BASE + (range as u128) * u128::from(ENTITIES_PER_RANGE) + u128::from(k),
    )
}

fn presence(sensor: Guid, subject: Guid, t: VirtualTime) -> ContextEvent {
    ContextEvent::new(
        sensor,
        ContextType::Presence,
        ContextValue::record([("subject", ContextValue::Id(subject))]),
        t,
    )
}

/// Current resident-set size in bytes, from `/proc/self/statm`.
/// Returns 0 where procfs is unavailable; the field is informational.
fn resident_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| s.split_whitespace().nth(1)?.parse::<u64>().ok())
        .map_or(0, |pages| pages * 4096)
}

/// Zipf(s) sampler over ranks `0..n` via a precomputed CDF — rank 0 is
/// the hottest mover. (The vendored `rand` has no `rand_distr`.)
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

struct MobilityRig {
    fed: ParallelFederation,
    sensors: Vec<Guid>,
    movers: Vec<Guid>,
    /// Mover's current home range index, updated per handoff.
    homes: Vec<usize>,
    clock: u64,
    bytes_per_entity: f64,
}

/// Builds `ranges` ranges, each with one presence sensor and an
/// `ENTITIES_PER_RANGE`-strong registered population; `MOVERS` movers
/// are registered round-robin across ranges, each with a standing
/// local presence subscription that will follow it through handoffs.
fn build(ranges: usize, seed: u64) -> MobilityRig {
    let mut ids = GuidGenerator::seeded(seed);
    let mut fed = ParallelFederation::new(seed);
    let mut sensors = Vec::new();
    let mut movers = Vec::new();
    let mut homes = Vec::new();
    let rss_before = resident_bytes();
    for i in 0..ranges {
        let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
        let sensor = ids.next_guid();
        cs.register(
            Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
                .output(PortSpec::new("p", ContextType::Presence))
                .build(),
            VirtualTime::ZERO,
        )
        .expect("fresh sensor");
        sensors.push(sensor);
        for k in 0..ENTITIES_PER_RANGE {
            cs.register(
                person(resident(i, k), format!("res-{i}-{k}")),
                VirtualTime::ZERO,
            )
            .expect("resident registers");
        }
        fed.add_range(cs).expect("unique range");
    }
    let rss_after = resident_bytes();
    fed.connect_full();
    for m in 0..MOVERS {
        let home = m % ranges;
        let mover = ids.next_guid();
        // The mover is a registered person in its home range…
        fed.command(
            &format!("range-{home}"),
            RangeCommand::Register(Box::new(person(mover, format!("mover-{m}")))),
            VirtualTime::ZERO,
        )
        .expect("mover registers");
        // …with a standing local subscription that migrates with it.
        let q = Query::builder(ids.next_guid(), mover)
            .info(ContextType::Presence)
            .mode(Mode::Subscribe)
            .build();
        fed.submit_from(&format!("range-{home}"), &q, VirtualTime::ZERO)
            .expect("mover subscribes");
        movers.push(mover);
        homes.push(home);
    }
    let population = ENTITIES_PER_RANGE * ranges as u64;
    MobilityRig {
        fed,
        sensors,
        movers,
        homes,
        clock: 0,
        bytes_per_entity: rss_after.saturating_sub(rss_before) as f64 / population as f64,
    }
}

/// One streaming round: batch-ingest `per_range` presence events into
/// every range (subjects Zipf-drawn from that range's residents), then
/// pump whatever has streamed so far.
fn streaming_round(rig: &mut MobilityRig, per_range: u64, rng: &mut StdRng) {
    let sensors = rig.sensors.clone();
    for (j, sensor) in sensors.into_iter().enumerate() {
        let mut batch = Vec::with_capacity(per_range as usize);
        for _ in 0..per_range {
            rig.clock += 1;
            let subject = resident(j, rng.gen_range(0..ENTITIES_PER_RANGE));
            batch.push(presence(
                sensor,
                subject,
                VirtualTime::from_micros(rig.clock),
            ));
        }
        rig.fed
            .ingest_batch_at(
                &format!("range-{j}"),
                &batch,
                VirtualTime::from_micros(rig.clock),
            )
            .expect("ingests");
    }
    rig.fed
        .pump_streams(VirtualTime::from_micros(rig.clock))
        .expect("pumps");
}

/// One complete handoff of mover `m` to range `to`, timed wall-clock
/// around `migrate_entity` (package → relay → replay).
fn handoff(rig: &mut MobilityRig, m: usize, to: usize) -> Duration {
    let from = rig.homes[m];
    rig.clock += 1;
    let start = Instant::now();
    rig.fed
        .migrate_entity(
            rig.movers[m],
            &format!("range-{from}"),
            &format!("range-{to}"),
            VirtualTime::from_micros(rig.clock),
        )
        .expect("handoff");
    let took = start.elapsed();
    rig.homes[m] = to;
    took
}

struct Row {
    ranges: usize,
    entities_per_range: u64,
    moves: usize,
    events: u64,
    handoff_p50_us: f64,
    handoff_p99_us: f64,
    sustained_kevents_s: f64,
    bytes_per_entity: f64,
    deliveries: u64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// The measured row: `ROUNDS` streaming rounds with `MOVES` Zipf-churn
/// handoffs interleaved between them, one closing `sync`, then the
/// movers' inboxes drained (their standing queries must have followed
/// them through every move).
fn measure_row(ranges: usize) -> Row {
    let mut rig = build(ranges, 23);
    let mut rng = StdRng::seed_from_u64(23);
    let zipf = Zipf::new(MOVERS, ZIPF_S);
    // Warm-up: one small round so first-touch costs stay out of the
    // measured window.
    streaming_round(&mut rig, 100, &mut rng);
    rig.fed
        .sync(VirtualTime::from_micros(rig.clock))
        .expect("warm-up syncs");

    let mut handoffs_us: Vec<f64> = Vec::with_capacity(MOVES);
    let events = EVENTS_PER_ROUND * ranges as u64 * ROUNDS as u64;
    let moves_per_gap = MOVES / ROUNDS;
    let start = Instant::now();
    for round in 0..ROUNDS {
        streaming_round(&mut rig, EVENTS_PER_ROUND, &mut rng);
        let burst = if round == ROUNDS - 1 {
            MOVES - moves_per_gap * (ROUNDS - 1) // remainder on the last gap
        } else {
            moves_per_gap
        };
        for _ in 0..burst {
            let m = zipf.sample(&mut rng);
            let to = (rig.homes[m] + rng.gen_range(1..ranges.max(2))) % ranges;
            handoffs_us.push(handoff(&mut rig, m, to).as_secs_f64() * 1e6);
        }
    }
    rig.fed
        .sync(VirtualTime::from_micros(rig.clock))
        .expect("closing sync");
    let elapsed = start.elapsed().as_secs_f64();

    let movers = rig.movers.clone();
    let deliveries: u64 = movers
        .into_iter()
        .map(|app| rig.fed.deliveries_for(app).len() as u64)
        .sum();
    assert!(
        deliveries > 0,
        "standing queries produced no deliveries across the churn"
    );
    let bytes_per_entity = rig.bytes_per_entity;
    rig.fed.shutdown();

    handoffs_us.sort_by(f64::total_cmp);
    Row {
        ranges,
        entities_per_range: ENTITIES_PER_RANGE,
        moves: handoffs_us.len(),
        events,
        handoff_p50_us: percentile(&handoffs_us, 0.50),
        handoff_p99_us: percentile(&handoffs_us, 0.99),
        sustained_kevents_s: events as f64 / elapsed / 1e3,
        bytes_per_entity,
        deliveries,
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn write_json(rows: &[Row]) {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"group\": \"mobility\", \"ranges\": {}, \
                 \"entities_per_range\": {}, \"moves\": {}, \"events\": {}, \
                 \"handoff_p50_us\": {:.1}, \"handoff_p99_us\": {:.1}, \
                 \"sustained_kevents_s\": {:.1}, \"bytes_per_entity\": {:.1}, \
                 \"deliveries\": {}}}",
                r.ranges,
                r.entities_per_range,
                r.moves,
                r.events,
                r.handoff_p50_us,
                r.handoff_p99_us,
                r.sustained_kevents_s,
                r.bytes_per_entity,
                r.deliveries
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e11_mobility\",\n  \"unit\": \"us\",\n  \
         \"available_cores\": {},\n  \"movers\": {},\n  \"zipf_s\": {},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        available_cores(),
        MOVERS,
        ZIPF_S,
        body.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_mobility.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn print_table(rows: &[Row]) {
    println!(
        "\nE11: mobility churn, {} movers (zipf s={}), {} entities/range ({} cores available)",
        MOVERS,
        ZIPF_S,
        ENTITIES_PER_RANGE,
        available_cores()
    );
    println!(
        "{:>7} | {:>6} {:>14} {:>14} | {:>21} {:>16} {:>11}",
        "ranges",
        "moves",
        "handoff p50",
        "handoff p99",
        "sustained (kevents/s)",
        "bytes/entity",
        "deliveries"
    );
    for r in rows {
        println!(
            "{:>7} | {:>6} {:>11.0} us {:>11.0} us | {:>21.1} {:>16.1} {:>11}",
            r.ranges,
            r.moves,
            r.handoff_p50_us,
            r.handoff_p99_us,
            r.sustained_kevents_s,
            r.bytes_per_entity,
            r.deliveries
        );
    }
    println!();
}

fn bench_mobility(c: &mut Criterion) {
    let rows: Vec<Row> = RANGE_SWEEP.iter().map(|&r| measure_row(r)).collect();
    print_table(&rows);
    write_json(&rows);

    // The Criterion group keeps a cheap steady-state probe: one hot
    // mover ping-ponging between two pre-built ranges.
    let mut group = c.benchmark_group("e11_handoff");
    group.bench_with_input(BenchmarkId::new("ping_pong", 2), &2usize, |b, &n| {
        let mut rig = build(n, 23);
        let mut next = 1usize;
        b.iter(|| {
            let took = handoff(&mut rig, 0, next);
            next = (next + 1) % n;
            took
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mobility
}
criterion_main!(benches);
