//! E2 — Figures 2 and 5: the structure of a Range and its discovery
//! sequence. Measures registration latency/throughput as the range's
//! population grows, and the full announce→register→publish handshake.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sci_core::context_server::ContextServer;
use sci_location::floorplan::capa_level10;
use sci_types::guid::GuidGenerator;
use sci_types::{ContextType, EntityKind, PortSpec, Profile, VirtualTime};

fn populated_server(n: usize) -> (ContextServer, GuidGenerator) {
    let mut ids = GuidGenerator::seeded(2);
    let mut cs = ContextServer::new(ids.next_guid(), "hall", capa_level10());
    for i in 0..n {
        let id = ids.next_guid();
        cs.register(
            Profile::builder(id, EntityKind::Device, format!("sensor-{i}"))
                .output(PortSpec::new("p", ContextType::Presence))
                .build(),
            VirtualTime::ZERO,
        )
        .expect("fresh");
    }
    (cs, ids)
}

fn print_shape_table() {
    println!("\nE2: range population vs registration cost (amortised)");
    println!("{:>8} | {:>14}", "entities", "reg+dereg (us)");
    for n in [10usize, 100, 1_000, 10_000] {
        let (mut cs, mut ids) = populated_server(n);
        let trials = 200;
        let start = std::time::Instant::now();
        for _ in 0..trials {
            let id = ids.next_guid();
            cs.register(
                Profile::builder(id, EntityKind::Device, "probe")
                    .output(PortSpec::new("p", ContextType::Presence))
                    .build(),
                VirtualTime::ZERO,
            )
            .expect("fresh");
            cs.deregister(id, VirtualTime::ZERO).expect("present");
        }
        println!(
            "{:>8} | {:>14.2}",
            n,
            start.elapsed().as_micros() as f64 / trials as f64
        );
    }
    println!();
}

fn bench_discovery(c: &mut Criterion) {
    print_shape_table();

    let mut group = c.benchmark_group("e2_register");
    for n in [100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("register_deregister", n), &n, |b, &n| {
            let (mut cs, mut ids) = populated_server(n);
            b.iter(|| {
                let id = ids.next_guid();
                cs.register(
                    Profile::builder(id, EntityKind::Device, "probe")
                        .output(PortSpec::new("p", ContextType::Presence))
                        .build(),
                    VirtualTime::ZERO,
                )
                .expect("fresh");
                cs.deregister(id, VirtualTime::ZERO).expect("present");
            });
        });
    }
    group.finish();

    c.bench_function("e2_figure5_handshake", |b| {
        // The full component-integration sequence: announce, register a
        // CE with an advertisement, publish one event.
        let (mut cs, mut ids) = populated_server(100);
        let mut rs = sci_core::range_service::RangeService::deploy("hall", cs.id());
        b.iter(|| {
            let info = rs.announce();
            let id = ids.next_guid();
            cs.register(
                Profile::builder(id, EntityKind::Device, "hs")
                    .output(PortSpec::new("p", ContextType::Presence))
                    .build(),
                VirtualTime::ZERO,
            )
            .expect("fresh");
            cs.advertise(sci_types::Advertisement::new(id, "probe"))
                .expect("registered");
            cs.deregister(id, VirtualTime::ZERO).expect("present");
            info
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_discovery
}
criterion_main!(benches);
