//! E5 — Figure 7 / Section 5: CAPA printer selection. Reproduces the
//! selection outcomes (P1 for Bob, P4 for John) and measures the cost of
//! the deferred-query machinery: storing the query, firing the On-Enter
//! trigger, and evaluating the Which-clause over live printer state.

use criterion::{criterion_group, criterion_main, Criterion};
use sci_core::capa::CapaApp;
use sci_core::context_server::{ContextServer, QueryAnswer};
use sci_location::floorplan::capa_level10;
use sci_types::guid::GuidGenerator;
use sci_types::{
    Advertisement, ContextEvent, ContextType, ContextValue, EntityKind, Guid, PortSpec, Profile,
    VirtualTime,
};

struct CapaRig {
    cs: ContextServer,
    ids: GuidGenerator,
    door: Guid,
    bob: Guid,
    john: Guid,
    printers: Vec<(Guid, &'static str)>,
}

fn rig() -> CapaRig {
    let mut ids = GuidGenerator::seeded(5);
    let bob = ids.next_guid();
    let john = ids.next_guid();
    let mut cs = ContextServer::new(ids.next_guid(), "level-ten", capa_level10());
    let door = ids.next_guid();
    cs.register(
        Profile::builder(door, EntityKind::Device, "door-L10.01")
            .output(PortSpec::new("presence", ContextType::Presence))
            .build(),
        VirtualTime::ZERO,
    )
    .expect("fresh");

    // P1 near Bob; P2 out of paper; P3 locked; P4 free in the bay.
    let printers: Vec<(Guid, &'static str)> = ["P1", "P2", "P3", "P4"]
        .into_iter()
        .map(|name| (ids.next_guid(), name))
        .collect();
    for &(guid, name) in &printers {
        let (room, paper, restricted, queue) = match name {
            "P1" => ("L10.01", true, false, 0),
            "P2" => ("corridor", false, false, 0),
            "P3" => ("L10.03", true, true, 0),
            _ => ("bay", true, false, 0),
        };
        cs.register(
            Profile::builder(guid, EntityKind::Device, name)
                .output(PortSpec::new("status", ContextType::PrinterStatus))
                .attribute("service", ContextValue::text("printing"))
                .attribute("room", ContextValue::place(room))
                .attribute("paper", ContextValue::Bool(paper))
                .attribute("restricted", ContextValue::Bool(restricted))
                .attribute("queue", ContextValue::Int(queue))
                .build(),
            VirtualTime::ZERO,
        )
        .expect("fresh");
        cs.advertise(Advertisement::new(guid, "printing"))
            .expect("registered");
    }
    CapaRig {
        cs,
        ids,
        door,
        bob,
        john,
        printers,
    }
}

fn bob_enters(rig: &CapaRig, t: VirtualTime) -> ContextEvent {
    ContextEvent::new(
        rig.door,
        ContextType::Presence,
        ContextValue::record([
            ("subject", ContextValue::Id(rig.bob)),
            ("from", ContextValue::place("corridor")),
            ("to", ContextValue::place("L10.01")),
        ]),
        t,
    )
}

fn selected_printer(rig: &CapaRig, answer: &QueryAnswer) -> &'static str {
    match answer {
        QueryAnswer::Advertisements(ads) => rig
            .printers
            .iter()
            .find(|(g, _)| *g == ads[0].provider())
            .map(|(_, n)| *n)
            .expect("known printer"),
        other => panic!("unexpected answer {other:?}"),
    }
}

fn print_shape_table() {
    println!("\nE5: CAPA selection outcomes (paper: P1 for Bob, P4 for John)");
    let mut r = rig();

    // Bob: deferred until he enters L10.01.
    let bob_app = r.ids.next_guid();
    let mut capa = CapaApp::new(r.bob, bob_app);
    capa.queue_document("doc.pdf", 3);
    capa.print_when_at("L10.01");
    let qid = r.ids.next_guid();
    {
        let cs = &mut r.cs;
        capa.on_connected(qid, |q| cs.submit_query(q, VirtualTime::ZERO))
            .expect("stored");
    }
    let t = VirtualTime::from_secs(5);
    let ev = bob_enters(&r, t);
    r.cs.ingest(&ev, t).expect("ingests");
    let answers = r.cs.drain_answers();
    let bob_choice = selected_printer(&r, &answers[0].2);
    println!("  Bob   -> {bob_choice}");
    assert_eq!(bob_choice, "P1");

    // P1 becomes busy; John asks for closest with no queue.
    let p1 = r.printers[0].0;
    let busy = ContextEvent::new(
        p1,
        ContextType::PrinterStatus,
        ContextValue::record([
            ("queue", ContextValue::Int(2)),
            ("paper", ContextValue::Bool(true)),
        ]),
        VirtualTime::from_secs(6),
    );
    r.cs.ingest(&busy, VirtualTime::from_secs(6))
        .expect("ingests");
    // John is in L10.02.
    let john_in = ContextEvent::new(
        r.door,
        ContextType::Presence,
        ContextValue::record([
            ("subject", ContextValue::Id(r.john)),
            ("to", ContextValue::place("L10.02")),
        ]),
        VirtualTime::from_secs(6),
    );
    r.cs.ingest(&john_in, VirtualTime::from_secs(6))
        .expect("ingests");

    let john_app = r.ids.next_guid();
    let mut capa_john = CapaApp::new(r.john, john_app);
    capa_john.queue_document("lecture.pdf", 9);
    capa_john.print_now();
    let qid = r.ids.next_guid();
    let mut john_choice = "";
    {
        let r_ref = &mut r;
        capa_john
            .on_connected(qid, |q| {
                let a = r_ref.cs.submit_query(q, VirtualTime::from_secs(7))?;
                john_choice = selected_printer(r_ref, &a);
                Ok(a)
            })
            .expect("answers");
    }
    println!("  John  -> {john_choice}");
    assert_eq!(john_choice, "P4");
    println!();
}

fn bench_capa(c: &mut Criterion) {
    print_shape_table();

    c.bench_function("e5_trigger_to_answer", |b| {
        // Cost of: trigger match + Which evaluation + advertisement
        // answer, per door event that fires a stored query.
        let mut r = rig();
        let app = r.ids.next_guid();
        let mut n = 0u64;
        b.iter(|| {
            let mut capa = CapaApp::new(r.bob, app);
            capa.queue_document("doc.pdf", 1);
            capa.print_when_at("L10.01");
            let qid = r.ids.next_guid();
            {
                let cs = &mut r.cs;
                capa.on_connected(qid, |q| cs.submit_query(q, VirtualTime::ZERO))
                    .expect("stored");
            }
            n += 1;
            let t = VirtualTime::from_secs(n);
            let ev = bob_enters(&r, t);
            r.cs.ingest(&ev, t).expect("ingests");
            let answers = r.cs.drain_answers();
            assert_eq!(answers.len(), 1);
            answers
        });
    });

    c.bench_function("e5_immediate_selection", |b| {
        // John's immediate query: candidate filtering + closest.
        let mut r = rig();
        let john_in = ContextEvent::new(
            r.door,
            ContextType::Presence,
            ContextValue::record([
                ("subject", ContextValue::Id(r.john)),
                ("to", ContextValue::place("L10.02")),
            ]),
            VirtualTime::ZERO,
        );
        r.cs.ingest(&john_in, VirtualTime::ZERO).expect("ingests");
        let app = r.ids.next_guid();
        b.iter(|| {
            let mut capa = CapaApp::new(r.john, app);
            capa.queue_document("x", 1);
            capa.print_now();
            let qid = r.ids.next_guid();
            let cs = &mut r.cs;
            capa.on_connected(qid, |q| cs.submit_query(q, VirtualTime::from_secs(1)))
                .expect("answers")
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_capa
}
criterion_main!(benches);
