//! E7 — scalability across ranges (Section 3's scalability goal and the
//! CAPA forwarding pattern): end-to-end federated query latency and hop
//! counts as the number of ranges grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sci_core::context_server::ContextServer;
use sci_core::federation::Federation;
use sci_location::{FloorPlan, Rect};
use sci_query::{Mode, Query};
use sci_types::guid::GuidGenerator;
use sci_types::{ContextType, ContextValue, Coord, EntityKind, PortSpec, Profile, VirtualTime};

fn build_federation(ranges: usize, seed: u64) -> (Federation, GuidGenerator) {
    let mut ids = GuidGenerator::seeded(seed);
    let mut fed = Federation::new(seed);
    for i in 0..ranges {
        let plan = FloorPlan::builder("campus")
            .zone(format!("wing-{i}"))
            .room(
                format!("hall-{i}"),
                Rect::with_size(Coord::new(0.0, 0.0), 20.0, 10.0),
            )
            .build()
            .expect("static plan");
        let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), plan);
        let sensor = ids.next_guid();
        cs.register(
            Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
                .output(PortSpec::new("p", ContextType::Presence))
                .attribute("service", ContextValue::text("sensing"))
                .build(),
            VirtualTime::ZERO,
        )
        .expect("fresh");
        fed.add_range(cs).expect("unique");
    }
    fed.connect_full();
    (fed, ids)
}

fn forward_once(fed: &mut Federation, ids: &mut GuidGenerator, from: usize, to: usize) -> u32 {
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .kind(EntityKind::Device)
        .in_range(format!("range-{to}"))
        .all()
        .mode(Mode::Profile)
        .build();
    fed.submit_from(&format!("range-{from}"), &q, VirtualTime::ZERO)
        .expect("routes")
        .hops
}

fn print_shape_table() {
    println!("\nE7: federated query round-trips vs number of ranges");
    println!(
        "{:>8} | {:>12} {:>14}",
        "ranges", "mean hops", "per query (us)"
    );
    for ranges in [2usize, 8, 32, 128] {
        let (mut fed, mut ids) = build_federation(ranges, 17);
        let trials = 100;
        let mut hops = 0u32;
        let start = std::time::Instant::now();
        for k in 0..trials {
            let from = k % ranges;
            let to = (k * 13 + 1) % ranges;
            if from == to {
                continue;
            }
            hops += forward_once(&mut fed, &mut ids, from, to);
        }
        println!(
            "{:>8} | {:>12.2} {:>14.1}",
            ranges,
            f64::from(hops) / trials as f64,
            start.elapsed().as_micros() as f64 / trials as f64
        );
    }
    println!();
}

fn bench_federation(c: &mut Criterion) {
    print_shape_table();

    let mut group = c.benchmark_group("e7_forwarded_query");
    for ranges in [4usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(ranges), &ranges, |b, &n| {
            let (mut fed, mut ids) = build_federation(n, 17);
            let mut k = 0usize;
            b.iter(|| {
                let from = k % n;
                let to = (k * 13 + 1) % n;
                k += 1;
                if from == to {
                    0
                } else {
                    forward_once(&mut fed, &mut ids, from, to)
                }
            });
        });
    }
    group.finish();

    c.bench_function("e7_event_relay", |b| {
        // Remote subscription: event produced in range-1 relayed to an
        // app homed in range-0.
        let (mut fed, mut ids) = build_federation(4, 17);
        let app = ids.next_guid();
        let q = Query::builder(ids.next_guid(), app)
            .info(ContextType::Presence)
            .in_range("range-1")
            .mode(Mode::Subscribe)
            .build();
        fed.submit_from("range-0", &q, VirtualTime::ZERO)
            .expect("routes");
        let sensor = fed
            .server("range-1")
            .expect("exists")
            .profiles()
            .providers_of(&ContextType::Presence)[0]
            .id();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            let ev = sci_types::ContextEvent::new(
                sensor,
                ContextType::Presence,
                ContextValue::record([(
                    "subject",
                    ContextValue::Id(sci_types::Guid::from_u128(9)),
                )]),
                VirtualTime::from_micros(k),
            );
            fed.ingest_at("range-1", &ev, VirtualTime::from_micros(k))
                .expect("ingests");
            let d = fed.deliveries_for(app);
            assert_eq!(d.len(), 1);
            d
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_federation
}
criterion_main!(benches);
