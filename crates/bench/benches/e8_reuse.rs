//! E8 — the subgraph-reuse ablation. SCI adopts Solar's insight that
//! "the common parts of context processing graphs of different
//! applications" should be shared. Shape: instances created as identical
//! concurrent queries accumulate, reuse ON (constant) vs OFF (linear).
//! Criterion times query admission under both policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sci_bench::{path_query, presence_event, Figure3Rig};
use sci_types::VirtualTime;

fn rig_with_reuse(reuse: bool) -> Figure3Rig {
    let mut rig = Figure3Rig::new(4, 0, 8);
    rig.cs.set_reuse(reuse);
    rig
}

fn print_shape_table() {
    println!("\nE8: live instances vs concurrent identical path queries");
    println!("{:>8} | {:>12} {:>12}", "queries", "reuse ON", "reuse OFF");
    for n in [1usize, 8, 64, 512] {
        let counts: Vec<usize> = [true, false]
            .into_iter()
            .map(|reuse| {
                let mut rig = rig_with_reuse(reuse);
                let bob = rig.ids.next_guid();
                let john = rig.ids.next_guid();
                for _ in 0..n {
                    let app = rig.ids.next_guid();
                    let q = path_query(&mut rig.ids, app, bob, john);
                    rig.cs
                        .submit_query(&q, VirtualTime::ZERO)
                        .expect("resolves");
                }
                rig.cs.instance_count()
            })
            .collect();
        println!("{:>8} | {:>12} {:>12}", n, counts[0], counts[1]);
    }
    println!();
}

fn bench_reuse(c: &mut Criterion) {
    print_shape_table();

    let mut group = c.benchmark_group("e8_admission");
    for reuse in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("hundredth_identical_query", reuse),
            &reuse,
            |b, &reuse| {
                b.iter_with_setup(
                    || {
                        let mut rig = rig_with_reuse(reuse);
                        let bob = rig.ids.next_guid();
                        let john = rig.ids.next_guid();
                        for _ in 0..99 {
                            let app = rig.ids.next_guid();
                            let q = path_query(&mut rig.ids, app, bob, john);
                            rig.cs
                                .submit_query(&q, VirtualTime::ZERO)
                                .expect("resolves");
                        }
                        (rig, bob, john)
                    },
                    |(mut rig, bob, john)| {
                        let app = rig.ids.next_guid();
                        let q = path_query(&mut rig.ids, app, bob, john);
                        rig.cs
                            .submit_query(&q, VirtualTime::ZERO)
                            .expect("resolves")
                    },
                );
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e8_event_dispatch");
    for reuse in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("event_through_64_queries", reuse),
            &reuse,
            |b, &reuse| {
                // One door event cascading to 64 subscribed apps: shared
                // instances compute once; duplicated ones 64 times.
                let mut rig = rig_with_reuse(reuse);
                let bob = rig.ids.next_guid();
                let john = rig.ids.next_guid();
                for _ in 0..64 {
                    let app = rig.ids.next_guid();
                    let q = path_query(&mut rig.ids, app, bob, john);
                    rig.cs
                        .submit_query(&q, VirtualTime::ZERO)
                        .expect("resolves");
                }
                // Prime both endpoints.
                let t = VirtualTime::from_secs(1);
                rig.cs
                    .ingest(
                        &presence_event(rig.doors[0], bob, "corridor", "L10.01", t),
                        t,
                    )
                    .expect("ingests");
                rig.cs
                    .ingest(
                        &presence_event(rig.doors[0], john, "corridor", "L10.02", t),
                        t,
                    )
                    .expect("ingests");
                rig.cs.drain_outbox();
                let mut flip = false;
                b.iter(|| {
                    let room = if flip { "L10.03" } else { "bay" };
                    flip = !flip;
                    let t = VirtualTime::from_secs(2);
                    rig.cs
                        .ingest(&presence_event(rig.doors[0], john, "corridor", room, t), t)
                        .expect("ingests");
                    let out = rig.cs.drain_outbox();
                    assert_eq!(out.len(), 64, "one update per subscribed app");
                    out
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_reuse
}
criterion_main!(benches);
