//! E9 — indexed dispatch. Publish cost of the `TopicIndex`-backed
//! [`EventBus`] against the linear-scan oracle [`LinearBus`] as the
//! subscription table grows from 10² to 10⁵ entries with a fixed
//! matching set (~10), plus resolver demand-satisfaction scaling against
//! distractor CE count via the type-keyed profile index.
//!
//! Besides the Criterion timings, the harness writes the shape rows to
//! `BENCH_dispatch.json` at the repo root — the machine-readable perf
//! trajectory documented in `EXPERIMENTS.md` (§E9). The indexed bus is
//! timed **with telemetry attached** (counters-only on this hot path),
//! so the rows price the instrumented configuration the middleware
//! actually runs; the registry snapshot rides along under `telemetry`.

use std::collections::HashSet;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sci_bench::Figure3Rig;
use sci_core::resolver::{plan_configuration, Demand};
use sci_event::{EventBus, LinearBus, Topic};
use sci_telemetry::Registry;
use sci_types::{ContextEvent, ContextType, ContextValue, Guid, VirtualTime};

/// Number of subscriptions that match the probe event in every table
/// shape (the acceptance criterion fixes this while total grows).
const MATCHING: usize = 10;

const TABLE_SIZES: [usize; 4] = [100, 1_000, 10_000, 100_000];
const DISTRACTOR_COUNTS: [usize; 4] = [10, 100, 1_000, 10_000];

fn probe_event() -> ContextEvent {
    ContextEvent::new(
        Guid::from_u128(0xd00d),
        ContextType::Presence,
        ContextValue::record([
            ("subject", ContextValue::Id(Guid::from_u128(0xb0b))),
            ("room", ContextValue::place("L10.01")),
        ]),
        VirtualTime::from_secs(1),
    )
}

/// The topic of the ith subscription in a table of `total`: `MATCHING`
/// presence subscriptions spread evenly through the table, the rest
/// non-matching distractors cycling over type-, source- and
/// subject-keyed shapes so every index family is populated.
fn topic_for_slot(i: usize, total: usize) -> Topic {
    let stride = (total / MATCHING).max(1);
    if i.is_multiple_of(stride) && i / stride < MATCHING {
        return Topic::of_type(ContextType::Presence);
    }
    match i % 3 {
        0 => Topic::of_type(ContextType::custom(format!("distractor-{i}"))),
        1 => Topic::from_source(Guid::from_u128(0x5000 + i as u128)),
        _ => Topic::any().about(Guid::from_u128(0x9000 + i as u128)),
    }
}

fn build_buses(total: usize, registry: &Registry) -> (EventBus, LinearBus) {
    let mut indexed = EventBus::new();
    indexed.attach_telemetry(registry);
    let mut linear = LinearBus::new();
    for i in 0..total {
        let subscriber = Guid::from_u128(i as u128 + 1);
        let topic = topic_for_slot(i, total);
        indexed.subscribe(subscriber, topic.clone(), false);
        linear.subscribe(subscriber, topic, false);
    }
    (indexed, linear)
}

/// Mean microseconds per call of `f`, with a calibration pass sizing the
/// trial count toward ~200ms of measurement.
fn mean_us(mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    f();
    let once = start.elapsed().max(std::time::Duration::from_nanos(50));
    let trials = ((0.2 / once.as_secs_f64()) as usize).clamp(3, 20_000);
    let start = Instant::now();
    for _ in 0..trials {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / trials as f64
}

struct PublishRow {
    total: usize,
    indexed_us: f64,
    linear_us: f64,
}

struct ResolverRow {
    distractors: usize,
    plan_us: f64,
}

fn measure_publish_rows(registry: &Registry) -> Vec<PublishRow> {
    let ev = probe_event();
    TABLE_SIZES
        .iter()
        .map(|&total| {
            let (mut indexed, mut linear) = build_buses(total, registry);
            let a = indexed.publish(&ev);
            let b = linear.publish(&ev);
            assert_eq!(a, b, "index and oracle must agree before timing");
            assert_eq!(a.len(), MATCHING);
            PublishRow {
                total,
                indexed_us: mean_us(|| {
                    indexed.publish(&ev);
                }),
                linear_us: mean_us(|| {
                    linear.publish(&ev);
                }),
            }
        })
        .collect()
}

fn measure_resolver_rows() -> Vec<ResolverRow> {
    DISTRACTOR_COUNTS
        .iter()
        .map(|&distractors| {
            let rig = Figure3Rig::new(8, distractors, 9);
            let demand = Demand::of(ContextType::Path);
            let excluded = HashSet::new();
            plan_configuration(rig.cs.profiles(), &demand, &[], &excluded)
                .expect("path demand resolvable");
            ResolverRow {
                distractors,
                plan_us: mean_us(|| {
                    plan_configuration(rig.cs.profiles(), &demand, &[], &excluded)
                        .expect("path demand resolvable");
                }),
            }
        })
        .collect()
}

fn write_json(publish: &[PublishRow], resolver: &[ResolverRow], registry: &Registry) {
    let mut rows: Vec<String> = publish
        .iter()
        .map(|r| {
            format!(
                "    {{\"group\": \"publish\", \"total_subs\": {}, \"matching\": {}, \
                 \"indexed_us\": {:.3}, \"linear_us\": {:.3}, \"speedup\": {:.1}}}",
                r.total,
                MATCHING,
                r.indexed_us,
                r.linear_us,
                r.linear_us / r.indexed_us
            )
        })
        .collect();
    rows.extend(resolver.iter().map(|r| {
        format!(
            "    {{\"group\": \"resolver\", \"distractors\": {}, \"plan_us\": {:.3}}}",
            r.distractors, r.plan_us
        )
    }));
    let json = format!(
        "{{\n  \"experiment\": \"e9_dispatch\",\n  \"unit\": \"us\",\n  \"rows\": [\n{}\n  ],\n  \
         \"telemetry\": {}\n}}\n",
        rows.join(",\n"),
        registry.snapshot().to_json()
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_dispatch.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn print_shape_table(publish: &[PublishRow], resolver: &[ResolverRow]) {
    println!("\nE9: publish cost, indexed bus vs linear oracle ({MATCHING} matching subs)");
    println!(
        "{:>10} | {:>12} {:>12} {:>9}",
        "total subs", "indexed (us)", "linear (us)", "speedup"
    );
    for r in publish {
        println!(
            "{:>10} | {:>12.2} {:>12.2} {:>8.1}x",
            r.total,
            r.indexed_us,
            r.linear_us,
            r.linear_us / r.indexed_us
        );
    }
    println!("\nE9: path-demand resolution vs distractor CE count (Figure3Rig)");
    println!("{:>11} | {:>10}", "distractors", "plan (us)");
    for r in resolver {
        println!("{:>11} | {:>10.2}", r.distractors, r.plan_us);
    }
    println!();
}

fn bench_dispatch(c: &mut Criterion) {
    let registry = Registry::new();
    let publish = measure_publish_rows(&registry);
    let resolver = measure_resolver_rows();
    print_shape_table(&publish, &resolver);
    write_json(&publish, &resolver, &registry);

    let ev = probe_event();
    let mut group = c.benchmark_group("e9_publish");
    for total in TABLE_SIZES {
        let (mut indexed, mut linear) = build_buses(total, &registry);
        group.bench_with_input(BenchmarkId::new("indexed", total), &ev, |b, ev| {
            b.iter(|| indexed.publish(ev));
        });
        group.bench_with_input(BenchmarkId::new("linear", total), &ev, |b, ev| {
            b.iter(|| linear.publish(ev));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e9_resolver");
    for distractors in [10usize, 1_000] {
        let rig = Figure3Rig::new(8, distractors, 9);
        let demand = Demand::of(ContextType::Path);
        let excluded = HashSet::new();
        group.bench_with_input(
            BenchmarkId::new("plan_path", distractors),
            &demand,
            |b, demand| {
                b.iter(|| {
                    plan_configuration(rig.cs.profiles(), demand, &[], &excluded)
                        .expect("path demand resolvable")
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_dispatch
}
criterion_main!(benches);
