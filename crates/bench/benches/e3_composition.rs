//! E3 — Figure 3: the composition model. Measures (a) query resolution
//! time — type matching down to the sensor level — as the CE population
//! grows, and (b) end-to-end event propagation latency through the
//! instantiated 3-stage configuration (door sensor → objLocationCE →
//! pathCE → pathApp).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sci_bench::{path_query, presence_event, Figure3Rig};
use sci_types::VirtualTime;

fn print_shape_table() {
    println!("\nE3: resolution cost vs registered-CE population");
    println!(
        "{:>8} {:>12} | {:>14} {:>10}",
        "doors", "distractors", "resolve (us)", "instances"
    );
    for (doors, distractors) in [
        (4usize, 0usize),
        (4, 100),
        (4, 1000),
        (16, 1000),
        (64, 5000),
    ] {
        let mut rig = Figure3Rig::new(doors, distractors, 3);
        let app = rig.ids.next_guid();
        let bob = rig.ids.next_guid();
        let john = rig.ids.next_guid();
        let trials = 50;
        let start = std::time::Instant::now();
        for _ in 0..trials {
            let q = path_query(&mut rig.ids, app, bob, john);
            rig.cs
                .submit_query(&q, VirtualTime::ZERO)
                .expect("resolves");
            rig.cs.cancel_query(q.id).expect("live");
        }
        let us = start.elapsed().as_micros() as f64 / trials as f64;
        let q = path_query(&mut rig.ids, app, bob, john);
        rig.cs
            .submit_query(&q, VirtualTime::ZERO)
            .expect("resolves");
        println!(
            "{:>8} {:>12} | {:>14.1} {:>10}",
            doors,
            distractors,
            us,
            rig.cs.instance_count()
        );
    }
    println!();
}

fn bench_composition(c: &mut Criterion) {
    print_shape_table();

    let mut group = c.benchmark_group("e3_resolve");
    for distractors in [0usize, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::new("path_query", distractors),
            &distractors,
            |b, &d| {
                let mut rig = Figure3Rig::new(8, d, 3);
                let app = rig.ids.next_guid();
                let bob = rig.ids.next_guid();
                let john = rig.ids.next_guid();
                b.iter(|| {
                    let q = path_query(&mut rig.ids, app, bob, john);
                    rig.cs
                        .submit_query(&q, VirtualTime::ZERO)
                        .expect("resolves");
                    rig.cs.cancel_query(q.id).expect("live");
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e3_propagation");
    for doors in [2usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("door_event_to_path", doors),
            &doors,
            |b, &d| {
                let mut rig = Figure3Rig::new(d, 0, 3);
                let app = rig.ids.next_guid();
                let bob = rig.ids.next_guid();
                let john = rig.ids.next_guid();
                let q = path_query(&mut rig.ids, app, bob, john);
                rig.cs
                    .submit_query(&q, VirtualTime::ZERO)
                    .expect("resolves");
                // Prime both endpoints so every event yields a path.
                let t = VirtualTime::from_secs(1);
                rig.cs
                    .ingest(
                        &presence_event(rig.doors[0], bob, "corridor", "L10.01", t),
                        t,
                    )
                    .expect("ingests");
                rig.cs
                    .ingest(
                        &presence_event(rig.doors[0], john, "corridor", "L10.02", t),
                        t,
                    )
                    .expect("ingests");
                rig.cs.drain_outbox();
                let mut flip = false;
                b.iter(|| {
                    let t = VirtualTime::from_secs(2);
                    let room = if flip { "L10.03" } else { "bay" };
                    flip = !flip;
                    rig.cs
                        .ingest(&presence_event(rig.doors[0], john, "corridor", room, t), t)
                        .expect("ingests");
                    let out = rig.cs.drain_outbox();
                    assert_eq!(out.len(), 1, "one path update per movement");
                    out
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_composition
}
criterion_main!(benches);
