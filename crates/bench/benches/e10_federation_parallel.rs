//! E10 — parallel multi-range execution. The serial [`Federation`]
//! processes every range's ingest inline on the coordinator thread; the
//! [`ParallelFederation`] runs one runtime thread per range and
//! pipelines ingest commands into per-range mailboxes, paying one
//! barrier (`sync`) per batch. This harness drives the E7 relay
//! workload — per-range subscribers, round-robin ingest across ranges —
//! through both drivers for ranges ∈ {1, 2, 4, 8, 16} and reports
//! end-to-end event throughput.
//!
//! Besides the Criterion timings, the harness writes the shape rows to
//! `BENCH_federation.json` at the repo root — the machine-readable perf
//! trajectory documented in `EXPERIMENTS.md` (§E10). The file records
//! `available_cores`: the speedup ceiling is `min(ranges, cores)`, so
//! on a single-core container the parallel driver can only show its
//! pipelining win, not true multi-core scaling.
//!
//! Each row also carries the parallel driver's per-phase breakdown,
//! read as histogram-sum deltas from the federation telemetry snapshot
//! around the measured batch: `cast_us` (enqueue into per-range
//! mailboxes), `barrier_us` (the `sync` drain), `relay_us` (cross-range
//! event/answer relaying) — plus `mailbox_highwater`, the deepest
//! mailbox the run observed (`range.mailbox.highwater`). When the
//! highwater pins at the mailbox capacity, `cast_us` is dominated by
//! backpressure blocking rather than enqueue cost (see EXPERIMENTS.md
//! §E10 on the 16-range spike). The final snapshot rides along under
//! `telemetry`.
//!
//! Two row groups are emitted. `"relay"` is the historical barrier
//! shape (per-event `ingest_at`, one big `sync`), kept for
//! cross-version comparability. `"stream"` is the streaming shape
//! (per-range `ingest_batch_at`, free-running `pump_streams` rounds, a
//! closing `sync`) and reports `sustained_kevents_s` — the
//! steady-state throughput the CI gate protects (a regression is a
//! throughput *drop*, not a time increase).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sci_core::context_server::ContextServer;
use sci_core::federation::Federation;
use sci_core::runtime::ParallelFederation;
use sci_location::{FloorPlan, Rect};
use sci_query::{Mode, Query};
use sci_telemetry::TelemetrySnapshot;
use sci_types::guid::GuidGenerator;
use sci_types::{
    ContextEvent, ContextType, ContextValue, Coord, EntityKind, Guid, PortSpec, Profile,
    VirtualTime,
};

const RANGE_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];
/// Events ingested into every range per measured batch.
const EVENTS_PER_RANGE: u64 = 500;

fn range_plan(i: usize) -> FloorPlan {
    FloorPlan::builder("campus")
        .zone(format!("wing-{i}"))
        .room(
            format!("hall-{i}"),
            Rect::with_size(Coord::new(0.0, 0.0), 20.0, 10.0),
        )
        .build()
        .expect("static plan")
}

fn server(i: usize, ids: &mut GuidGenerator) -> (ContextServer, Guid) {
    let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
    let sensor = ids.next_guid();
    cs.register(
        Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
            .output(PortSpec::new("p", ContextType::Presence))
            .attribute("service", ContextValue::text("sensing"))
            .build(),
        VirtualTime::ZERO,
    )
    .expect("fresh");
    (cs, sensor)
}

fn subscription(i: usize, ids: &mut GuidGenerator) -> (Guid, Query) {
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Presence)
        .in_range(format!("range-{i}"))
        .mode(Mode::Subscribe)
        .build();
    (app, q)
}

fn event(sensor: Guid, k: u64, t: VirtualTime) -> ContextEvent {
    ContextEvent::new(
        sensor,
        ContextType::Presence,
        ContextValue::record([("subject", ContextValue::Id(Guid::from_u128(u128::from(k))))]),
        t,
    )
}

struct SerialRig {
    fed: Federation,
    sensors: Vec<Guid>,
    apps: Vec<Guid>,
    clock: u64,
}

fn build_serial(ranges: usize, seed: u64) -> SerialRig {
    let mut ids = GuidGenerator::seeded(seed);
    let mut fed = Federation::new(seed);
    let mut sensors = Vec::new();
    for i in 0..ranges {
        let (cs, sensor) = server(i, &mut ids);
        sensors.push(sensor);
        fed.add_range(cs).expect("unique");
    }
    fed.connect_full();
    let mut apps = Vec::new();
    for i in 0..ranges {
        let (app, q) = subscription(i, &mut ids);
        fed.submit_from(&format!("range-{i}"), &q, VirtualTime::ZERO)
            .expect("subscribes");
        apps.push(app);
    }
    SerialRig {
        fed,
        sensors,
        apps,
        clock: 0,
    }
}

struct ParallelRig {
    fed: ParallelFederation,
    sensors: Vec<Guid>,
    apps: Vec<Guid>,
    clock: u64,
}

fn build_parallel(ranges: usize, seed: u64) -> ParallelRig {
    let mut ids = GuidGenerator::seeded(seed);
    let mut fed = ParallelFederation::new(seed);
    let mut sensors = Vec::new();
    for i in 0..ranges {
        let (cs, sensor) = server(i, &mut ids);
        sensors.push(sensor);
        fed.add_range(cs).expect("unique");
    }
    fed.connect_full();
    let mut apps = Vec::new();
    for i in 0..ranges {
        let (app, q) = subscription(i, &mut ids);
        fed.submit_from(&format!("range-{i}"), &q, VirtualTime::ZERO)
            .expect("subscribes");
        apps.push(app);
    }
    ParallelRig {
        fed,
        sensors,
        apps,
        clock: 0,
    }
}

/// One batch through the serial driver: every ingest is processed
/// inline. Returns elapsed time and total deliveries drained.
fn serial_batch(rig: &mut SerialRig, per_range: u64) -> (Duration, usize) {
    let start = Instant::now();
    for k in 0..per_range {
        for (j, &sensor) in rig.sensors.iter().enumerate() {
            rig.clock += 1;
            let t = VirtualTime::from_micros(rig.clock);
            rig.fed
                .ingest_at(&format!("range-{j}"), &event(sensor, rig.clock + k, t), t)
                .expect("ingests");
        }
    }
    let delivered: usize = rig
        .apps
        .clone()
        .into_iter()
        .map(|app| rig.fed.deliveries_for(app).len())
        .sum();
    (start.elapsed(), delivered)
}

/// One batch through the parallel driver: ingests pipeline into the
/// per-range mailboxes, then one `sync` barrier flushes outboxes.
fn parallel_batch(rig: &mut ParallelRig, per_range: u64) -> (Duration, usize) {
    let start = Instant::now();
    for k in 0..per_range {
        for (j, &sensor) in rig.sensors.iter().enumerate() {
            rig.clock += 1;
            let t = VirtualTime::from_micros(rig.clock);
            rig.fed
                .ingest_at(&format!("range-{j}"), &event(sensor, rig.clock + k, t), t)
                .expect("ingests");
        }
    }
    rig.fed
        .sync(VirtualTime::from_micros(rig.clock))
        .expect("syncs");
    let delivered: usize = rig
        .apps
        .clone()
        .into_iter()
        .map(|app| rig.fed.deliveries_for(app).len())
        .sum();
    (start.elapsed(), delivered)
}

/// Steady-state rounds per measured streaming batch: each round is a
/// per-range `ingest_batch_at` (one mailbox send for the whole batch)
/// chased by a free-running `pump_streams` pass; a closing `sync`
/// settles the tail.
const STREAM_ROUNDS: u64 = 5;

/// One streaming round: batch-ingest `per_range` events into every
/// range, then pump whatever has streamed so far.
fn streaming_round(rig: &mut ParallelRig, per_range: u64) {
    for j in 0..rig.sensors.len() {
        let sensor = rig.sensors[j];
        let mut batch = Vec::with_capacity(per_range as usize);
        for _ in 0..per_range {
            rig.clock += 1;
            let t = VirtualTime::from_micros(rig.clock);
            batch.push(event(sensor, rig.clock, t));
        }
        let t = VirtualTime::from_micros(rig.clock);
        rig.fed
            .ingest_batch_at(&format!("range-{j}"), &batch, t)
            .expect("ingests");
    }
    rig.fed
        .pump_streams(VirtualTime::from_micros(rig.clock))
        .expect("pumps");
}

/// One measured streaming batch: `STREAM_ROUNDS` steady-state rounds,
/// then one closing `sync`. Returns elapsed time and deliveries
/// drained — the sustained-throughput shape of the streaming design,
/// vs `parallel_batch`'s one-big-barrier shape.
fn streaming_batch(rig: &mut ParallelRig, per_range: u64) -> (Duration, usize) {
    let per_round = (per_range / STREAM_ROUNDS).max(1);
    let start = Instant::now();
    for _ in 0..STREAM_ROUNDS {
        streaming_round(rig, per_round);
    }
    rig.fed
        .sync(VirtualTime::from_micros(rig.clock))
        .expect("syncs");
    let delivered: usize = rig
        .apps
        .clone()
        .into_iter()
        .map(|app| rig.fed.deliveries_for(app).len())
        .sum();
    (start.elapsed(), delivered)
}

/// The instrumented phases of a parallel batch, as cumulative
/// histogram sums (microseconds) from the telemetry snapshot.
const PHASES: [&str; 4] = [
    "federation.cast_us",
    "federation.barrier_us",
    "federation.relay_us",
    "federation.stream.pump_us",
];

fn phase_sums(snap: &TelemetrySnapshot) -> [u64; 4] {
    PHASES.map(|name| snap.histogram(name).map_or(0, |h| h.sum))
}

struct Row {
    ranges: usize,
    events: u64,
    serial_us: f64,
    parallel_us: f64,
    /// Per-phase time (us) spent in the measured parallel batch.
    cast_us: u64,
    barrier_us: u64,
    relay_us: u64,
    /// Deepest per-range mailbox observed (`range.mailbox.highwater`):
    /// when this sits at the mailbox capacity, `cast_us` is measuring
    /// backpressure blocking, not enqueue cost — the §E10 spike.
    mailbox_highwater: i64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.serial_us / self.parallel_us
    }

    fn serial_keps(&self) -> f64 {
        self.events as f64 / self.serial_us * 1e3
    }

    fn parallel_keps(&self) -> f64 {
        self.events as f64 / self.parallel_us * 1e3
    }
}

/// The sustained-throughput row for the streaming driver: batched
/// ingest + continuous pumps, measured over `STREAM_ROUNDS`
/// steady-state rounds against the same serial baseline.
struct StreamRow {
    ranges: usize,
    events: u64,
    serial_us: f64,
    stream_us: f64,
    /// Per-phase time (us) spent in the measured streaming batch.
    cast_us: u64,
    pump_us: u64,
    /// Deepest per-range mailbox observed in the streaming run.
    mailbox_highwater: i64,
}

impl StreamRow {
    fn speedup(&self) -> f64 {
        self.serial_us / self.stream_us
    }

    /// Sustained end-to-end throughput of the streaming driver.
    fn sustained_keps(&self) -> f64 {
        self.events as f64 / self.stream_us * 1e3
    }
}

fn measure_rows() -> (Vec<Row>, Vec<StreamRow>, TelemetrySnapshot) {
    let mut last_snapshot = TelemetrySnapshot::default();
    let mut stream_rows = Vec::new();
    let rows = RANGE_SWEEP
        .iter()
        .map(|&ranges| {
            let events = EVENTS_PER_RANGE * ranges as u64;

            let mut serial = build_serial(ranges, 17);
            // Warm-up batch, then the measured one.
            serial_batch(&mut serial, 50);
            let (serial_t, serial_n) = serial_batch(&mut serial, EVENTS_PER_RANGE);
            assert_eq!(serial_n as u64, events, "serial loses deliveries");
            let serial_us = serial_t.as_secs_f64() * 1e6;

            let mut parallel = build_parallel(ranges, 17);
            parallel_batch(&mut parallel, 50);
            let before = phase_sums(&parallel.fed.snapshot());
            let (parallel_t, parallel_n) = parallel_batch(&mut parallel, EVENTS_PER_RANGE);
            assert_eq!(parallel_n as u64, events, "parallel loses deliveries");
            let after_snap = parallel.fed.snapshot();
            let after = phase_sums(&after_snap);
            let parallel_highwater = after_snap.gauge("range.mailbox.highwater");
            parallel.fed.shutdown();

            let mut stream = build_parallel(ranges, 17);
            streaming_batch(&mut stream, 50);
            let s_before = phase_sums(&stream.fed.snapshot());
            let (stream_t, stream_n) = streaming_batch(&mut stream, EVENTS_PER_RANGE);
            assert_eq!(stream_n as u64, events, "streaming loses deliveries");
            last_snapshot = stream.fed.snapshot();
            let s_after = phase_sums(&last_snapshot);
            stream.fed.shutdown();

            stream_rows.push(StreamRow {
                ranges,
                events,
                serial_us,
                stream_us: stream_t.as_secs_f64() * 1e6,
                cast_us: s_after[0].saturating_sub(s_before[0]),
                pump_us: s_after[3].saturating_sub(s_before[3]),
                mailbox_highwater: last_snapshot.gauge("range.mailbox.highwater"),
            });

            Row {
                ranges,
                events,
                serial_us,
                parallel_us: parallel_t.as_secs_f64() * 1e6,
                cast_us: after[0].saturating_sub(before[0]),
                barrier_us: after[1].saturating_sub(before[1]),
                relay_us: after[2].saturating_sub(before[2]),
                mailbox_highwater: parallel_highwater,
            }
        })
        .collect();
    (rows, stream_rows, last_snapshot)
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn write_json(rows: &[Row], stream_rows: &[StreamRow], snapshot: &TelemetrySnapshot) {
    let mut body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"group\": \"relay\", \"ranges\": {}, \"events\": {}, \
                 \"serial_us\": {:.1}, \"parallel_us\": {:.1}, \"speedup\": {:.2}, \
                 \"serial_kevents_s\": {:.1}, \"parallel_kevents_s\": {:.1}, \
                 \"cast_us\": {}, \"barrier_us\": {}, \"relay_us\": {}, \
                 \"mailbox_highwater\": {}}}",
                r.ranges,
                r.events,
                r.serial_us,
                r.parallel_us,
                r.speedup(),
                r.serial_keps(),
                r.parallel_keps(),
                r.cast_us,
                r.barrier_us,
                r.relay_us,
                r.mailbox_highwater
            )
        })
        .collect();
    // The streaming rows ride alongside the barrier-mode rows so the
    // perf trajectory keeps both shapes comparable across PRs.
    body.extend(stream_rows.iter().map(|r| {
        format!(
            "    {{\"group\": \"stream\", \"ranges\": {}, \"events\": {}, \
             \"rounds\": {}, \"serial_us\": {:.1}, \"stream_us\": {:.1}, \
             \"speedup\": {:.2}, \"sustained_kevents_s\": {:.1}, \
             \"cast_us\": {}, \"pump_us\": {}, \"mailbox_highwater\": {}}}",
            r.ranges,
            r.events,
            STREAM_ROUNDS,
            r.serial_us,
            r.stream_us,
            r.speedup(),
            r.sustained_keps(),
            r.cast_us,
            r.pump_us,
            r.mailbox_highwater
        )
    }));
    let json = format!(
        "{{\n  \"experiment\": \"e10_federation_parallel\",\n  \"unit\": \"us\",\n  \
         \"available_cores\": {},\n  \"events_per_range\": {},\n  \"rows\": [\n{}\n  ],\n  \
         \"telemetry\": {}\n}}\n",
        available_cores(),
        EVENTS_PER_RANGE,
        body.join(",\n"),
        snapshot.to_json()
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_federation.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn print_shape_table(rows: &[Row]) {
    println!(
        "\nE10: serial vs parallel federation, {} events/range ({} cores available)",
        EVENTS_PER_RANGE,
        available_cores()
    );
    println!(
        "{:>7} | {:>12} {:>14} {:>12} {:>14} {:>8} | {:>9} {:>10} {:>9} {:>9}",
        "ranges",
        "serial (us)",
        "(kevents/s)",
        "parallel (us)",
        "(kevents/s)",
        "speedup",
        "cast (us)",
        "barrier(us)",
        "relay(us)",
        "highwater"
    );
    for r in rows {
        println!(
            "{:>7} | {:>12.0} {:>14.1} {:>12.0} {:>14.1} {:>7.2}x | {:>9} {:>10} {:>9} {:>9}",
            r.ranges,
            r.serial_us,
            r.serial_keps(),
            r.parallel_us,
            r.parallel_keps(),
            r.speedup(),
            r.cast_us,
            r.barrier_us,
            r.relay_us,
            r.mailbox_highwater
        );
    }
    println!();
}

fn print_stream_table(rows: &[StreamRow]) {
    println!(
        "E10/stream: batched ingest + continuous pumps, {} rounds/batch ({} cores available)",
        STREAM_ROUNDS,
        available_cores()
    );
    println!(
        "{:>7} | {:>12} {:>12} {:>8} {:>22} | {:>9} {:>9} {:>9}",
        "ranges",
        "serial (us)",
        "stream (us)",
        "speedup",
        "sustained (kevents/s)",
        "cast (us)",
        "pump (us)",
        "highwater"
    );
    for r in rows {
        println!(
            "{:>7} | {:>12.0} {:>12.0} {:>7.2}x {:>22.1} | {:>9} {:>9} {:>9}",
            r.ranges,
            r.serial_us,
            r.stream_us,
            r.speedup(),
            r.sustained_keps(),
            r.cast_us,
            r.pump_us,
            r.mailbox_highwater
        );
    }
    println!();
}

fn bench_parallel_federation(c: &mut Criterion) {
    let (rows, stream_rows, snapshot) = measure_rows();
    print_shape_table(&rows);
    print_stream_table(&stream_rows);
    write_json(&rows, &stream_rows, &snapshot);

    let mut group = c.benchmark_group("e10_relay_batch");
    for ranges in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("serial", ranges), &ranges, |b, &n| {
            let mut rig = build_serial(n, 17);
            b.iter(|| serial_batch(&mut rig, 20));
        });
        group.bench_with_input(BenchmarkId::new("parallel", ranges), &ranges, |b, &n| {
            let mut rig = build_parallel(n, 17);
            b.iter(|| parallel_batch(&mut rig, 20));
        });
        group.bench_with_input(BenchmarkId::new("stream", ranges), &ranges, |b, &n| {
            let mut rig = build_parallel(n, 17);
            b.iter(|| streaming_batch(&mut rig, 20));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parallel_federation
}
criterion_main!(benches);
