//! E13 — the cost of real bytes on a real wire.
//!
//! Every other experiment runs the federation over the in-process
//! [`SimNetwork`]; this one runs the identical relay workload over
//! [`TcpTransport`] — loopback sockets, `sci-wal` codec frames, acked
//! sends — and prices the difference.
//!
//! The `relay` group wall-clocks a one-event relay round trip
//! (ingest in `range-1`, delivery drained in `range-0`) per transport:
//! `rtt_us` is the end-to-end latency of the production relay path,
//! which over TCP includes the frame encode, the kernel round trip and
//! the synchronous delivery ack. The `sustained` group streams a
//! batched workload through the same two-range federation and reports
//! `sustained_kevents_s` — throughput with the ack pipeline warm.
//!
//! Shape rows land in `BENCH_network.json` at the repo root, compared
//! by `scripts/bench_compare.py`: per-transport `rtt_us` and
//! `sustained_kevents_s` gate at 3.0x (directional — latency up is bad,
//! throughput down is bad); the sim/tcp ratio rows are informational,
//! because the gap between a function call and a kernel round trip is
//! a property of the host, not the code.
//!
//! The Criterion group keeps a steady-state probe on the raw
//! [`Transport::send`] path over sockets, away from federation noise.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sci_core::context_server::ContextServer;
use sci_core::federation::Federation;
use sci_location::{FloorPlan, Rect};
use sci_overlay::message::{Message, MessageKind};
use sci_overlay::{SimNetwork, TcpTransport, Transport};
use sci_query::{Mode, Query};
use sci_types::{
    ContextEvent, ContextType, ContextValue, Coord, EntityKind, Guid, PortSpec, Profile,
    VirtualTime,
};

/// Round trips per measured relay row (after warm-up).
const ROUND_TRIPS: u64 = 400;
/// Events per measured sustained row.
const EVENTS: u64 = 4_000;
/// Events per ingest batch on the sustained path.
const BATCH: u64 = 100;
/// Warm-up events kept out of every measured window.
const WARMUP: u64 = 100;

fn plan(i: usize) -> FloorPlan {
    FloorPlan::builder("campus")
        .zone(format!("wing-{i}"))
        .room(
            format!("hall-{i}"),
            Rect::with_size(Coord::new(0.0, 0.0), 20.0, 10.0),
        )
        .build()
        .expect("static plan")
}

fn presence(sensor: Guid, subject: u64, at: VirtualTime) -> ContextEvent {
    ContextEvent::new(
        sensor,
        ContextType::Presence,
        ContextValue::record([(
            "subject",
            ContextValue::Id(Guid::from_u128(0xBEEF_0000 + u128::from(subject))),
        )]),
        at,
    )
}

struct Row {
    group: &'static str,
    mode: &'static str,
    events: u64,
    rtt_us: f64,
    sustained_kevents_s: f64,
    ratio: f64,
}

/// A two-range federation with one cross-range presence subscription:
/// the smallest topology in which every event crosses the transport.
fn two_range_fed<T: Transport>(inner: T) -> (Federation<T>, Guid, Guid) {
    let mut fed: Federation<T> = Federation::with_transport(inner, 7);
    let sensor = Guid::from_u128(0x5E50);
    let app = Guid::from_u128(0xA990);
    for i in 0..2usize {
        let mut cs = ContextServer::new(
            Guid::from_u128(0xE130 + i as u128),
            format!("range-{i}"),
            plan(i),
        );
        if i == 1 {
            cs.register(
                Profile::builder(sensor, EntityKind::Device, "sensor-1")
                    .output(PortSpec::new("p", ContextType::Presence))
                    .build(),
                VirtualTime::ZERO,
            )
            .expect("fresh sensor");
        }
        fed.add_range(cs).expect("unique range");
    }
    fed.connect_full();
    let q = Query::builder(Guid::from_u128(0x100), app)
        .info(ContextType::Presence)
        .in_range("range-1")
        .mode(Mode::Subscribe)
        .build();
    fed.submit_from("range-0", &q, VirtualTime::ZERO)
        .expect("subscriber");
    (fed, sensor, app)
}

/// Drains deliveries, pumping once if the relay is still in flight.
fn settle<T: Transport>(fed: &mut Federation<T>, app: Guid, now: VirtualTime) -> usize {
    let mut got = fed.deliveries_for(app).len();
    if got == 0 {
        fed.pump(now).expect("pumps");
        got = fed.deliveries_for(app).len();
    }
    got
}

/// One relay row: `ROUND_TRIPS` single-event round trips, each timed
/// from ingest to drained delivery.
fn measure_relay<T: Transport>(mode: &'static str, inner: T) -> Row {
    let (mut fed, sensor, app) = two_range_fed(inner);
    let mut clock = 0u64;
    for _ in 0..WARMUP {
        clock += 1;
        let now = VirtualTime::from_micros(clock);
        fed.ingest_at("range-1", &presence(sensor, clock, now), now)
            .expect("warm-up ingests");
        settle(&mut fed, app, now);
    }

    let mut delivered = 0usize;
    let start = Instant::now();
    for _ in 0..ROUND_TRIPS {
        clock += 1;
        let now = VirtualTime::from_micros(clock);
        fed.ingest_at("range-1", &presence(sensor, clock, now), now)
            .expect("ingests");
        delivered += settle(&mut fed, app, now);
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(
        delivered as u64 >= ROUND_TRIPS,
        "{mode}: saw {delivered} of {ROUND_TRIPS} round trips"
    );

    Row {
        group: "relay",
        mode,
        events: ROUND_TRIPS,
        rtt_us: elapsed * 1e6 / ROUND_TRIPS as f64,
        sustained_kevents_s: 0.0,
        ratio: 0.0,
    }
}

/// One sustained row: `EVENTS` events in `BATCH`-sized ingests with
/// the delivery drain riding along, timed end to end.
fn measure_sustained<T: Transport>(mode: &'static str, inner: T) -> Row {
    let (mut fed, sensor, app) = two_range_fed(inner);
    let mut clock = 0u64;
    let batch_of = |n: u64, clock: &mut u64| -> Vec<ContextEvent> {
        (0..n)
            .map(|_| {
                *clock += 1;
                presence(sensor, *clock, VirtualTime::from_micros(*clock))
            })
            .collect()
    };
    let warmup = batch_of(WARMUP, &mut clock);
    fed.ingest_batch_at("range-1", &warmup, VirtualTime::from_micros(clock))
        .expect("warm-up ingests");
    settle(&mut fed, app, VirtualTime::from_micros(clock));

    let mut delivered = 0usize;
    let start = Instant::now();
    for _ in 0..EVENTS / BATCH {
        let batch = batch_of(BATCH, &mut clock);
        let now = VirtualTime::from_micros(clock);
        fed.ingest_batch_at("range-1", &batch, now)
            .expect("ingests");
        delivered += settle(&mut fed, app, now);
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(
        delivered as u64 >= EVENTS,
        "{mode}: subscriber saw {delivered} of {EVENTS} streamed events"
    );

    Row {
        group: "sustained",
        mode,
        events: EVENTS,
        rtt_us: 0.0,
        sustained_kevents_s: EVENTS as f64 / elapsed / 1e3,
        ratio: 0.0,
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn write_json(rows: &[Row]) {
    let body: Vec<String> = rows
        .iter()
        .map(|r| match r.group {
            "relay" => format!(
                "    {{\"group\": \"relay\", \"mode\": \"{}\", \"events\": {}, \
                 \"rtt_us\": {:.2}}}",
                r.mode, r.events, r.rtt_us
            ),
            "sustained" => format!(
                "    {{\"group\": \"sustained\", \"mode\": \"{}\", \"events\": {}, \
                 \"sustained_kevents_s\": {:.1}}}",
                r.mode, r.events, r.sustained_kevents_s
            ),
            _ => format!(
                "    {{\"group\": \"ratio\", \"mode\": \"{}\", \"ratio\": {:.2}}}",
                r.mode, r.ratio
            ),
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e13_network\",\n  \"unit\": \"us\",\n  \
         \"available_cores\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        available_cores(),
        body.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_network.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn print_table(rows: &[Row]) {
    println!(
        "\nE13: bytes on the wire, loopback sockets vs in-process ({} cores available)",
        available_cores()
    );
    println!(
        "{:>12} | {:>6} {:>8} {:>12} {:>21} {:>8}",
        "group", "mode", "events", "rtt", "sustained (kevents/s)", "ratio"
    );
    for r in rows {
        match r.group {
            "relay" => println!(
                "{:>12} | {:>6} {:>8} {:>9.2} us {:>21} {:>8}",
                r.group, r.mode, r.events, r.rtt_us, "", ""
            ),
            "sustained" => println!(
                "{:>12} | {:>6} {:>8} {:>12} {:>21.1} {:>8}",
                r.group, r.mode, r.events, "", r.sustained_kevents_s, ""
            ),
            _ => println!(
                "{:>12} | {:>6} {:>8} {:>12} {:>21} {:>7.2}x",
                r.group, r.mode, "", "", "", r.ratio
            ),
        }
    }
    println!();
}

fn bench_network(c: &mut Criterion) {
    let mut rows = vec![
        measure_relay("sim", SimNetwork::new()),
        measure_relay("tcp", TcpTransport::new()),
        measure_sustained("sim", SimNetwork::new()),
        measure_sustained("tcp", TcpTransport::new()),
    ];
    let rtt_ratio = rows[1].rtt_us / rows[0].rtt_us.max(f64::EPSILON);
    let tput_ratio = rows[2].sustained_kevents_s / rows[3].sustained_kevents_s.max(f64::EPSILON);
    rows.push(Row {
        group: "ratio",
        mode: "rtt_tcp_over_sim",
        events: 0,
        rtt_us: 0.0,
        sustained_kevents_s: 0.0,
        ratio: rtt_ratio,
    });
    rows.push(Row {
        group: "ratio",
        mode: "tput_sim_over_tcp",
        events: 0,
        rtt_us: 0.0,
        sustained_kevents_s: 0.0,
        ratio: tput_ratio,
    });
    print_table(&rows);
    write_json(&rows);

    // Steady-state probe: the raw acked send path over a socket pair,
    // no federation on top.
    let mut group = c.benchmark_group("e13_net");
    group.bench_function(BenchmarkId::new("send", "tcp"), |b| {
        let mut net = TcpTransport::new();
        let a = Guid::from_u128(0xA);
        let z = Guid::from_u128(0xB);
        net.add_node(a, "alpha").expect("node");
        net.add_node(z, "zeta").expect("node");
        net.connect_full();
        let mut n = 0u128;
        b.iter(|| {
            n += 1;
            let msg = Message::new(
                Guid::from_u128(0x1000 + n),
                a,
                z,
                MessageKind::Ping,
                vec![0xA5u8; 64],
            );
            net.send(msg).expect("routes");
            net.drain(z)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_network
}
criterion_main!(benches);
