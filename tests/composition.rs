//! Integration test: the Figure 3 composition model driven by the world
//! simulator — query resolution into a configuration, live event
//! propagation, subgraph reuse and teardown.

use sci::prelude::*;
use sci::sensors::mobility::{Leg, MovementPlan};

struct Rig {
    world: World,
    cs: ContextServer,
    ids: GuidGenerator,
}

fn rig() -> Rig {
    let plan = capa_level10();
    let mut ids = GuidGenerator::seeded(31);
    let mut world = World::new(plan.clone());
    let sensors = world.auto_door_sensors(&mut ids);

    let mut cs = ContextServer::new(ids.next_guid(), "level-ten", plan.clone());
    for (guid, door) in &sensors {
        cs.register(
            Profile::builder(*guid, EntityKind::Device, format!("doorSensor-{door}"))
                .output(PortSpec::new("presence", ContextType::Presence))
                .build(),
            VirtualTime::ZERO,
        )
        .unwrap();
    }
    let obj_loc = ids.next_guid();
    cs.register(
        Profile::builder(obj_loc, EntityKind::Software, "objLocationCE")
            .input(PortSpec::new("presence", ContextType::Presence))
            .output(PortSpec::new("location", ContextType::Location))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    let p = plan.clone();
    cs.register_logic(obj_loc, factory(move || ObjLocationLogic::new(p.clone())));
    let path_ce = ids.next_guid();
    cs.register(
        Profile::builder(path_ce, EntityKind::Software, "pathCE")
            .input(PortSpec::new("from", ContextType::Location))
            .input(PortSpec::new("to", ContextType::Location))
            .output(PortSpec::new("path", ContextType::Path))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    let p = plan;
    cs.register_logic(path_ce, factory(move || PathLogic::new(p.clone())));
    Rig { world, cs, ids }
}

fn path_query(ids: &mut GuidGenerator, app: Guid, from: Guid, to: Guid) -> Query {
    Query::builder(ids.next_guid(), app)
        .info_matching(
            ContextType::Path,
            vec![
                Predicate::eq("from", ContextValue::Id(from)),
                Predicate::eq("to", ContextValue::Id(to)),
            ],
        )
        .mode(Mode::Subscribe)
        .build()
}

fn run_world(rig: &mut Rig, seconds: u64) -> Vec<AppDelivery> {
    let dt = VirtualDuration::from_secs(2);
    let mut now = VirtualTime::ZERO;
    let mut out = Vec::new();
    for _ in 0..(seconds / 2) {
        now += dt;
        for event in rig.world.tick(now, dt).unwrap() {
            rig.cs.ingest(&event, now).unwrap();
        }
        out.extend(rig.cs.drain_outbox());
    }
    out
}

#[test]
fn world_driven_path_configuration() {
    let mut r = rig();
    let bob = r.ids.next_guid();
    let john = r.ids.next_guid();
    r.world
        .spawn_person(SimPerson::new(bob, "Bob", Coord::new(4.0, 1.0)).with_plan(
            MovementPlan::scripted([Leg::new("L10.01", VirtualDuration::from_secs(600))]),
        ))
        .unwrap();
    r.world
        .spawn_person(
            SimPerson::new(john, "John", Coord::new(4.0, 1.0)).with_plan(MovementPlan::scripted(
                // L10.03 is behind a sensed door; `bay` would be reached
                // through an open passage and thus stay invisible to the
                // door-sensor-based location pipeline.
                [Leg::new("L10.03", VirtualDuration::from_secs(600))],
            )),
        )
        .unwrap();

    let app = r.ids.next_guid();
    let q = path_query(&mut r.ids, app, bob, john);
    match r.cs.submit_query(&q, VirtualTime::ZERO).unwrap() {
        QueryAnswer::Subscribed { producers, .. } => assert_eq!(producers.len(), 1),
        other => panic!("unexpected {other:?}"),
    }
    // 1 pathCE + 2 objLocation instances.
    assert_eq!(r.cs.instance_count(), 3);

    let deliveries = run_world(&mut r, 120);
    let paths: Vec<&AppDelivery> = deliveries
        .iter()
        .filter(|d| d.app == app && d.event.topic == ContextType::Path)
        .collect();
    assert!(
        paths.len() >= 2,
        "every movement after both are located produces a fresh path; got {}",
        paths.len()
    );
    // The final path connects their final rooms.
    let last = paths.last().unwrap();
    let rooms: Vec<String> = last
        .event
        .payload
        .field("rooms")
        .and_then(ContextValue::as_list)
        .unwrap()
        .iter()
        .filter_map(|r| r.as_text().map(str::to_owned))
        .collect();
    assert_eq!(rooms.first().map(String::as_str), Some("L10.01"));
    assert_eq!(rooms.last().map(String::as_str), Some("L10.03"));
}

#[test]
fn identical_queries_share_instances_and_teardown_is_clean() {
    let mut r = rig();
    let bob = r.ids.next_guid();
    let john = r.ids.next_guid();
    let app1 = r.ids.next_guid();
    let app2 = r.ids.next_guid();

    let q1 = path_query(&mut r.ids, app1, bob, john);
    let q2 = path_query(&mut r.ids, app2, bob, john);
    r.cs.submit_query(&q1, VirtualTime::ZERO).unwrap();
    let three = r.cs.instance_count();
    r.cs.submit_query(&q2, VirtualTime::ZERO).unwrap();
    assert_eq!(r.cs.instance_count(), three, "reuse: no new instances");

    // Both apps receive the same updates.
    let door = r.cs.profiles().providers_of(&ContextType::Presence)[0].id();
    for (subject, room) in [(bob, "L10.01"), (john, "L10.02")] {
        let ev = ContextEvent::new(
            door,
            ContextType::Presence,
            ContextValue::record([
                ("subject", ContextValue::Id(subject)),
                ("to", ContextValue::place(room)),
            ]),
            VirtualTime::from_secs(1),
        );
        r.cs.ingest(&ev, VirtualTime::from_secs(1)).unwrap();
    }
    let deliveries = r.cs.drain_outbox();
    assert_eq!(deliveries.iter().filter(|d| d.app == app1).count(), 1);
    assert_eq!(deliveries.iter().filter(|d| d.app == app2).count(), 1);

    // Cancelling one keeps the other alive; cancelling both reclaims
    // every instance and subscription.
    r.cs.cancel_query(q1.id).unwrap();
    assert_eq!(r.cs.instance_count(), three);
    r.cs.cancel_query(q2.id).unwrap();
    assert_eq!(r.cs.instance_count(), 0);
    assert!(r.cs.mediator().bus().is_empty());
}

#[test]
fn different_subjects_build_disjoint_branches() {
    let mut r = rig();
    let (a, b, c) = (r.ids.next_guid(), r.ids.next_guid(), r.ids.next_guid());
    let app = r.ids.next_guid();
    let q1 = path_query(&mut r.ids, app, a, b);
    r.cs.submit_query(&q1, VirtualTime::ZERO).unwrap();
    assert_eq!(r.cs.instance_count(), 3);
    let q2 = path_query(&mut r.ids, app, a, c);
    r.cs.submit_query(&q2, VirtualTime::ZERO).unwrap();
    // Shares objLocation(a); adds objLocation(c) and pathCE(a,c).
    assert_eq!(r.cs.instance_count(), 5);
}

#[test]
fn reuse_ablation_changes_instance_growth() {
    // With reuse disabled (E8's OFF arm), instances grow linearly.
    let plan = capa_level10();
    let mut ids = GuidGenerator::seeded(77);
    let mut cs = ContextServer::new(ids.next_guid(), "level-ten", plan.clone());
    cs.set_reuse(false);
    let door = ids.next_guid();
    cs.register(
        Profile::builder(door, EntityKind::Device, "door")
            .output(PortSpec::new("presence", ContextType::Presence))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    let obj_loc = ids.next_guid();
    cs.register(
        Profile::builder(obj_loc, EntityKind::Software, "objLocationCE")
            .input(PortSpec::new("presence", ContextType::Presence))
            .output(PortSpec::new("location", ContextType::Location))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    let p = plan;
    cs.register_logic(obj_loc, factory(move || ObjLocationLogic::new(p.clone())));

    let bob = ids.next_guid();
    for i in 0..8u128 {
        let app = ids.next_guid();
        let q = Query::builder(ids.next_guid(), app)
            .info_matching(
                ContextType::Location,
                vec![Predicate::eq("subject", ContextValue::Id(bob))],
            )
            .mode(Mode::Subscribe)
            .build();
        cs.submit_query(&q, VirtualTime::ZERO).unwrap();
        assert_eq!(cs.instance_count(), (i + 1) as usize, "linear growth");
    }
}
