//! Integration test: the Figure 5 discovery sequence and the model of
//! mobility (Section 3.4) — entities arriving into and departing from a
//! range, detected by its sensors.

use sci::prelude::*;
use sci::sensors::mobility::{Leg, MovementPlan};

#[test]
fn figure5_registration_handshake() {
    let mut ids = GuidGenerator::seeded(55);
    let mut cs = ContextServer::new(ids.next_guid(), "level-ten", capa_level10());
    let mut rs = RangeService::deploy("level-ten", cs.id());

    struct Sensor {
        id: Guid,
    }
    impl RegisterInterface for Sensor {
        fn profile(&self) -> Profile {
            Profile::builder(self.id, EntityKind::Device, "sensor")
                .output(PortSpec::new("presence", ContextType::Presence))
                .build()
        }
    }
    impl ServiceInterface for Sensor {
        fn invoke(
            &mut self,
            _: &str,
            _: &[ContextValue],
            _: VirtualTime,
        ) -> SciResult<ContextValue> {
            Err(SciError::BadInvocation("no operations".into()))
        }
    }

    // 1. RS announces the range; 2. the CE registers; 3. it gets the
    // mediator endpoint and can publish.
    let sensor = Sensor {
        id: ids.next_guid(),
    };
    let mut handle =
        sci::core::entity_rt::start_ce(&sensor, &mut rs, &mut cs, VirtualTime::ZERO).unwrap();
    assert_eq!(handle.range_info().range, "level-ten");
    assert!(cs.registrar().is_registered(sensor.id));
    assert_eq!(rs.announcements(), 1);

    handle
        .publish(
            &mut cs,
            ContextType::Presence,
            ContextValue::record([("subject", ContextValue::Id(ids.next_guid()))]),
            VirtualTime::from_secs(1),
        )
        .unwrap();
    assert_eq!(cs.mediator().stats().published, 1);

    // Departure cleans everything up. (The published presence event
    // also auto-registered its subject — that is the Range Service doing
    // its job — so count only the sensor's own log entries.)
    cs.deregister(sensor.id, VirtualTime::from_secs(2)).unwrap();
    assert!(!cs.registrar().is_registered(sensor.id));
    assert!(cs.profiles().get(sensor.id).is_none());
    let sensor_entries = cs
        .registrar()
        .log()
        .iter()
        .filter(|e| match e {
            sci::core::registrar::RegistrarEvent::Arrived(d, _)
            | sci::core::registrar::RegistrarEvent::Departed(d, _) => d.id == sensor.id,
        })
        .count();
    assert_eq!(sensor_entries, 2);
}

#[test]
fn mobility_model_arrival_and_departure() {
    // A W-LAN cell covers the lobby. Walking in associates (arrival →
    // auto-registration); walking out of coverage disassociates
    // (departure → deregistration).
    let mut ids = GuidGenerator::seeded(56);
    let plan = capa_level10();
    let mut world = World::new(plan.clone());
    world.auto_door_sensors(&mut ids);
    world.add_base_station(BaseStation::new(
        ids.next_guid(),
        "bs-lobby",
        sci::location::Circle::new(Coord::new(4.0, 1.0), 4.0),
    ));

    let mut cs = ContextServer::new(ids.next_guid(), "level-ten", plan);
    let visitor = ids.next_guid();
    world
        .spawn_person(
            SimPerson::new(visitor, "Visitor", Coord::new(4.0, 1.0)).with_plan(
                MovementPlan::scripted([Leg::new("bay", VirtualDuration::from_secs(600))]),
            ),
        )
        .unwrap();

    let dt = VirtualDuration::from_secs(2);
    let mut now = VirtualTime::ZERO;
    let mut was_registered = false;
    let mut departed = false;
    for _ in 0..60 {
        now += dt;
        for event in world.tick(now, dt).unwrap() {
            cs.ingest(&event, now).unwrap();
        }
        if cs.registrar().is_registered(visitor) {
            was_registered = true;
        } else if was_registered {
            departed = true;
        }
    }
    assert!(was_registered, "association auto-registered the visitor");
    assert!(departed, "leaving the cell deregistered them");
    // The log interleaves arrivals and departures: the visitor left the
    // radio cell (departure) and was later re-sensed by a door sensor
    // (re-arrival) — both transitions must appear, arrival first.
    let mut first_arrival = None;
    let mut first_departure = None;
    for (i, e) in cs.registrar().log().iter().enumerate() {
        match e {
            sci::core::registrar::RegistrarEvent::Arrived(d, _) if d.id == visitor => {
                first_arrival.get_or_insert(i);
            }
            sci::core::registrar::RegistrarEvent::Departed(d, _) if d.id == visitor => {
                first_departure.get_or_insert(i);
            }
            _ => {}
        }
    }
    assert!(first_arrival.unwrap() < first_departure.unwrap());
}

#[test]
fn registration_throughput_scales() {
    // E2's correctness side: thousands of entities register and appear
    // in the registrar and profile index.
    let mut ids = GuidGenerator::seeded(57);
    let mut cs = ContextServer::new(ids.next_guid(), "hall", capa_level10());
    let n = 2_000;
    for i in 0..n {
        let id = ids.next_guid();
        cs.register(
            Profile::builder(id, EntityKind::Device, format!("sensor-{i}"))
                .output(PortSpec::new("presence", ContextType::Presence))
                .build(),
            VirtualTime::from_micros(i),
        )
        .unwrap();
    }
    assert_eq!(cs.registrar().len(), n as usize);
    assert_eq!(
        cs.profiles().providers_of(&ContextType::Presence).len(),
        n as usize
    );
}
