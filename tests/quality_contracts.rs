//! Integration test: quality-of-context contracts (paper §6, open issue
//! 2: "contracts on quality of the context information") — a freshness
//! bound on subscribed context, enforced per delivery.

use sci::prelude::*;

fn rig() -> (ContextServer, GuidGenerator, Guid) {
    let mut ids = GuidGenerator::seeded(91);
    let mut cs = ContextServer::new(ids.next_guid(), "lab", capa_level10());
    let sensor = ids.next_guid();
    cs.register(
        Profile::builder(sensor, EntityKind::Device, "thermo")
            .output(PortSpec::new("t", ContextType::Temperature))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    (cs, ids, sensor)
}

fn reading(sensor: Guid, produced_at: VirtualTime) -> ContextEvent {
    ContextEvent::new(
        sensor,
        ContextType::Temperature,
        ContextValue::record([("celsius", ContextValue::Float(21.0))]),
        produced_at,
    )
}

#[test]
fn stale_deliveries_are_dropped() {
    let (mut cs, mut ids, sensor) = rig();
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Temperature)
        .fresh_within(VirtualDuration::from_secs(5))
        .mode(Mode::Subscribe)
        .build();
    cs.submit_query(&q, VirtualTime::ZERO).unwrap();

    // A fresh reading (produced now) is delivered.
    let t = VirtualTime::from_secs(10);
    cs.ingest(&reading(sensor, t), t).unwrap();
    assert_eq!(cs.drain_outbox().len(), 1);

    // A reading produced 60 s ago (delayed in some buffer) violates the
    // 5 s contract and is dropped.
    let now = VirtualTime::from_secs(70);
    cs.ingest(&reading(sensor, VirtualTime::from_secs(10)), now)
        .unwrap();
    assert!(cs.drain_outbox().is_empty());
    assert_eq!(cs.stale_drops(), 1);

    // A borderline reading (exactly at the bound) is delivered.
    let now = VirtualTime::from_secs(80);
    cs.ingest(&reading(sensor, VirtualTime::from_secs(75)), now)
        .unwrap();
    assert_eq!(cs.drain_outbox().len(), 1);
}

#[test]
fn uncontracted_subscriptions_receive_everything() {
    let (mut cs, mut ids, sensor) = rig();
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Temperature)
        .mode(Mode::Subscribe)
        .build();
    cs.submit_query(&q, VirtualTime::ZERO).unwrap();
    let now = VirtualTime::from_secs(1_000);
    cs.ingest(&reading(sensor, VirtualTime::ZERO), now).unwrap();
    assert_eq!(cs.drain_outbox().len(), 1, "no contract, no drop");
    assert_eq!(cs.stale_drops(), 0);
}

#[test]
fn contract_does_not_leak_into_provider_matching() {
    // The reserved qoc- constraint must not be treated as a provider
    // attribute (the thermometer has no `qoc-max-age-us` attribute).
    let (mut cs, mut ids, _sensor) = rig();
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Temperature)
        .fresh_within(VirtualDuration::from_secs(1))
        .mode(Mode::Profile)
        .build();
    match cs.submit_query(&q, VirtualTime::ZERO).unwrap() {
        QueryAnswer::Profiles(ps) => assert_eq!(ps.len(), 1),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn contracts_compose_with_one_time_mode() {
    let (mut cs, mut ids, sensor) = rig();
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Temperature)
        .fresh_within(VirtualDuration::from_secs(5))
        .mode(Mode::SubscribeOnce)
        .build();
    cs.submit_query(&q, VirtualTime::ZERO).unwrap();
    assert_eq!(cs.configuration_count(), 1);

    // The only event that arrives is stale: dropped, and the one-time
    // configuration is reclaimed (the subscription was consumed).
    let now = VirtualTime::from_secs(100);
    cs.ingest(&reading(sensor, VirtualTime::ZERO), now).unwrap();
    assert!(cs.drain_outbox().is_empty());
    assert_eq!(cs.stale_drops(), 1);
    assert_eq!(cs.configuration_count(), 0);
}
