//! Integration test: the complete CAPA story of the paper's Section 5 /
//! Figure 7, across world simulator, sensors, two federated Context
//! Servers and the CAPA application library.

use std::collections::HashMap;

use sci::prelude::*;
use sci::sensors::mobility::{Leg, MovementPlan};
use sci::sensors::printer::PrintJob;
use sci::sensors::workload::capa_world;

fn lobby_plan() -> FloorPlan {
    FloorPlan::builder("campus")
        .zone("tower")
        .zone("lift-lobby")
        .room("lobby", Rect::with_size(Coord::new(0.0, 0.0), 8.0, 2.0))
        .build()
        .unwrap()
}

fn level10_plan() -> FloorPlan {
    FloorPlan::builder("campus")
        .zone("tower")
        .zone("level-ten")
        .room("corridor", Rect::with_size(Coord::new(0.0, 2.0), 32.0, 2.0))
        .room("L10.01", Rect::with_size(Coord::new(0.0, 4.0), 8.0, 4.0))
        .room("L10.02", Rect::with_size(Coord::new(8.0, 4.0), 8.0, 4.0))
        .room("L10.03", Rect::with_size(Coord::new(16.0, 4.0), 8.0, 4.0))
        .room("bay", Rect::with_size(Coord::new(24.0, 4.0), 8.0, 4.0))
        .door("corridor", "L10.01", "door-L10.01")
        .door("corridor", "L10.02", "door-L10.02")
        .door("corridor", "L10.03", "door-L10.03")
        .open("corridor", "bay")
        .build()
        .unwrap()
}

struct Scenario {
    world: World,
    fed: Federation,
    ids: GuidGenerator,
    bob: Guid,
    john: Guid,
    bs_id: Guid,
    printer_names: HashMap<Guid, &'static str>,
}

fn build_scenario() -> Scenario {
    let mut ids = GuidGenerator::seeded(4242);
    let bob = ids.next_guid();
    let john = ids.next_guid();

    let (mut world, printer_guids) = capa_world(&mut ids, &[bob]);
    let sensors = world.auto_door_sensors(&mut ids);
    let bs = BaseStation::new(
        ids.next_guid(),
        "bs-lobby",
        sci::location::Circle::new(Coord::new(4.0, 1.0), 6.0),
    );
    let bs_id = bs.id();
    world.add_base_station(bs);
    let printer_names: HashMap<Guid, &'static str> = printer_guids
        .iter()
        .copied()
        .zip(["P1", "P2", "P3", "P4"])
        .collect();

    let mut fed = Federation::new(5);
    let lobby_cs = ContextServer::new(ids.next_guid(), "lobby", lobby_plan());
    let mut l10 = ContextServer::new(ids.next_guid(), "level-ten", level10_plan());
    for (guid, door) in &sensors {
        l10.register(
            Profile::builder(*guid, EntityKind::Device, format!("doorSensor-{door}"))
                .output(PortSpec::new("presence", ContextType::Presence))
                .build(),
            VirtualTime::ZERO,
        )
        .unwrap();
    }
    for (&guid, &name) in &printer_names {
        let p = world.printer(name).unwrap();
        l10.register(
            Profile::builder(guid, EntityKind::Device, name)
                .output(PortSpec::new("status", ContextType::PrinterStatus))
                .attribute("service", ContextValue::text("printing"))
                .attribute("room", ContextValue::place(p.room()))
                .attribute("queue", ContextValue::Int(p.queue_len() as i64))
                .attribute("paper", ContextValue::Bool(p.has_paper()))
                .attribute(
                    "restricted",
                    ContextValue::Bool(matches!(p.access(), sci::sensors::Access::Restricted(_))),
                )
                .build(),
            VirtualTime::ZERO,
        )
        .unwrap();
        l10.advertise(Advertisement::new(guid, "printing")).unwrap();
    }
    fed.add_range(lobby_cs).unwrap();
    fed.add_range(l10).unwrap();
    fed.connect_full();

    Scenario {
        world,
        fed,
        ids,
        bob,
        john,
        bs_id,
        printer_names,
    }
}

#[test]
fn bob_prints_on_p1_and_john_on_p4() {
    let mut s = build_scenario();

    // Bob queues offline and wants the closest printer at L10.01.
    let bob_app = s.ids.next_guid();
    let mut capa_bob = CapaApp::new(s.bob, bob_app);
    capa_bob.queue_document("paper.pdf", 6);
    capa_bob.print_when_at("L10.01");

    // John is already in his office L10.02.
    let door_l1002 = s
        .world
        .door_sensors()
        .iter()
        .find(|d| d.door() == "door-L10.02")
        .unwrap()
        .id();
    let john_arrival = ContextEvent::new(
        door_l1002,
        ContextType::Presence,
        ContextValue::record([
            ("subject", ContextValue::Id(s.john)),
            ("from", ContextValue::place("corridor")),
            ("to", ContextValue::place("L10.02")),
        ]),
        VirtualTime::ZERO,
    );
    s.fed
        .ingest_at("level-ten", &john_arrival, VirtualTime::ZERO)
        .unwrap();

    // Bob arrives in the lobby and walks to his office.
    s.world
        .spawn_person(
            SimPerson::new(s.bob, "Bob", Coord::new(4.0, 1.0)).with_plan(MovementPlan::scripted([
                Leg::new("L10.01", VirtualDuration::from_secs(300)),
            ])),
        )
        .unwrap();

    let dt = VirtualDuration::from_secs(2);
    let mut now = VirtualTime::ZERO;
    let mut connected = false;
    let mut bob_printed_on = None;

    for _ in 0..120 {
        now += dt;
        for event in s.world.tick(now, dt).unwrap() {
            let range = if event.source == s.bs_id {
                "lobby"
            } else {
                "level-ten"
            };
            s.fed.ingest_at(range, &event, now).unwrap();
            if !connected && event.source == s.bs_id && event.subject() == Some(s.bob) {
                connected = true;
                let qid = s.ids.next_guid();
                let fed = &mut s.fed;
                capa_bob
                    .on_connected(qid, |q| Ok(fed.submit_from("lobby", q, now)?.answer))
                    .unwrap();
                // The deferred query crossed to level-ten.
                assert_eq!(fed.server("level-ten").unwrap().deferred_count(), 1);
            }
        }
        for (_, answer) in s.fed.answers_for(bob_app) {
            capa_bob.absorb_answer(answer).unwrap();
            let (printer, docs) = capa_bob.release_jobs().unwrap();
            bob_printed_on = Some(s.printer_names[&printer]);
            for doc in docs {
                let job = PrintJob::new(s.ids.next_guid(), s.bob, doc.name, doc.pages);
                let status = s
                    .world
                    .printer_mut(s.printer_names[&printer])
                    .unwrap()
                    .submit(job, now);
                s.fed.ingest_at("level-ten", &status, now).unwrap();
            }
        }
        if bob_printed_on.is_some() {
            break;
        }
    }
    assert!(connected, "the lobby base station must detect Bob");
    assert_eq!(bob_printed_on, Some("P1"), "paper: P1 is closest to Bob");

    // John: closest printer with no queue -> P4 (P1 busy, P2 out of
    // paper, P3 locked).
    let john_app = s.ids.next_guid();
    let mut capa_john = CapaApp::new(s.john, john_app);
    capa_john.queue_document("lecture.pdf", 4);
    capa_john.print_now();
    now += dt;
    let qid = s.ids.next_guid();
    let fed = &mut s.fed;
    capa_john
        .on_connected(qid, |q| Ok(fed.submit_from("level-ten", q, now)?.answer))
        .unwrap();
    let (printer, _) = capa_john.release_jobs().unwrap();
    assert_eq!(s.printer_names[&printer], "P4", "paper: P4 for John");
}

#[test]
fn bob_gets_p3_if_p1_is_jammed_because_he_holds_the_key() {
    // Variation: P1 runs out of paper before Bob arrives. P3 is behind a
    // locked door, but Bob has access — so the restricted filter must
    // not apply to him... in the paper's model access is per-user; CAPA
    // encodes it conservatively (restricted printers are skipped), so
    // the expected selection falls to P4, the nearest unrestricted
    // printer with paper.
    let mut s = build_scenario();
    let now = VirtualTime::from_secs(1);
    let jam = s.world.printer_mut("P1").unwrap().jam_out_of_paper(now);
    s.fed.ingest_at("level-ten", &jam, now).unwrap();

    // Bob appears directly at his office door (compressed scenario).
    let door = s
        .world
        .door_sensors()
        .iter()
        .find(|d| d.door() == "door-L10.01")
        .unwrap()
        .id();
    let arrival = ContextEvent::new(
        door,
        ContextType::Presence,
        ContextValue::record([
            ("subject", ContextValue::Id(s.bob)),
            ("from", ContextValue::place("corridor")),
            ("to", ContextValue::place("L10.01")),
        ]),
        VirtualTime::from_secs(2),
    );

    let bob_app = s.ids.next_guid();
    let mut capa = CapaApp::new(s.bob, bob_app);
    capa.queue_document("doc.pdf", 1);
    capa.print_when_at("L10.01");
    let qid = s.ids.next_guid();
    let fed = &mut s.fed;
    capa.on_connected(qid, |q| {
        Ok(fed
            .submit_from("level-ten", q, VirtualTime::from_secs(2))?
            .answer)
    })
    .unwrap();
    s.fed
        .ingest_at("level-ten", &arrival, VirtualTime::from_secs(2))
        .unwrap();
    let answers = s.fed.answers_for(bob_app);
    assert_eq!(answers.len(), 1);
    capa.absorb_answer(answers.into_iter().next().unwrap().1)
        .unwrap();
    let (printer, _) = capa.release_jobs().unwrap();
    assert_eq!(s.printer_names[&printer], "P4");
}
