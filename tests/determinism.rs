//! Integration test: end-to-end determinism and delivery-order
//! guarantees — the property that makes every experiment in this
//! repository exactly reproducible.

use std::collections::HashMap;

use sci::prelude::*;
use sci::sensors::workload::{office_floor, populate, Population};

fn run_deployment(seed: u64) -> (Vec<String>, usize) {
    let mut ids = GuidGenerator::seeded(seed);
    let config = Population {
        people: 12,
        printers: 1,
        thermometers: 2,
        dwell: VirtualDuration::from_secs(10),
        seed,
    };
    let (world, people) = populate(office_floor(6), &config, &mut ids).unwrap();
    let cs = ContextServer::new(ids.next_guid(), "floor", world.plan().clone());
    let mut dep = Deployment::new(world, cs);
    dep.register_world(VirtualTime::ZERO).unwrap();
    dep.install_standard_logic(&mut ids, VirtualTime::ZERO)
        .unwrap();

    let app = ids.next_guid();
    // Subscribe to occupancy and to one person's location.
    dep.cs
        .submit_query(
            &Query::builder(ids.next_guid(), app)
                .info(ContextType::Occupancy)
                .mode(Mode::Subscribe)
                .build(),
            VirtualTime::ZERO,
        )
        .unwrap();
    dep.cs
        .submit_query(
            &Query::builder(ids.next_guid(), app)
                .info_matching(
                    ContextType::Location,
                    vec![Predicate::eq("subject", ContextValue::Id(people[0]))],
                )
                .mode(Mode::Subscribe)
                .build(),
            VirtualTime::ZERO,
        )
        .unwrap();

    let deliveries = dep.run(VirtualDuration::from_secs(2), 200).unwrap();
    let log: Vec<String> = deliveries
        .iter()
        .map(|d| format!("{} {} {}", d.query, d.event.topic, d.event.payload))
        .collect();
    (log, deliveries.len())
}

#[test]
fn identical_seeds_produce_identical_delivery_logs() {
    let (a, na) = run_deployment(77);
    let (b, nb) = run_deployment(77);
    assert_eq!(na, nb);
    assert_eq!(a, b, "full middleware stack is deterministic");
    assert!(na > 10, "the scenario actually produced traffic ({na})");

    let (c, _) = run_deployment(78);
    assert_ne!(a, c, "different seeds genuinely differ");
}

#[test]
fn per_source_sequence_numbers_are_monotone_at_consumers() {
    let mut ids = GuidGenerator::seeded(99);
    let config = Population {
        people: 8,
        printers: 0,
        thermometers: 3,
        dwell: VirtualDuration::from_secs(5),
        seed: 99,
    };
    let (world, _) = populate(office_floor(4), &config, &mut ids).unwrap();
    let cs = ContextServer::new(ids.next_guid(), "floor", world.plan().clone());
    let mut dep = Deployment::new(world, cs);
    dep.register_world(VirtualTime::ZERO).unwrap();
    dep.install_standard_logic(&mut ids, VirtualTime::ZERO)
        .unwrap();

    let app = ids.next_guid();
    for ty in [ContextType::Occupancy, ContextType::Temperature] {
        dep.cs
            .submit_query(
                &Query::builder(ids.next_guid(), app)
                    .info(ty)
                    .mode(Mode::Subscribe)
                    .build(),
                VirtualTime::ZERO,
            )
            .unwrap();
    }

    let deliveries = dep.run(VirtualDuration::from_secs(2), 150).unwrap();
    assert!(!deliveries.is_empty());
    let mut last_seq: HashMap<Guid, u64> = HashMap::new();
    let mut last_time: HashMap<Guid, VirtualTime> = HashMap::new();
    for d in &deliveries {
        if let Some(&prev) = last_seq.get(&d.event.source) {
            assert!(
                d.event.seq.0 > prev,
                "per-source sequence must strictly increase"
            );
        }
        if let Some(&prev) = last_time.get(&d.event.source) {
            assert!(d.event.timestamp >= prev, "timestamps never regress");
        }
        last_seq.insert(d.event.source, d.event.seq.0);
        last_time.insert(d.event.source, d.event.timestamp);
    }
}
