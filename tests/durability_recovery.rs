//! Crash-matrix durability tests (ISSUE 9 centrepiece).
//!
//! Two scenarios:
//!
//! 1. **Kill-at-any-byte-prefix.** A Context Server records a rich
//!    command history through its write-ahead log, then we simulate a
//!    crash at every chosen byte offset of the on-disk log: truncate
//!    the segment files to that prefix, recover, and demand that the
//!    recovered durable state equals an uninterrupted oracle that
//!    applied exactly the commands the truncated log still holds — or
//!    that the torn suffix is cleanly reported. The crash offsets are
//!    overridable through `SCI_CRASH_POINTS` (mirroring
//!    `SCI_CHAOS_SEEDS`): unset samples ~96 evenly spaced offsets,
//!    `all` sweeps every byte, an integer `N` samples `N` offsets, and
//!    a comma list names explicit offsets.
//!
//! 2. **Exactly-once redelivery.** A durable range inside a
//!    [`ParallelFederation`] is killed and recovered from its WAL; the
//!    replayed outbox re-offers every delivery since the last
//!    snapshot, and the `(origin, seq)` filter squashes the re-offers
//!    so each application sees each event exactly once across the
//!    crash — including deliveries that were already relayed
//!    cross-range before the range died.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use sci::core::durability;
use sci::core::logic::LogicFactory;
use sci::prelude::*;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory per call (pid + counter), so parallel
/// test binaries and repeated runs never collide.
fn tmpdir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sci-durability-{tag}-{}-{n}", std::process::id()))
}

fn t(secs: u64) -> VirtualTime {
    VirtualTime::from_secs(secs)
}

fn presence(sensor: Guid, subject: u128, at: VirtualTime) -> ContextEvent {
    ContextEvent::new(
        sensor,
        ContextType::Presence,
        ContextValue::record([
            ("subject", ContextValue::Id(Guid::from_u128(subject))),
            ("to", ContextValue::place("L10.01")),
        ]),
        at,
    )
}

// ---------------------------------------------------------------------------
// Scenario 1: kill-at-any-byte-prefix equals the uninterrupted oracle.
// ---------------------------------------------------------------------------

const RANGE_ID: u128 = 0xD00D;
const DERIVER: u128 = 0xDE01;
const DOOR: u128 = 0xD001;
const BADGE: u128 = 0xBA06;
const APP_A: u128 = 0xAAA1;
const APP_B: u128 = 0xAAA2;

/// A deterministic all-durable command history exercising every
/// durable state family: settings, equivalences, profiles, logic
/// classes, advertisements, live subscriptions, a deferred query that
/// fires mid-script, single and batched ingests, heartbeats, history
/// expiry, cancellation and deregistration. Regenerated per use —
/// [`RangeCommand`] is deliberately not `Clone` (it can carry logic
/// factories).
fn durable_script() -> Vec<(RangeCommand, VirtualTime)> {
    let deriver = Guid::from_u128(DERIVER);
    let door = Guid::from_u128(DOOR);
    let badge = Guid::from_u128(BADGE);
    let app_a = Guid::from_u128(APP_A);
    let app_b = Guid::from_u128(APP_B);

    let mut script: Vec<(RangeCommand, VirtualTime)> = vec![
        (RangeCommand::SetReuse(true), t(0)),
        (RangeCommand::SetAutoRegisterPeople(true), t(0)),
        (RangeCommand::SetPlanVerification(false), t(0)),
        (
            RangeCommand::DeclareEquivalence(
                ContextType::Presence,
                ContextType::custom("badge-sighting"),
            ),
            t(0),
        ),
        (
            RangeCommand::Register(Box::new(
                Profile::builder(door, EntityKind::Device, "door-L10.01")
                    .output(PortSpec::new("presence", ContextType::Presence))
                    .attribute("max-silence-us", ContextValue::Int(15_000_000))
                    .build(),
            )),
            t(1),
        ),
        (
            RangeCommand::Register(Box::new(
                Profile::builder(badge, EntityKind::Device, "badge-reader")
                    .output(PortSpec::new(
                        "sight",
                        ContextType::custom("badge-sighting"),
                    ))
                    .build(),
            )),
            t(1),
        ),
        (
            RangeCommand::RegisterLogic(deriver, factory(OccupancyLogic::new)),
            t(1),
        ),
        (
            RangeCommand::Advertise(Box::new(Advertisement::new(door, "presence-feed"))),
            t(2),
        ),
        (
            RangeCommand::Submit(Box::new(
                Query::builder(Guid::from_u128(0x100), app_a)
                    .info(ContextType::Presence)
                    .mode(Mode::Subscribe)
                    .build(),
            )),
            t(2),
        ),
        (
            RangeCommand::Submit(Box::new(
                Query::builder(Guid::from_u128(0x101), app_b)
                    .info(ContextType::Presence)
                    .mode(Mode::Subscribe)
                    .build(),
            )),
            t(2),
        ),
        (
            RangeCommand::Submit(Box::new(
                Query::builder(Guid::from_u128(0x102), app_a)
                    .info(ContextType::Presence)
                    .at(t(8))
                    .build(),
            )),
            t(3),
        ),
    ];
    for k in 0..6u64 {
        let ev = presence(door, 0x1000 + u128::from(k), t(3 + k));
        script.push((RangeCommand::Ingest(ev), t(3 + k)));
    }
    script.push((RangeCommand::Heartbeat(door), t(6)));
    script.push((
        RangeCommand::IngestBatch(vec![
            presence(door, 0x2000, t(9)),
            presence(door, 0x2001, t(9)),
        ]),
        t(9),
    ));
    script.push((RangeCommand::PollTimers, t(9)));
    script.push((RangeCommand::ExpireHistory, t(10)));
    script.push((RangeCommand::Cancel(Guid::from_u128(0x101)), t(10)));
    script.push((RangeCommand::Deregister(badge), t(11)));
    for k in 0..4u64 {
        let ev = presence(door, 0x3000 + u128::from(k), t(12 + k));
        script.push((RangeCommand::Ingest(ev), t(12 + k)));
    }
    script.push((RangeCommand::PollTimers, t(16)));
    script
}

fn logic_resolver() -> HashMap<Guid, LogicFactory> {
    let mut logic: HashMap<Guid, LogicFactory> = HashMap::new();
    logic.insert(Guid::from_u128(DERIVER), factory(OccupancyLogic::new));
    logic
}

/// The oracle: a fresh (WAL-free) server that applied exactly the
/// first `k` script commands without interruption.
fn oracle_digest(k: usize) -> String {
    let mut cs = ContextServer::new(Guid::from_u128(RANGE_ID), "durable-range", capa_level10());
    for (cmd, now) in durable_script().into_iter().take(k) {
        let _ = cs.handle(cmd, now);
    }
    durable_digest(&cs)
}

/// Sorted `(name, len)` of the segment files in a WAL directory.
fn segment_files(dir: &Path) -> Vec<(String, u64)> {
    let mut segs: Vec<(String, u64)> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".seg"))
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                e.metadata().unwrap().len(),
            )
        })
        .collect();
    segs.sort();
    segs
}

/// Stages a crash image: snapshots are copied intact (they are written
/// atomically via rename), and the concatenated segment stream is cut
/// at byte offset `cut` — the straddled segment is truncated, later
/// segments never made it to disk.
fn stage_crash(src: &Path, dst: &Path, cut: u64) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap().filter_map(|e| e.ok()) {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".snap") {
            std::fs::copy(entry.path(), dst.join(&name)).unwrap();
        }
    }
    let mut remaining = cut;
    for (name, len) in segment_files(src) {
        if remaining == 0 {
            break;
        }
        let take = remaining.min(len) as usize;
        let bytes = std::fs::read(src.join(&name)).unwrap();
        std::fs::write(dst.join(&name), &bytes[..take]).unwrap();
        remaining -= take as u64;
    }
}

/// `n` evenly spaced offsets across `[0, total]`, endpoints included.
fn spaced(total: u64, n: u64) -> Vec<u64> {
    if total == 0 {
        return vec![0];
    }
    let n = n.clamp(2, total + 1);
    let mut pts: Vec<u64> = (0..n).map(|i| i * total / (n - 1)).collect();
    pts.dedup();
    pts
}

/// Crash offsets under test. `SCI_CRASH_POINTS` mirrors
/// `SCI_CHAOS_SEEDS`: unset → ~96 spaced offsets, `all` → every byte,
/// an integer → that many spaced offsets, a comma list → explicit
/// offsets (clamped to the log size).
fn crash_points(total: u64) -> Vec<u64> {
    let mut pts = match std::env::var("SCI_CRASH_POINTS") {
        Ok(spec) if spec.trim().eq_ignore_ascii_case("all") => (0..=total).collect(),
        Ok(spec) if spec.contains(',') => spec
            .split(',')
            .filter_map(|s| s.trim().parse::<u64>().ok())
            .map(|c| c.min(total))
            .collect(),
        Ok(spec) => spaced(total, spec.trim().parse::<u64>().unwrap_or(96)),
        Err(_) => spaced(total, 96),
    };
    // Always include a guaranteed-torn offset and both endpoints.
    pts.push(total.saturating_sub(1));
    pts.push(0);
    pts.push(total);
    pts.sort_unstable();
    pts.dedup();
    pts
}

#[test]
fn truncation_at_any_byte_prefix_recovers_the_oracle_state() {
    let record_dir = tmpdir("record");
    let config = DurabilityConfig {
        dir: record_dir.clone(),
        fsync: FsyncPolicy::Always,
        segment_bytes: 2048,
        snapshot_every: 9,
    };

    // Recording run: every durable command goes through the WAL; small
    // segments force rotation, the snapshot cadence forces snapshots
    // and segment GC mid-history.
    let script = durable_script();
    let n = script.len();
    {
        let mut cs = ContextServer::new(Guid::from_u128(RANGE_ID), "durable-range", capa_level10());
        durability::attach(&mut cs, &config, VirtualTime::ZERO).unwrap();
        for (i, (cmd, now)) in script.into_iter().enumerate() {
            let kind = cmd.kind();
            cs.handle(cmd, now)
                .unwrap_or_else(|e| panic!("script command {i} ({kind}) failed: {e}"));
        }
        cs.sync_wal().unwrap();
    }

    let total: u64 = segment_files(&record_dir).iter().map(|(_, len)| len).sum();
    assert!(total > 0, "recording run produced no log bytes");
    let logic = logic_resolver();

    let mut prev_k = 0u64;
    let mut torn_seen = false;
    for cut in crash_points(total) {
        let scratch = tmpdir("cut");
        stage_crash(&record_dir, &scratch, cut);

        let crash_config = DurabilityConfig {
            dir: scratch.clone(),
            ..config.clone()
        };
        let (recovered, report) = durability::recover(
            Guid::from_u128(RANGE_ID),
            "durable-range",
            capa_level10(),
            Registry::new(),
            &crash_config,
            &logic,
        )
        .unwrap_or_else(|e| panic!("recovery failed at cut {cut}/{total}: {e}"));

        // Commands durably recovered: snapshot floor plus replayed log
        // suffix. Torn tails may only appear for genuine truncations,
        // and recovered history never shrinks as the cut grows.
        let k = report.snapshot_applied.unwrap_or(0) + report.replayed as u64;
        assert_eq!(
            report.replay_errors, 0,
            "cut {cut}/{total}: replay errors {report:?}"
        );
        if report.torn_bytes > 0 {
            torn_seen = true;
            assert!(
                cut < total,
                "cut {cut}/{total}: intact log reported torn: {report:?}"
            );
        }
        assert!(
            k >= prev_k,
            "cut {cut}/{total}: recovered history shrank ({k} < {prev_k})"
        );
        prev_k = k;
        if cut == total {
            assert_eq!(k, n as u64, "full log must recover the whole history");
            assert_eq!(report.torn_bytes, 0, "full log must not report torn bytes");
            assert!(report.torn_detail.is_none());
        }

        assert_eq!(
            durable_digest(&recovered),
            oracle_digest(k as usize),
            "cut {cut}/{total}: recovered state diverges from the oracle at K={k} ({report:?})"
        );
        let _ = std::fs::remove_dir_all(&scratch);
    }
    assert!(torn_seen, "the crash matrix never exercised a torn tail");
    let _ = std::fs::remove_dir_all(&record_dir);
}

// ---------------------------------------------------------------------------
// Scenario 2: federation kill/recover with exactly-once redelivery.
// ---------------------------------------------------------------------------

fn fed_plan(i: usize) -> FloorPlan {
    FloorPlan::builder("campus")
        .zone(format!("wing-{i}"))
        .room(
            format!("hall-{i}"),
            Rect::with_size(Coord::new(0.0, 0.0), 20.0, 10.0),
        )
        .build()
        .unwrap()
}

fn delivery_keys(deliveries: Vec<AppDelivery>) -> Vec<String> {
    let mut keys: Vec<String> = deliveries.iter().map(|d| format!("{d:?}")).collect();
    keys.sort_unstable();
    keys
}

#[test]
fn killed_range_recovers_from_wal_and_redelivers_exactly_once() {
    let dir = tmpdir("fed");
    let config = DurabilityConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::Always,
        segment_bytes: 64 * 1024,
        // No mid-run snapshot: replay regenerates the entire outbox, so
        // every pre-crash delivery is re-offered and must be squashed.
        snapshot_every: 1 << 20,
    };

    let a_id = Guid::from_u128(0xA11CE);
    let sensor = Guid::from_u128(0x5E75);
    let mut cs_a = ContextServer::new(a_id, "range-a", fed_plan(0));
    cs_a.register(
        Profile::builder(sensor, EntityKind::Device, "sensor-a")
            .output(PortSpec::new("presence", ContextType::Presence))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    durability::attach(&mut cs_a, &config, VirtualTime::ZERO).unwrap();

    let mut fed = ParallelFederation::new(17);
    fed.add_range(cs_a).unwrap();
    fed.add_range(ContextServer::new(
        Guid::from_u128(0xB0B),
        "range-b",
        fed_plan(1),
    ))
    .unwrap();
    fed.connect_full();

    // One cross-range subscriber homed at range-b, one local at range-a.
    let remote_app = Guid::from_u128(0xA99);
    let local_app = Guid::from_u128(0xA88);
    let fa = fed
        .submit_from(
            "range-b",
            &Query::builder(Guid::from_u128(0x200), remote_app)
                .info(ContextType::Presence)
                .in_range("range-a")
                .mode(Mode::Subscribe)
                .build(),
            t(0),
        )
        .unwrap();
    assert!(
        matches!(fa.answer, QueryAnswer::Subscribed { .. }),
        "{fa:?}"
    );
    let fa = fed
        .submit_from(
            "range-a",
            &Query::builder(Guid::from_u128(0x201), local_app)
                .info(ContextType::Presence)
                .mode(Mode::Subscribe)
                .build(),
            t(0),
        )
        .unwrap();
    assert!(
        matches!(fa.answer, QueryAnswer::Subscribed { .. }),
        "{fa:?}"
    );

    // Wave 1: delivered and consumed before the crash.
    for k in 0..4u64 {
        let ev = presence(sensor, 0x1000 + u128::from(k), t(1 + k));
        fed.ingest_at("range-a", &ev, t(1 + k)).unwrap();
    }
    fed.sync(t(5)).unwrap();
    assert_eq!(delivery_keys(fed.deliveries_for(remote_app)).len(), 4);
    assert_eq!(delivery_keys(fed.deliveries_for(local_app)).len(), 4);

    // Wave 2: relayed and absorbed, but not yet consumed when the
    // range dies.
    for k in 4..6u64 {
        let ev = presence(sensor, 0x1000 + u128::from(k), t(2 + k));
        fed.ingest_at("range-a", &ev, t(2 + k)).unwrap();
    }
    fed.sync(t(9)).unwrap();

    // Crash: the worker is severed and joined, in-memory state is
    // lost; the WAL directory is all that survives (plus the telemetry
    // registry, which stays continuous across the recovery).
    let registry = fed.kill_range("range-a").unwrap();
    let logic: HashMap<Guid, LogicFactory> = HashMap::new();
    let (recovered, report) =
        durability::recover(a_id, "range-a", fed_plan(0), registry, &config, &logic).unwrap();
    assert_eq!(report.torn_bytes, 0, "{report:?}");
    assert_eq!(report.replay_errors, 0, "{report:?}");
    assert!(report.replayed > 0, "{report:?}");

    // Rejoin: the replayed outbox re-offers all six events to both
    // apps; the (origin, seq) filter must squash every one of them.
    let dedup_before = fed.relay_dedup_hits();
    fed.recover_range(recovered).unwrap();
    // Round-trip one command so the recovered worker's startup flush is
    // ordered before the next stream drain (workers stream before
    // replying; the flush precedes command processing).
    fed.command("range-a", RangeCommand::Audit, t(10)).unwrap();
    fed.sync(t(10)).unwrap();
    assert!(
        fed.relay_dedup_hits() > dedup_before,
        "recovery re-offered no duplicates — the redelivery path never ran"
    );
    let wave2 = delivery_keys(fed.deliveries_for(remote_app));
    assert_eq!(wave2.len(), 2, "wave-2 must arrive exactly once: {wave2:?}");
    assert_eq!(delivery_keys(fed.deliveries_for(local_app)).len(), 2);

    // Wave 3: fresh post-recovery traffic must NOT be falsely deduped —
    // the restored stream counters continue past every pre-crash seq.
    for k in 6..9u64 {
        let ev = presence(sensor, 0x1000 + u128::from(k), t(11 + k));
        fed.ingest_at("range-a", &ev, t(11 + k)).unwrap();
    }
    fed.sync(t(30)).unwrap();
    assert_eq!(delivery_keys(fed.deliveries_for(remote_app)).len(), 3);
    assert_eq!(delivery_keys(fed.deliveries_for(local_app)).len(), 3);

    fed.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
