//! Integration test: systematic coverage of the query model — all four
//! modes (§4.3) crossed with the Where variants (explicit place, logical
//! zone, closest-to, within-radius).

use sci::prelude::*;

struct Rig {
    cs: ContextServer,
    ids: GuidGenerator,
    printers: Vec<Guid>,
    bob: Guid,
}

fn rig() -> Rig {
    let mut ids = GuidGenerator::seeded(201);
    let mut cs = ContextServer::new(ids.next_guid(), "level-ten", capa_level10());

    // Three printers at increasing distance from Bob's office L10.01.
    let mut printers = Vec::new();
    for (name, room) in [("PA", "L10.01"), ("PB", "L10.02"), ("PC", "bay")] {
        let id = ids.next_guid();
        cs.register(
            Profile::builder(id, EntityKind::Device, name)
                .output(PortSpec::new("status", ContextType::PrinterStatus))
                .attribute("service", ContextValue::text("printing"))
                .attribute("room", ContextValue::place(room))
                .build(),
            VirtualTime::ZERO,
        )
        .unwrap();
        cs.advertise(Advertisement::new(id, "printing").with_operation(
            sci::types::Operation::new(
                "submit-job",
                [ContextType::custom("document")],
                Some(ContextType::custom("ticket")),
            ),
        ))
        .unwrap();
        printers.push(id);
    }

    // Bob is in his office (placed via a door event).
    let bob = ids.next_guid();
    let door = ids.next_guid();
    cs.register(
        Profile::builder(door, EntityKind::Device, "door")
            .output(PortSpec::new("presence", ContextType::Presence))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    let ev = ContextEvent::new(
        door,
        ContextType::Presence,
        ContextValue::record([
            ("subject", ContextValue::Id(bob)),
            ("to", ContextValue::place("L10.01")),
        ]),
        VirtualTime::ZERO,
    );
    cs.ingest(&ev, VirtualTime::ZERO).unwrap();

    Rig {
        cs,
        ids,
        printers,
        bob,
    }
}

fn names(answer: &QueryAnswer) -> Vec<String> {
    match answer {
        QueryAnswer::Profiles(ps) => ps.iter().map(|p| p.name().to_owned()).collect(),
        other => panic!("expected profiles, got {other:?}"),
    }
}

#[test]
fn profile_mode_with_every_where_variant() {
    let mut r = rig();
    let app = r.ids.next_guid();

    // Explicit place.
    let q = Query::builder(r.ids.next_guid(), app)
        .kind(EntityKind::Device)
        .attr_eq("service", "printing")
        .in_place("L10.02")
        .all()
        .mode(Mode::Profile)
        .build();
    assert_eq!(
        names(&r.cs.submit_query(&q, VirtualTime::ZERO).unwrap()),
        ["PB"]
    );

    // Logical zone: every printer is inside level-ten.
    let q = Query::builder(r.ids.next_guid(), app)
        .kind(EntityKind::Device)
        .attr_eq("service", "printing")
        .in_place("level-ten")
        .all()
        .mode(Mode::Profile)
        .build();
    assert_eq!(
        names(&r.cs.submit_query(&q, VirtualTime::ZERO).unwrap()).len(),
        3
    );

    // Closest to Bob.
    let q = Query::builder(r.ids.next_guid(), app)
        .kind(EntityKind::Device)
        .attr_eq("service", "printing")
        .where_(Where::ClosestTo(Subject::Entity(r.bob)))
        .closest()
        .mode(Mode::Profile)
        .build();
    assert_eq!(
        names(&r.cs.submit_query(&q, VirtualTime::ZERO).unwrap()),
        ["PA"]
    );

    // Within 10 metres of Bob: PA (same room) and PB (next door)
    // qualify; PC in the bay does not.
    let q = Query::builder(r.ids.next_guid(), app)
        .kind(EntityKind::Device)
        .attr_eq("service", "printing")
        .where_(Where::Within {
            center: Subject::Entity(r.bob),
            radius_m: 10.0,
        })
        .all()
        .mode(Mode::Profile)
        .build();
    let mut got = names(&r.cs.submit_query(&q, VirtualTime::ZERO).unwrap());
    got.sort();
    assert_eq!(got, ["PA", "PB"]);
}

#[test]
fn which_max_attr_selects_the_largest() {
    let mut r = rig();
    // Give the printers a speed attribute to maximise over.
    let ids: Vec<Guid> = r.printers.clone();
    for (i, id) in ids.iter().enumerate() {
        let ev = ContextEvent::new(
            *id,
            ContextType::PrinterStatus,
            ContextValue::record([("queue", ContextValue::Int(i as i64))]),
            VirtualTime::from_secs(1),
        );
        r.cs.ingest(&ev, VirtualTime::from_secs(1)).unwrap();
    }
    let app = r.ids.next_guid();
    let q = Query::builder(r.ids.next_guid(), app)
        .kind(EntityKind::Device)
        .attr_eq("service", "printing")
        .which(Which::MaxAttr("queue".into()))
        .mode(Mode::Profile)
        .build();
    match r.cs.submit_query(&q, VirtualTime::ZERO).unwrap() {
        QueryAnswer::Profiles(ps) => {
            assert_eq!(ps.len(), 1);
            assert_eq!(ps[0].name(), "PC", "largest queue wins under MaxAttr");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn advertisement_mode_returns_invocable_interface() {
    let mut r = rig();
    let app = r.ids.next_guid();
    let q = Query::builder(r.ids.next_guid(), app)
        .named(r.printers[2])
        .mode(Mode::Advertisement)
        .build();
    match r.cs.submit_query(&q, VirtualTime::ZERO).unwrap() {
        QueryAnswer::Advertisements(ads) => {
            assert_eq!(ads.len(), 1);
            assert_eq!(ads[0].interface(), "printing");
            let op = ads[0].operation("submit-job").unwrap();
            assert_eq!(op.returns, Some(ContextType::custom("ticket")));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn subscribe_mode_on_named_entity_streams_raw_events() {
    let mut r = rig();
    let app = r.ids.next_guid();
    let target = r.printers[0];
    let q = Query::builder(r.ids.next_guid(), app)
        .named(target)
        .mode(Mode::Subscribe)
        .build();
    match r.cs.submit_query(&q, VirtualTime::ZERO).unwrap() {
        QueryAnswer::Subscribed { producers, .. } => assert_eq!(producers, [target]),
        other => panic!("unexpected {other:?}"),
    }
    // A status event from that printer reaches the app; another
    // printer's does not.
    for (i, &printer) in r.printers.iter().enumerate() {
        let ev = ContextEvent::new(
            printer,
            ContextType::PrinterStatus,
            ContextValue::record([("queue", ContextValue::Int(i as i64))]),
            VirtualTime::from_secs(1),
        );
        r.cs.ingest(&ev, VirtualTime::from_secs(1)).unwrap();
    }
    let deliveries = r.cs.drain_outbox();
    assert_eq!(deliveries.len(), 1);
    assert_eq!(deliveries[0].event.source, target);
}

#[test]
fn subscribe_once_on_kind_consumes_after_first_event() {
    let mut r = rig();
    let app = r.ids.next_guid();
    let q = Query::builder(r.ids.next_guid(), app)
        .kind(EntityKind::Device)
        .attr_eq("service", "printing")
        .all()
        .mode(Mode::SubscribeOnce)
        .build();
    r.cs.submit_query(&q, VirtualTime::ZERO).unwrap();
    // First event delivers and consumes that producer's subscription.
    let ev = ContextEvent::new(
        r.printers[0],
        ContextType::PrinterStatus,
        ContextValue::record([("queue", ContextValue::Int(0))]),
        VirtualTime::from_secs(1),
    );
    r.cs.ingest(&ev, VirtualTime::from_secs(1)).unwrap();
    assert_eq!(r.cs.drain_outbox().len(), 1);
    assert_eq!(r.cs.configuration_count(), 0, "one-time config consumed");
    r.cs.ingest(&ev, VirtualTime::from_secs(2)).unwrap();
    assert!(r.cs.drain_outbox().is_empty());
}

#[test]
fn unresolvable_wheres_error_cleanly() {
    let mut r = rig();
    let app = r.ids.next_guid();
    // Unknown place.
    let q = Query::builder(r.ids.next_guid(), app)
        .kind(EntityKind::Device)
        .in_place("R99.99")
        .mode(Mode::Profile)
        .build();
    assert!(matches!(
        r.cs.submit_query(&q, VirtualTime::ZERO),
        Err(SciError::UnknownLocation(_))
    ));
    // Closest to an entity with no known position.
    let stranger = r.ids.next_guid();
    let q = Query::builder(r.ids.next_guid(), app)
        .kind(EntityKind::Device)
        .attr_eq("service", "printing")
        .where_(Where::ClosestTo(Subject::Entity(stranger)))
        .closest()
        .mode(Mode::Profile)
        .build();
    assert!(matches!(
        r.cs.submit_query(&q, VirtualTime::ZERO),
        Err(SciError::Unresolvable(_))
    ));
}
