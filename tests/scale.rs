//! Scale test: a large range under sustained load — the paper's
//! "scalable infrastructure" requirement exercised end to end.

use sci::prelude::*;

#[test]
fn large_range_sustains_load() {
    let plan = capa_level10();
    let mut ids = GuidGenerator::seeded(500);
    let mut cs = ContextServer::new(ids.next_guid(), "hall", plan.clone());

    // 1 000 door sensors and 200 unrelated devices.
    let doors: Vec<Guid> = (0..1_000)
        .map(|i| {
            let id = ids.next_guid();
            cs.register(
                Profile::builder(id, EntityKind::Device, format!("door-{i}"))
                    .output(PortSpec::new("presence", ContextType::Presence))
                    .build(),
                VirtualTime::ZERO,
            )
            .unwrap();
            id
        })
        .collect();
    for i in 0..200 {
        let id = ids.next_guid();
        cs.register(
            Profile::builder(id, EntityKind::Device, format!("noise-{i}"))
                .output(PortSpec::new("t", ContextType::Temperature))
                .build(),
            VirtualTime::ZERO,
        )
        .unwrap();
    }
    let obj_loc = ids.next_guid();
    cs.register(
        Profile::builder(obj_loc, EntityKind::Software, "objLocationCE")
            .input(PortSpec::new("presence", ContextType::Presence))
            .output(PortSpec::new("location", ContextType::Location))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    let p = plan;
    cs.register_logic(obj_loc, factory(move || ObjLocationLogic::new(p.clone())));

    // 100 applications track 25 distinct subjects (4 apps share each
    // subject's pipeline through reuse).
    let subjects: Vec<Guid> = (0..25).map(|_| ids.next_guid()).collect();
    for k in 0..100 {
        let app = ids.next_guid();
        let q = Query::builder(ids.next_guid(), app)
            .info_matching(
                ContextType::Location,
                vec![Predicate::eq(
                    "subject",
                    ContextValue::Id(subjects[k % subjects.len()]),
                )],
            )
            .mode(Mode::Subscribe)
            .build();
        cs.submit_query(&q, VirtualTime::ZERO).unwrap();
    }
    assert_eq!(
        cs.instance_count(),
        subjects.len(),
        "reuse keeps one instance per subject"
    );

    // 5 000 presence events round-robin across doors and subjects.
    let rooms = ["lobby", "corridor", "L10.01", "L10.02", "L10.03", "bay"];
    let mut delivered = 0usize;
    for k in 0..5_000usize {
        let t = VirtualTime::from_millis(k as u64 * 100);
        let ev = ContextEvent::new(
            doors[k % doors.len()],
            ContextType::Presence,
            ContextValue::record([
                ("subject", ContextValue::Id(subjects[k % subjects.len()])),
                ("to", ContextValue::place(rooms[k % rooms.len()])),
            ]),
            t,
        );
        cs.ingest(&ev, t).unwrap();
        delivered += cs.drain_outbox().len();
    }
    // Every event concerns a tracked subject and fans out to its 4 apps.
    assert_eq!(delivered, 5_000 * 4);

    // History is bounded, not runaway.
    assert!(cs.history().len() <= (subjects.len() * 2 + 1) * 32 + 32);
}
