//! Integration: live federations export a [`FederationModel`] that the
//! SCI-A2xx verifier accepts, and seeded misconfigurations surface as
//! the documented diagnostics *before* any traffic flows:
//!
//! * a healthy serial or parallel federation verifies clean;
//! * partitioning a range that place directories route through is
//!   SCI-A201 (`PartitionUnroutable`);
//! * a `qoc-max-age-us` bound tighter than the worst-case relay
//!   backoff is SCI-A203 (`FreshnessInfeasible`);
//! * the live blueprint taxonomy and relay message classes satisfy
//!   SCI-A204/SCI-A205 by construction.
//!
//! Also the parked-relay determinism regression: two same-seed chaos
//! runs must re-fire parked relays in an identical order, so their
//! delivery *sequences* (not just multisets) coincide.

use sci::prelude::*;

type ChaosFed = Federation<FaultyTransport<SimNetwork>>;

fn range_plan(i: usize) -> FloorPlan {
    FloorPlan::builder("campus")
        .zone(format!("wing-{i}"))
        .room(
            format!("hall-{i}"),
            Rect::with_size(Coord::new(0.0, 0.0), 20.0, 10.0),
        )
        .build()
        .unwrap()
}

fn server(i: usize, ids: &mut GuidGenerator) -> (ContextServer, Guid) {
    let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
    let sensor = ids.next_guid();
    cs.register(
        Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
            .output(PortSpec::new("presence", ContextType::Presence))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    (cs, sensor)
}

/// Three ranges over a faulty (but currently fault-free) transport,
/// with one cross-range subscription bounded by `max_age`.
fn rig(max_age: VirtualDuration) -> (ChaosFed, Vec<Guid>) {
    let mut ids = GuidGenerator::seeded(0xfed);
    let mut fed: ChaosFed =
        Federation::with_transport(FaultyTransport::new(SimNetwork::new(), 11), 7);
    let mut nodes = Vec::new();
    for i in 0..3usize {
        let (cs, _sensor) = server(i, &mut ids);
        nodes.push(fed.add_range(cs).unwrap());
    }
    fed.connect_full();
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Presence)
        .in_range("range-1")
        .fresh_within(max_age)
        .mode(Mode::Subscribe)
        .build();
    let fa = fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
    assert!(matches!(fa.answer, QueryAnswer::Subscribed { .. }));
    (fed, nodes)
}

#[test]
fn healthy_serial_federation_verifies_clean() {
    let (fed, nodes) = rig(VirtualDuration::from_secs(10));
    let model = fed.protocol_model();

    assert_eq!(model.ranges.len(), 3);
    assert_eq!(model.links.len(), 6, "directed full mesh over 3 ranges");
    let faults = model.faults.as_ref().expect("fault layer is installed");
    assert_eq!(faults.seed, 11);
    assert!(model.retry.retries > 0, "relays are retried");
    assert_eq!(
        model.freshness.len(),
        1,
        "one bounded configuration: {model:?}"
    );
    // Place directories key by room name; range-1's hall routes to it.
    assert!(model
        .routes
        .iter()
        .any(|r| r.place == "hall-1" && r.coverer == nodes[1]));
    assert!(!model.messages.is_empty());
    assert!(!model.blueprint.is_empty());

    let report = verify_federation(&model);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn healthy_parallel_federation_verifies_clean() {
    let mut ids = GuidGenerator::seeded(0xfed);
    let mut fed = ParallelFederation::new(11).with_restart_policy(RestartPolicy::bounded(2));
    for i in 0..3usize {
        let (cs, _sensor) = server(i, &mut ids);
        fed.add_range(cs).unwrap();
    }
    fed.connect_full();
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Presence)
        .in_range("range-2")
        .fresh_within(VirtualDuration::from_secs(10))
        .mode(Mode::Subscribe)
        .build();
    let fa = fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
    assert!(matches!(fa.answer, QueryAnswer::Subscribed { .. }));

    let model = fed.protocol_model();
    assert_eq!(model.ranges.len(), 3);
    assert_eq!(model.restart_budget, Some(2), "supervision is declared");
    assert_eq!(model.freshness.len(), 1);
    let report = verify_federation(&model);
    assert!(report.is_clean(), "{report}");
    fed.shutdown();
}

#[test]
fn partitioned_route_is_rejected_as_a201() {
    let (mut fed, nodes) = rig(VirtualDuration::from_secs(10));
    // range-1 covers the subscribed place; isolating it severs every
    // claimed route through it.
    fed.transport_mut().partition("island", &[nodes[1]]);

    let report = verify_federation(&fed.protocol_model());
    assert!(report.has_code(DiagCode::PartitionUnroutable), "{report}");
    assert!(report.has_errors());

    // Healing restores a clean bill.
    fed.transport_mut().heal_partitions();
    let report = verify_federation(&fed.protocol_model());
    assert!(report.is_clean(), "{report}");
}

#[test]
fn infeasible_freshness_is_rejected_as_a203() {
    // Worst-case relay backoff is base * (2^retries - 1) virtual µs;
    // any bound below it makes a fully retried relay dead on arrival.
    let (fed, _nodes) = rig(VirtualDuration::from_micros(1_000));
    let model = fed.protocol_model();
    assert!(
        model.retry.worst_case_backoff_us() > 1_000,
        "fixture bound must sit below the backoff: {:?}",
        model.retry
    );
    let report = verify_federation(&model);
    assert!(report.has_code(DiagCode::FreshnessInfeasible), "{report}");
}

/// One lossy chaos run: returns the delivery keys in arrival order.
fn lossy_run(seed: u64) -> Vec<String> {
    let mut ids = GuidGenerator::seeded(0xbeef);
    let mut fed: ChaosFed =
        Federation::with_transport(FaultyTransport::new(SimNetwork::new(), seed), 7);
    let mut sensors = Vec::new();
    for i in 0..3usize {
        let (cs, sensor) = server(i, &mut ids);
        sensors.push(sensor);
        fed.add_range(cs).unwrap();
    }
    fed.connect_full();
    let app = ids.next_guid();
    for target in ["range-1", "range-2"] {
        let q = Query::builder(ids.next_guid(), app)
            .info(ContextType::Presence)
            .in_range(target)
            .mode(Mode::Subscribe)
            .build();
        fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
    }
    fed.transport_mut().set_default_probs(FaultProbs {
        drop: 0.4,
        ..FaultProbs::default()
    });
    let mut order = Vec::new();
    for k in 0..12u64 {
        let now = VirtualTime::from_secs(k + 1);
        for (i, target) in ["range-1", "range-2"].iter().enumerate() {
            let ev = ContextEvent::new(
                sensors[i + 1],
                ContextType::Presence,
                ContextValue::record([(
                    "subject",
                    ContextValue::Id(Guid::from_u128(9_000 + u128::from(k))),
                )]),
                now,
            );
            fed.ingest_at(target, &ev, now).unwrap();
        }
        for d in fed.deliveries_for(app) {
            order.push(format!("{d:?}"));
        }
    }
    fed.transport_mut().heal();
    for step in 0..64u64 {
        if fed.pending_relay_count() == 0 && fed.transport().delayed_len() == 0 {
            break;
        }
        fed.pump(VirtualTime::from_secs(100 + step)).unwrap();
        for d in fed.deliveries_for(app) {
            order.push(format!("{d:?}"));
        }
    }
    fed.pump(VirtualTime::from_secs(200)).unwrap();
    for d in fed.deliveries_for(app) {
        order.push(format!("{d:?}"));
    }
    order
}

#[test]
fn parked_relay_refire_order_is_seed_deterministic() {
    // The retry pass drains parked relays in canonical (dst, id)
    // order, so two same-seed runs must produce byte-identical
    // delivery sequences — order included, not just the multiset.
    for seed in [3u64, 17, 0xfeed] {
        let first = lossy_run(seed);
        let second = lossy_run(seed);
        assert!(!first.is_empty(), "seed {seed}: nothing delivered");
        assert_eq!(first, second, "seed {seed}: replay diverged");
    }
}
