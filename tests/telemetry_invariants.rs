//! Integration: telemetry invariants. The observability layer must
//! agree with the test oracles the middleware already exposes —
//! counters are only trustworthy if they can be cross-checked.

use sci::prelude::*;

fn range_plan(i: usize) -> FloorPlan {
    FloorPlan::builder("campus")
        .zone(format!("wing-{i}"))
        .room(
            format!("hall-{i}"),
            Rect::with_size(Coord::new(0.0, 0.0), 20.0, 10.0),
        )
        .build()
        .unwrap()
}

fn server(i: usize, ids: &mut GuidGenerator) -> (ContextServer, Guid) {
    let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
    let sensor = ids.next_guid();
    cs.register(
        Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
            .output(PortSpec::new("presence", ContextType::Presence))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    (cs, sensor)
}

fn presence(sensor: Guid, subject: u128, t: VirtualTime) -> ContextEvent {
    ContextEvent::new(
        sensor,
        ContextType::Presence,
        ContextValue::record([("subject", ContextValue::Id(Guid::from_u128(subject)))]),
        t,
    )
}

/// With only direct CAA subscriptions live (no derived instances),
/// every matched bus delivery either reaches an application outbox or
/// is dropped as stale: `bus.deliver.count == range.app.deliveries +
/// range.stale_drops`, and the counters agree with the server's own
/// oracles (`drain_outbox`, `stale_drops()`).
#[test]
fn delivered_plus_stale_equals_matched() {
    let mut ids = GuidGenerator::seeded(17);
    let (mut cs, sensor) = server(0, &mut ids);
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Presence)
        .fresh_within(VirtualDuration::from_secs(5))
        .mode(Mode::Subscribe)
        .build();
    cs.submit_query(&q, VirtualTime::ZERO).unwrap();

    // Three fresh deliveries, two stale ones (produced long before the
    // ingest clock).
    for k in 0..3u64 {
        let t = VirtualTime::from_secs(10 + k);
        cs.ingest(&presence(sensor, 100 + u128::from(k), t), t)
            .unwrap();
    }
    let late = VirtualTime::from_secs(100);
    for k in 0..2u64 {
        cs.ingest(
            &presence(sensor, 200 + u128::from(k), VirtualTime::from_secs(10)),
            late,
        )
        .unwrap();
    }

    let delivered = cs.drain_outbox().len() as u64;
    let snap = cs.snapshot();
    assert_eq!(delivered, 3);
    assert_eq!(cs.stale_drops(), 2);
    assert_eq!(snap.counter("range.app.deliveries"), delivered);
    assert_eq!(snap.counter("range.stale_drops"), cs.stale_drops());
    assert_eq!(
        snap.counter("bus.deliver.count"),
        snap.counter("range.app.deliveries") + snap.counter("range.stale_drops"),
        "every matched delivery is either delivered or dropped as stale"
    );
    // Five ingests, each publishing once; command accounting agrees.
    assert_eq!(snap.counter("bus.publish.count"), 5);
    assert_eq!(snap.counter("range.cmd.ingest.count"), 5);
    let lat = snap.histogram("range.cmd.ingest.latency_us").unwrap();
    assert_eq!(lat.count, 5);
}

/// After a `sync` barrier every pipelined command has been executed:
/// the merged mailbox-depth gauge reads zero, and the cross-range
/// workload leaves non-zero publish/deliver/relay counters that agree
/// with the deliveries actually observed.
#[test]
fn parallel_federation_snapshot_agrees_with_oracles() {
    const RANGES: usize = 3;
    const EVENTS_PER_RANGE: u64 = 5;
    let mut ids = GuidGenerator::seeded(71);
    let mut fed = ParallelFederation::new(3);
    let mut sensors = Vec::new();
    for i in 0..RANGES {
        let (cs, sensor) = server(i, &mut ids);
        sensors.push(sensor);
        fed.add_range(cs).unwrap();
    }
    fed.connect_full();

    // App `i` is homed in range-i, subscribing to presence produced in
    // range-(i+1): every delivery crosses the overlay.
    let mut apps = Vec::new();
    for i in 0..RANGES {
        let app = ids.next_guid();
        let q = Query::builder(ids.next_guid(), app)
            .info(ContextType::Presence)
            .in_range(format!("range-{}", (i + 1) % RANGES))
            .mode(Mode::Subscribe)
            .build();
        let fa = fed
            .submit_from(&format!("range-{i}"), &q, VirtualTime::ZERO)
            .unwrap();
        assert!(matches!(fa.answer, QueryAnswer::Subscribed { .. }));
        apps.push(app);
    }
    for k in 0..EVENTS_PER_RANGE {
        for (j, &sensor) in sensors.iter().enumerate() {
            let t = VirtualTime::from_millis(1 + k * 100 + j as u64);
            fed.ingest_at(
                &format!("range-{j}"),
                &presence(sensor, u128::from(1000 + k * 10 + j as u64), t),
                t,
            )
            .unwrap();
        }
    }
    fed.sync(VirtualTime::from_secs(10)).unwrap();

    let total: usize = apps.iter().map(|&a| fed.deliveries_for(a).len()).sum();
    let expected = RANGES as u64 * EVENTS_PER_RANGE;
    assert_eq!(total as u64, expected);

    let snap = fed.snapshot();
    assert_eq!(
        snap.gauge("range.mailbox.depth"),
        0,
        "sync is a barrier: no command is left enqueued"
    );
    assert_eq!(snap.counter("bus.publish.count"), expected);
    assert_eq!(snap.counter("bus.deliver.count"), expected);
    assert_eq!(snap.counter("range.app.deliveries"), expected);
    assert_eq!(
        snap.counter("federation.relay.events"),
        expected,
        "every delivery was homed in another range"
    );
    assert_eq!(snap.counter("federation.relay.stale_drops"), 0);
    // The overlay saw each relay plus the query forward/response pairs.
    assert_eq!(
        snap.counter("net.delivered"),
        fed.network_stats().delivered()
    );
    assert!(snap.histogram("net.hops").unwrap().count > 0);
    // Phase instruments saw the workload.
    assert_eq!(
        snap.histogram("federation.cast_us").unwrap().count,
        expected
    );
    assert!(snap.histogram("federation.barrier_us").unwrap().count >= RANGES as u64);
    assert!(snap.histogram("federation.relay_us").unwrap().count >= RANGES as u64);

    // The snapshot survives the workspace XML wire conventions.
    let xml = sci::core::snapshot_to_xml(&snap);
    let back = sci::core::snapshot_from_xml(&xml).unwrap();
    assert_eq!(snap, back);
    fed.shutdown();
}

/// A panic inside one range's worker increments `range.panics` exactly
/// once — on the panicking range's registry, which survives the worker.
#[test]
fn panic_isolation_increments_exactly_one_counter() {
    struct PanicLogic;
    impl EntityLogic for PanicLogic {
        fn on_event(
            &mut self,
            _event: &ContextEvent,
            _binding: &Metadata,
            _now: VirtualTime,
        ) -> Vec<(ContextType, ContextValue)> {
            panic!("logic bomb")
        }
    }

    let mut ids = GuidGenerator::seeded(5);
    let (mut cs, sensor) = server(0, &mut ids);
    let bomb = ids.next_guid();
    cs.register(
        Profile::builder(bomb, EntityKind::Software, "bomb")
            .input(PortSpec::new("in", ContextType::Presence))
            .output(PortSpec::new("out", ContextType::Temperature))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    cs.register_logic(bomb, factory(|| PanicLogic));
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Temperature)
        .mode(Mode::Subscribe)
        .build();

    let mut rt = RangeRuntime::spawn(cs);
    rt.call(RangeCommand::Submit(Box::new(q)), VirtualTime::ZERO)
        .unwrap();
    let registry = rt.registry().clone();
    assert_eq!(registry.snapshot().counter("range.panics"), 0);

    let res = rt.call(
        RangeCommand::Ingest(presence(sensor, 9, VirtualTime::ZERO)),
        VirtualTime::ZERO,
    );
    assert!(res.is_err());
    assert!(rt.is_down());
    assert!(rt.shutdown().is_none());
    assert_eq!(
        registry.snapshot().counter("range.panics"),
        1,
        "exactly one isolated panic recorded"
    );
}

/// Every instrument name a live federated workload registers must be
/// listed in the central catalogue (`sci-telemetry::catalogue`) — the
/// same table the `sci-lint` SCI-A302 pass audits source literals
/// against. A name in the snapshot but not the catalogue means the
/// catalogue (or the lint) has drifted from reality.
#[test]
fn every_snapshot_name_is_catalogued() {
    use sci::telemetry::catalogue;

    let mut ids = GuidGenerator::seeded(23);
    let mut fed = ParallelFederation::new(5).with_restart_policy(RestartPolicy::bounded(1));
    let mut sensors = Vec::new();
    for i in 0..2usize {
        let (cs, sensor) = server(i, &mut ids);
        sensors.push(sensor);
        fed.add_range(cs).unwrap();
    }
    fed.connect_full();
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Presence)
        .in_range("range-1")
        .fresh_within(VirtualDuration::from_secs(5))
        .mode(Mode::Subscribe)
        .build();
    fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
    for k in 0..4u64 {
        let t = VirtualTime::from_secs(k + 1);
        fed.ingest_at("range-1", &presence(sensors[1], 500 + u128::from(k), t), t)
            .unwrap();
    }
    fed.sync(VirtualTime::from_secs(10)).unwrap();

    let snap = fed.snapshot();
    fed.shutdown();
    let mut names: Vec<&str> = snap
        .counters
        .iter()
        .map(|(n, _)| n.as_str())
        .chain(snap.gauges.iter().map(|(n, _)| n.as_str()))
        .chain(snap.histograms.iter().map(|h| h.name.as_str()))
        .collect();
    names.sort_unstable();
    names.dedup();
    assert!(!names.is_empty());
    let strays: Vec<&str> = names
        .into_iter()
        .filter(|n| !catalogue::contains(n))
        .collect();
    assert!(
        strays.is_empty(),
        "instrument names missing from the central catalogue: {strays:?}"
    );
}
