//! Property test: Context Server bookkeeping invariants hold under
//! arbitrary interleavings of query submission, cancellation, sensor
//! failure, re-registration and event traffic.
//!
//! Invariants checked after every operation:
//!
//! 1. Every live subscription in the mediator is owned by either a live
//!    instance or a live configuration's CAA subscription list.
//! 2. Instance refcounts equal the number of configurations referencing
//!    the instance.
//! 3. Cancelling every configuration reclaims every instance and every
//!    subscription.

use proptest::prelude::*;
use sci::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    SubmitLocation { subject: u8, app: u8 },
    SubmitPath { from: u8, to: u8, app: u8 },
    Cancel { which: u8 },
    FailDoor { which: u8 },
    Ingest { door: u8, subject: u8, room: u8 },
    RegisterDoor,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, any::<u8>()).prop_map(|(subject, app)| Op::SubmitLocation { subject, app }),
        (0u8..4, 0u8..4, any::<u8>()).prop_map(|(from, to, app)| Op::SubmitPath { from, to, app }),
        any::<u8>().prop_map(|which| Op::Cancel { which }),
        any::<u8>().prop_map(|which| Op::FailDoor { which }),
        (any::<u8>(), 0u8..4, 0u8..4).prop_map(|(door, subject, room)| Op::Ingest {
            door,
            subject,
            room
        }),
        Just(Op::RegisterDoor),
    ]
}

struct Rig {
    cs: ContextServer,
    ids: GuidGenerator,
    doors: Vec<Guid>,
    queries: Vec<Guid>,
    now: VirtualTime,
}

fn rig() -> Rig {
    let plan = capa_level10();
    let mut ids = GuidGenerator::seeded(404);
    let mut cs = ContextServer::new(ids.next_guid(), "level-ten", plan.clone());
    let mut doors = Vec::new();
    for i in 0..2 {
        let id = ids.next_guid();
        cs.register(
            Profile::builder(id, EntityKind::Device, format!("door-{i}"))
                .output(PortSpec::new("presence", ContextType::Presence))
                .build(),
            VirtualTime::ZERO,
        )
        .unwrap();
        doors.push(id);
    }
    let obj_loc = ids.next_guid();
    cs.register(
        Profile::builder(obj_loc, EntityKind::Software, "objLocationCE")
            .input(PortSpec::new("presence", ContextType::Presence))
            .output(PortSpec::new("location", ContextType::Location))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    let p = plan.clone();
    cs.register_logic(obj_loc, factory(move || ObjLocationLogic::new(p.clone())));
    let path_ce = ids.next_guid();
    cs.register(
        Profile::builder(path_ce, EntityKind::Software, "pathCE")
            .input(PortSpec::new("from", ContextType::Location))
            .input(PortSpec::new("to", ContextType::Location))
            .output(PortSpec::new("path", ContextType::Path))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    let p = plan;
    cs.register_logic(path_ce, factory(move || PathLogic::new(p.clone())));
    Rig {
        cs,
        ids,
        doors,
        queries: Vec::new(),
        now: VirtualTime::ZERO,
    }
}

fn subject_guid(i: u8) -> Guid {
    Guid::from_u128(0x5AB1_0000u128 + i as u128)
}

fn check_invariants(r: &Rig) {
    // 2: refcounts match configuration references.
    for state in r.cs.instances().iter() {
        let references =
            r.cs.configurations()
                .flat_map(|c| c.instances.iter())
                .filter(|&&i| i == state.instance)
                .count();
        assert_eq!(
            state.refcount, references,
            "instance {} refcount {} != {} references",
            state.instance, state.refcount, references
        );
    }
    // 1: subscription accounting.
    let instance_subs: usize = r.cs.instances().iter().map(|s| s.subs.len()).sum();
    let caa_subs: usize = r.cs.configurations().map(|c| c.caa_subs.len()).sum();
    assert_eq!(
        r.cs.mediator().bus().len(),
        instance_subs + caa_subs,
        "orphan or missing subscriptions"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bookkeeping_survives_arbitrary_operation_sequences(
        ops in prop::collection::vec(arb_op(), 1..40)
    ) {
        let mut r = rig();
        let rooms = ["lobby", "corridor", "L10.01", "L10.02"];
        for op in ops {
            r.now = r.now.saturating_add(VirtualDuration::from_secs(1));
            match op {
                Op::SubmitLocation { subject, app } => {
                    let q = Query::builder(r.ids.next_guid(), Guid::from_u128(0xA00 + app as u128))
                        .info_matching(
                            ContextType::Location,
                            vec![Predicate::eq("subject", ContextValue::Id(subject_guid(subject)))],
                        )
                        .mode(Mode::Subscribe)
                        .build();
                    if r.cs.submit_query(&q, r.now).is_ok() {
                        r.queries.push(q.id);
                    }
                }
                Op::SubmitPath { from, to, app } => {
                    let q = Query::builder(r.ids.next_guid(), Guid::from_u128(0xA00 + app as u128))
                        .info_matching(
                            ContextType::Path,
                            vec![
                                Predicate::eq("from", ContextValue::Id(subject_guid(from))),
                                Predicate::eq("to", ContextValue::Id(subject_guid(to))),
                            ],
                        )
                        .mode(Mode::Subscribe)
                        .build();
                    if r.cs.submit_query(&q, r.now).is_ok() {
                        r.queries.push(q.id);
                    }
                }
                Op::Cancel { which } => {
                    if !r.queries.is_empty() {
                        let idx = which as usize % r.queries.len();
                        let qid = r.queries.remove(idx);
                        r.cs.cancel_query(qid).unwrap();
                    }
                }
                Op::FailDoor { which } => {
                    if !r.doors.is_empty() {
                        let door = r.doors[which as usize % r.doors.len()];
                        sci::core::adaptation::repair_source(&mut r.cs, door, r.now);
                    }
                }
                Op::Ingest { door, subject, room } => {
                    if !r.doors.is_empty() {
                        let d = r.doors[door as usize % r.doors.len()];
                        let ev = ContextEvent::new(
                            d,
                            ContextType::Presence,
                            ContextValue::record([
                                ("subject", ContextValue::Id(subject_guid(subject))),
                                ("to", ContextValue::place(rooms[room as usize % rooms.len()])),
                            ]),
                            r.now,
                        );
                        r.cs.ingest(&ev, r.now).unwrap();
                        r.cs.drain_outbox();
                    }
                }
                Op::RegisterDoor => {
                    let id = r.ids.next_guid();
                    r.cs.register(
                        Profile::builder(id, EntityKind::Device, format!("door-{id}"))
                            .output(PortSpec::new("presence", ContextType::Presence))
                            .build(),
                        r.now,
                    )
                    .unwrap();
                    r.doors.push(id);
                }
            }
            check_invariants(&r);
        }
        // 3: full teardown reclaims everything.
        for qid in r.queries.drain(..) {
            r.cs.cancel_query(qid).unwrap();
        }
        assert_eq!(r.cs.instance_count(), 0);
        assert!(r.cs.mediator().bus().is_empty());
    }
}
