//! Chaos suite for first-class entity migration.
//!
//! A mover application lives in `range-0` with a standing presence
//! subscription, then migrates to `range-1` mid-stream while a seeded
//! [`FaultyTransport`] drops, duplicates, delays and reorders the
//! overlay traffic — including the `migrate` packet itself. The
//! exactly-once relay envelope must make the move invisible to the
//! delivery ledger:
//!
//! * the mover receives every logical event exactly once, wherever it
//!   happened to be living when the event fired — the same multiset a
//!   fault-free run *without* migration produces when the whole stream
//!   is ingested at the mover's original home;
//! * a stationary observer subscribed to both ranges sees the same
//!   stream too, so in-flight event relays crossing the chaotic link
//!   alongside the packet are covered;
//! * however often the packet is retransmitted or duplicated, the
//!   target replays it exactly once (`range.migrate.in == 1`).
//!
//! Delivery keys deliberately exclude the producing sensor and the
//! capturing query: city-scale mobility means the same logical reading
//! is emitted by whichever building the mover is in, and caught by
//! whichever standing query is local at the time.

use proptest::prelude::*;
use sci::prelude::*;

type ChaosFed = Federation<FaultyTransport<SimNetwork>>;

const EVENTS: u64 = 20;
const MOVE_AT: u64 = EVENTS / 2;

fn range_plan(i: usize) -> FloorPlan {
    FloorPlan::builder("campus")
        .zone(format!("wing-{i}"))
        .room(
            format!("hall-{i}"),
            Rect::with_size(Coord::new(0.0, 0.0), 20.0, 10.0),
        )
        .build()
        .unwrap()
}

/// What a run produced, reduced to comparable data.
struct Outcome {
    /// Sorted multiset of `(app, timestamp, payload)` delivery keys.
    deliveries: Vec<String>,
    dedup_hits: u64,
    migrate_out: u64,
    migrate_in: u64,
}

fn presence_event(sensor: Guid, k: u64) -> ContextEvent {
    ContextEvent::new(
        sensor,
        ContextType::Presence,
        ContextValue::record([(
            "subject",
            ContextValue::Id(Guid::from_u128(1_000 + u128::from(k))),
        )]),
        VirtualTime::from_secs(k + 1),
    )
}

/// Two ranges, each with its own presence sensor. A mover app homed in
/// `range-0` holds a local presence subscription; a stationary app
/// homed in `range-1` subscribes to presence in *both* ranges. The
/// logical event stream follows the mover: events before `MOVE_AT`
/// fire in `range-0`, and — when `migrate` is set — the mover is
/// migrated and the rest fire in `range-1` (without migration the
/// whole stream stays in `range-0`). Faults per `probs`; afterwards
/// the transport heals and the federation pumps to quiescence.
fn run(seed: u64, probs: FaultProbs, migrate: bool) -> Outcome {
    let mut ids = GuidGenerator::seeded(0xbadcab);
    let mut fed: ChaosFed =
        Federation::with_transport(FaultyTransport::new(SimNetwork::new(), seed), 7);
    let mover = ids.next_guid();
    let mut sensors = Vec::new();
    for i in 0..2usize {
        let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
        let sensor = ids.next_guid();
        cs.register(
            Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
                .output(PortSpec::new("presence", ContextType::Presence))
                .build(),
            VirtualTime::ZERO,
        )
        .unwrap();
        sensors.push(sensor);
        if i == 0 {
            // The mover lives in range-0 until the move.
            cs.register(
                Profile::builder(mover, EntityKind::Person, "mover").build(),
                VirtualTime::ZERO,
            )
            .unwrap();
        }
        fed.add_range(cs).unwrap();
    }
    fed.connect_full();

    // Clean phase: the mover subscribes at its home range; the
    // stationary observer subscribes to both ranges.
    {
        let reply = fed
            .submit_from(
                "range-0",
                &Query::builder(ids.next_guid(), mover)
                    .info(ContextType::Presence)
                    .mode(Mode::Subscribe)
                    .build(),
                VirtualTime::ZERO,
            )
            .unwrap();
        assert!(
            matches!(reply.answer, QueryAnswer::Subscribed { .. }),
            "seed {seed}: mover subscription failed before any fault was injected"
        );
    }
    let observer = ids.next_guid();
    for target in ["range-0", "range-1"] {
        let q = Query::builder(ids.next_guid(), observer)
            .info(ContextType::Presence)
            .in_range(target)
            .mode(Mode::Subscribe)
            .build();
        fed.submit_from("range-1", &q, VirtualTime::ZERO).unwrap();
    }

    // Chaos phase.
    fed.transport_mut().set_default_probs(probs);
    let mut deliveries: Vec<String> = Vec::new();
    for k in 0..MOVE_AT {
        let now = VirtualTime::from_secs(k + 1);
        fed.ingest_at("range-0", &presence_event(sensors[0], k), now)
            .unwrap();
        collect(&mut fed, &[mover, observer], &mut deliveries);
    }

    if migrate {
        fed.migrate_entity(mover, "range-0", "range-1", VirtualTime::from_secs(MOVE_AT))
            .unwrap();
        // The packet (and any relays in flight beside it) must land
        // before the stream resumes in the new home range — under
        // chaos that can take a few retrying pumps.
        for _ in 0..64u64 {
            if fed.pending_relay_count() == 0 && fed.transport().delayed_len() == 0 {
                break;
            }
            fed.pump(VirtualTime::from_secs(MOVE_AT)).unwrap();
            collect(&mut fed, &[mover, observer], &mut deliveries);
        }
        assert_eq!(
            fed.pending_relay_count(),
            0,
            "seed {seed}: the migrate packet never landed"
        );
    }

    let resume = if migrate { "range-1" } else { "range-0" };
    let sensor = if migrate { sensors[1] } else { sensors[0] };
    for k in MOVE_AT..EVENTS {
        let now = VirtualTime::from_secs(k + 1);
        fed.ingest_at(resume, &presence_event(sensor, k), now)
            .unwrap();
        collect(&mut fed, &[mover, observer], &mut deliveries);
    }

    // Eventual connectivity: heal and pump to quiescence.
    fed.transport_mut().heal();
    for step in 0..64u64 {
        if fed.pending_relay_count() == 0 && fed.transport().delayed_len() == 0 {
            break;
        }
        fed.pump(VirtualTime::from_secs(100 + step)).unwrap();
        collect(&mut fed, &[mover, observer], &mut deliveries);
    }
    fed.pump(VirtualTime::from_secs(200)).unwrap();
    collect(&mut fed, &[mover, observer], &mut deliveries);

    deliveries.sort_unstable();
    let snap = fed.snapshot();
    Outcome {
        deliveries,
        dedup_hits: fed.relay_dedup_hits(),
        migrate_out: snap.counter("range.migrate.out"),
        migrate_in: snap.counter("range.migrate.in"),
    }
}

/// Keys deliveries by `(app, timestamp, payload)` — sensor and query
/// deliberately excluded, see the module docs.
fn collect(fed: &mut ChaosFed, apps: &[Guid], into: &mut Vec<String>) {
    for &app in apps {
        for d in fed.deliveries_for(app) {
            into.push(format!(
                "{}|{}|{:?}",
                d.app, d.event.timestamp, d.event.payload
            ));
        }
    }
}

/// Seeds for the fixed matrix: `SCI_CHAOS_SEEDS` (comma-separated)
/// overrides the default set, so CI pins the schedules it replays.
fn matrix_seeds() -> Vec<u64> {
    std::env::var("SCI_CHAOS_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 3, 5, 8, 13, 21, 34, 55, 89])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant: migrating mid-stream under a seeded
    /// chaos schedule neither loses nor doubles a single delivery —
    /// the multiset equals the fault-free run without any migration.
    #[test]
    fn chaotic_migration_matches_the_no_migration_oracle(seed in any::<u64>()) {
        let oracle = run(seed, FaultProbs::NONE, false);
        let moved = run(seed, FaultProbs::lossy(0.3), true);
        prop_assert_eq!(
            &moved.deliveries,
            &oracle.deliveries,
            "delivery multiset diverged across a chaotic migration, seed {}",
            seed
        );
        prop_assert_eq!(moved.migrate_out, 1);
        prop_assert_eq!(moved.migrate_in, 1, "the packet must replay exactly once");
        prop_assert_eq!(oracle.dedup_hits, 0);
    }

    /// A chaotic migration is a pure function of its seed.
    #[test]
    fn chaotic_migration_replays_identically(seed in any::<u64>()) {
        let a = run(seed, FaultProbs::lossy(0.25), true);
        let b = run(seed, FaultProbs::lossy(0.25), true);
        prop_assert_eq!(a.deliveries, b.deliveries, "seed {} did not replay", seed);
        prop_assert_eq!(a.dedup_hits, b.dedup_hits);
    }
}

/// The acceptance invariant on the pinned seed matrix, under a
/// duplication-heavy schedule (`ack_loss = 1.0` makes every "failed"
/// send land anyway): however many copies of the migrate packet reach
/// the target, it replays exactly once, and the ledger still balances.
#[test]
fn duplicated_migrate_packets_replay_exactly_once() {
    let mut exercised = false;
    for seed in matrix_seeds() {
        let probs = FaultProbs {
            drop: 0.4,
            ack_loss: 1.0,
            ..FaultProbs::NONE
        };
        let oracle = run(seed, FaultProbs::NONE, false);
        let moved = run(seed, probs, true);
        assert_eq!(
            moved.deliveries, oracle.deliveries,
            "seed {seed}: duplication must not double a delivery across a move"
        );
        assert_eq!(
            moved.migrate_in, 1,
            "seed {seed}: a duplicated packet must replay exactly once"
        );
        exercised |= moved.dedup_hits > 0;
    }
    assert!(
        exercised,
        "at 40% drop with total ack loss, at least one matrix seed must dedup a duplicate"
    );
}

/// The same move through the range-per-thread driver: migration is a
/// first-class command there too, the delivery ledger balances, and
/// the coordinator times the packet's flight.
#[test]
fn parallel_migration_is_first_class_and_counted() {
    let mut ids = GuidGenerator::seeded(0xbadcab);
    let mut fed = ParallelFederation::new(7);
    let mover = ids.next_guid();
    let mut sensors = Vec::new();
    for i in 0..2usize {
        let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
        let sensor = ids.next_guid();
        cs.register(
            Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
                .output(PortSpec::new("presence", ContextType::Presence))
                .build(),
            VirtualTime::ZERO,
        )
        .unwrap();
        sensors.push(sensor);
        if i == 0 {
            cs.register(
                Profile::builder(mover, EntityKind::Person, "mover").build(),
                VirtualTime::ZERO,
            )
            .unwrap();
        }
        fed.add_range(cs).unwrap();
    }
    fed.connect_full();

    let q = Query::builder(ids.next_guid(), mover)
        .info(ContextType::Presence)
        .mode(Mode::Subscribe)
        .build();
    fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();

    for k in 0..MOVE_AT {
        let now = VirtualTime::from_secs(k + 1);
        fed.ingest_at("range-0", &presence_event(sensors[0], k), now)
            .unwrap();
    }
    fed.migrate_entity(mover, "range-0", "range-1", VirtualTime::from_secs(MOVE_AT))
        .unwrap();
    for k in MOVE_AT..EVENTS {
        let now = VirtualTime::from_secs(k + 1);
        fed.ingest_at("range-1", &presence_event(sensors[1], k), now)
            .unwrap();
    }
    fed.sync(VirtualTime::from_secs(EVENTS + 1)).unwrap();

    assert_eq!(
        fed.deliveries_for(mover).len() as u64,
        EVENTS,
        "the standing query must follow the mover without losing a delivery"
    );
    let snap = fed.snapshot();
    assert_eq!(snap.counter("range.migrate.out"), 1);
    assert_eq!(snap.counter("range.migrate.in"), 1);
    assert_eq!(snap.counter("range.cmd.migrate-out.count"), 1);
    assert_eq!(snap.counter("range.cmd.migrate-in.count"), 1);
    fed.shutdown();
}

/// Migrating an entity the source range never registered fails
/// cleanly, counts nothing, and moves nothing.
#[test]
fn migrating_an_unknown_entity_is_a_clean_error() {
    let mut ids = GuidGenerator::seeded(0xbadcab);
    let mut fed: ChaosFed =
        Federation::with_transport(FaultyTransport::new(SimNetwork::new(), 1), 7);
    for i in 0..2usize {
        let cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
        fed.add_range(cs).unwrap();
    }
    fed.connect_full();
    let ghost = ids.next_guid();
    let err = fed
        .migrate_entity(ghost, "range-0", "range-1", VirtualTime::ZERO)
        .unwrap_err();
    assert!(matches!(err, SciError::UnknownEntity(_)), "{err:?}");
    let snap = fed.snapshot();
    assert_eq!(snap.counter("range.migrate.out"), 0);
    assert_eq!(snap.counter("range.migrate.in"), 0);
    assert_eq!(
        snap.counter("range.deregister.unknown"),
        1,
        "the refused departure is accounted"
    );
}
