//! Integration test: the hybrid communication model (paper §4) under
//! real concurrency — "a combination of distributed events and point to
//! point communication". World-simulator events fan out through the
//! threaded bus to consumer threads, while a service invocation runs
//! over a point-to-point channel pair.

use std::thread;

use sci::event::rt::{point_to_point, ThreadedBus};
use sci::prelude::*;
use sci::sensors::mobility::{Leg, MovementPlan};

#[test]
fn world_events_fan_out_across_threads() {
    let mut ids = GuidGenerator::seeded(101);
    let plan = capa_level10();
    let mut world = World::new(plan);
    world.auto_door_sensors(&mut ids);
    let bob = ids.next_guid();
    world
        .spawn_person(SimPerson::new(bob, "Bob", Coord::new(4.0, 1.0)).with_plan(
            MovementPlan::scripted([
                Leg::new("L10.01", VirtualDuration::from_secs(10)),
                Leg::new("L10.02", VirtualDuration::from_secs(10)),
                Leg::new("bay", VirtualDuration::from_secs(10)),
            ]),
        ))
        .unwrap();

    let bus = ThreadedBus::new();
    // Consumer 1: all presence events.
    let (_, presence_rx) = bus.subscribe(
        ids.next_guid(),
        Topic::of_type(ContextType::Presence),
        false,
    );
    // Consumer 2: only events about Bob.
    let (_, bob_rx) = bus.subscribe(ids.next_guid(), Topic::any().about(bob), false);

    let presence_counter = thread::spawn(move || presence_rx.iter().count());
    let bob_counter = thread::spawn(move || bob_rx.iter().count());

    // Drive the world on this thread, publishing into the bus.
    let dt = VirtualDuration::from_secs(2);
    let mut now = VirtualTime::ZERO;
    let mut produced = 0usize;
    for _ in 0..120 {
        now += dt;
        for event in world.tick(now, dt).unwrap() {
            bus.publish(&event);
            produced += 1;
        }
    }
    assert!(produced >= 4, "bob crossed several sensed doors");
    drop(bus); // disconnect: consumer threads drain and exit

    let presence_seen = presence_counter.join().unwrap();
    let bob_seen = bob_counter.join().unwrap();
    assert_eq!(presence_seen, produced, "all events were presence events");
    assert_eq!(bob_seen, produced, "every event was about Bob");
}

#[test]
fn point_to_point_service_invocation_across_threads() {
    // A printer "service" thread answers submit-job requests — the
    // point-to-point half of the hybrid model used by Advertisement
    // interactions.
    let (client, server) = point_to_point::<(String, u32), Guid>();
    let service = thread::spawn(move || {
        let mut ids = GuidGenerator::seeded(7);
        let mut jobs = Vec::new();
        while let Ok((document, pages)) = server.next_request() {
            let ticket = ids.next_guid();
            jobs.push((document, pages, ticket));
            if server.respond(ticket).is_err() {
                break;
            }
        }
        jobs
    });

    let t1 = client.call(("paper.pdf".to_owned(), 12)).unwrap();
    let t2 = client.call(("slides.pdf".to_owned(), 30)).unwrap();
    assert_ne!(t1, t2, "each job gets its own ticket");
    drop(client);
    let jobs = service.join().unwrap();
    assert_eq!(jobs.len(), 2);
    assert_eq!(jobs[0].0, "paper.pdf");
}

#[test]
fn threaded_and_deterministic_buses_agree_on_filtering() {
    // The same subscription set over the same event sequence produces
    // identical fanout counts on both runtimes.
    let mut ids = GuidGenerator::seeded(5);
    let source = ids.next_guid();
    let subject = ids.next_guid();
    let events: Vec<ContextEvent> = (0..50)
        .map(|i| {
            let ty = if i % 3 == 0 {
                ContextType::Presence
            } else {
                ContextType::Temperature
            };
            let payload = if i % 2 == 0 {
                ContextValue::record([("subject", ContextValue::Id(subject))])
            } else {
                ContextValue::Int(i)
            };
            ContextEvent::new(source, ty, payload, VirtualTime::from_micros(i as u64))
        })
        .collect();

    let topics = [
        Topic::any(),
        Topic::of_type(ContextType::Presence),
        Topic::any().about(subject),
        Topic::of_type(ContextType::Temperature).from(source),
    ];

    let mut sync_bus = sci::event::EventBus::new();
    let threaded = ThreadedBus::new();
    let mut receivers = Vec::new();
    for topic in &topics {
        sync_bus.subscribe(ids.next_guid(), topic.clone(), false);
        receivers.push(threaded.subscribe(ids.next_guid(), topic.clone(), false).1);
    }

    let mut sync_total = 0usize;
    let mut threaded_total = 0usize;
    for ev in &events {
        sync_total += sync_bus.publish(ev).len();
        threaded_total += threaded.publish(ev);
    }
    assert_eq!(sync_total, threaded_total);
    let received: usize = receivers.iter().map(|r| r.try_iter().count()).sum();
    assert_eq!(received, threaded_total);
}
