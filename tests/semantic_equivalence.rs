//! Integration test: semantic equivalence of context types (paper §6,
//! open issue 2) — the answer to the iQueue critique of §2: "an iQueue
//! application that has been developed to request location data from a
//! network of door sensors cannot take advantage of an environment that
//! provides location information using a wireless detection scheme."
//! In SCI it can: declare the types equivalent and the resolver, the
//! failure-repair path and the new-source path all treat them as one.

use sci::prelude::*;

fn badge_event(source: Guid, subject: Guid, to: &str, t: VirtualTime) -> ContextEvent {
    ContextEvent::new(
        source,
        ContextType::custom("badge-scan"),
        ContextValue::record([
            ("subject", ContextValue::Id(subject)),
            ("from", ContextValue::place("corridor")),
            ("to", ContextValue::place(to)),
        ]),
        t,
    )
}

fn rig_with_badge_scanners(n: usize) -> (ContextServer, GuidGenerator, Vec<Guid>) {
    let plan = capa_level10();
    let mut ids = GuidGenerator::seeded(88);
    let mut cs = ContextServer::new(ids.next_guid(), "level-ten", plan.clone());

    // The environment provides *badge-scan* events, not Presence.
    let scanners: Vec<Guid> = (0..n)
        .map(|i| {
            let id = ids.next_guid();
            cs.register(
                Profile::builder(id, EntityKind::Device, format!("badge-scanner-{i}"))
                    .output(PortSpec::new("scan", ContextType::custom("badge-scan")))
                    .build(),
                VirtualTime::ZERO,
            )
            .unwrap();
            id
        })
        .collect();

    // objLocationCE was written against Presence.
    let obj_loc = ids.next_guid();
    cs.register(
        Profile::builder(obj_loc, EntityKind::Software, "objLocationCE")
            .input(PortSpec::new("presence", ContextType::Presence))
            .output(PortSpec::new("location", ContextType::Location))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    let p = plan;
    cs.register_logic(obj_loc, factory(move || ObjLocationLogic::new(p.clone())));
    (cs, ids, scanners)
}

fn location_query(ids: &mut GuidGenerator, app: Guid, subject: Guid) -> Query {
    Query::builder(ids.next_guid(), app)
        .info_matching(
            ContextType::Location,
            vec![Predicate::eq("subject", ContextValue::Id(subject))],
        )
        .mode(Mode::Subscribe)
        .build()
}

#[test]
fn without_equivalence_the_query_is_unresolvable() {
    let (mut cs, mut ids, _) = rig_with_badge_scanners(2);
    let app = ids.next_guid();
    let bob = ids.next_guid();
    let q = location_query(&mut ids, app, bob);
    assert!(matches!(
        cs.submit_query(&q, VirtualTime::ZERO),
        Err(SciError::Unresolvable(_))
    ));
}

#[test]
fn equivalence_makes_foreign_sources_usable() {
    let (mut cs, mut ids, scanners) = rig_with_badge_scanners(2);
    cs.declare_equivalence(ContextType::Presence, ContextType::custom("badge-scan"));

    let app = ids.next_guid();
    let bob = ids.next_guid();
    let q = location_query(&mut ids, app, bob);
    match cs.submit_query(&q, VirtualTime::ZERO).unwrap() {
        QueryAnswer::Subscribed { .. } => {}
        other => panic!("unexpected {other:?}"),
    }

    // A badge-scan event flows through the Presence-typed pipeline.
    let t = VirtualTime::from_secs(1);
    cs.ingest(&badge_event(scanners[0], bob, "L10.01", t), t)
        .unwrap();
    let out = cs.drain_outbox();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].event.topic, ContextType::Location);
    assert_eq!(
        out[0]
            .event
            .payload
            .field("room")
            .and_then(|v| v.as_text().map(str::to_owned)),
        Some("L10.01".to_owned())
    );
}

#[test]
fn repair_crosses_the_equivalence_boundary() {
    // Presence door sensors fail; equivalent badge scanners survive and
    // are wired in as replacements.
    let plan = capa_level10();
    let mut ids = GuidGenerator::seeded(89);
    let mut cs = ContextServer::new(ids.next_guid(), "level-ten", plan.clone());
    cs.declare_equivalence(ContextType::Presence, ContextType::custom("badge-scan"));

    let door = ids.next_guid();
    cs.register(
        Profile::builder(door, EntityKind::Device, "door")
            .output(PortSpec::new("presence", ContextType::Presence))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    let scanner = ids.next_guid();
    cs.register(
        Profile::builder(scanner, EntityKind::Device, "scanner")
            .output(PortSpec::new("scan", ContextType::custom("badge-scan")))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    let obj_loc = ids.next_guid();
    cs.register(
        Profile::builder(obj_loc, EntityKind::Software, "objLocationCE")
            .input(PortSpec::new("presence", ContextType::Presence))
            .output(PortSpec::new("location", ContextType::Location))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    let p = plan;
    cs.register_logic(obj_loc, factory(move || ObjLocationLogic::new(p.clone())));

    let app = ids.next_guid();
    let bob = ids.next_guid();
    let q = location_query(&mut ids, app, bob);
    cs.submit_query(&q, VirtualTime::ZERO).unwrap();

    // Kill the Presence door sensor.
    let reports = sci::core::adaptation::repair_source(&mut cs, door, VirtualTime::from_secs(1));
    assert_eq!(reports.len(), 1);
    assert!(!reports[0].degraded, "the equivalent scanner substitutes");

    // Events from the scanner now reach the application.
    let t = VirtualTime::from_secs(2);
    cs.ingest(&badge_event(scanner, bob, "L10.02", t), t)
        .unwrap();
    assert_eq!(cs.drain_outbox().len(), 1);
}

#[test]
fn late_equivalent_source_is_wired_into_live_configs() {
    let (mut cs, mut ids, scanners) = rig_with_badge_scanners(1);
    cs.declare_equivalence(ContextType::Presence, ContextType::custom("badge-scan"));
    let app = ids.next_guid();
    let bob = ids.next_guid();
    let q = location_query(&mut ids, app, bob);
    cs.submit_query(&q, VirtualTime::ZERO).unwrap();

    // A *Presence* door sensor arrives later — a different but
    // equivalent type — and feeds the running configuration.
    let door = ids.next_guid();
    cs.register(
        Profile::builder(door, EntityKind::Device, "door-late")
            .output(PortSpec::new("presence", ContextType::Presence))
            .build(),
        VirtualTime::from_secs(1),
    )
    .unwrap();
    let t = VirtualTime::from_secs(2);
    let ev = ContextEvent::new(
        door,
        ContextType::Presence,
        ContextValue::record([
            ("subject", ContextValue::Id(bob)),
            ("to", ContextValue::place("bay")),
        ]),
        t,
    );
    cs.ingest(&ev, t).unwrap();
    assert_eq!(cs.drain_outbox().len(), 1, "late door feeds the pipeline");
    let _ = scanners;
}
