//! Property tests for the Query Resolver: soundness (every produced
//! configuration plan type-checks edge by edge, down to sources) and
//! completeness (whenever a provider chain exists, a plan is found).

use proptest::prelude::*;
use std::collections::HashSet;

use sci::core::profile_manager::ProfileManager;
use sci::core::resolver::{plan_configuration, Demand, NodeKind};
use sci::prelude::*;

/// A randomly shaped provider universe: `depth` conversion layers above
/// a set of sources, plus unrelated distractors.
#[derive(Clone, Debug)]
struct Universe {
    depth: usize,
    sources_per_type: usize,
    converters_per_layer: usize,
    distractors: usize,
}

fn layer_type(i: usize) -> ContextType {
    ContextType::custom(format!("layer-{i}"))
}

fn build_universe(u: &Universe) -> (ProfileManager, GuidGenerator) {
    let mut pm = ProfileManager::new();
    let mut ids = GuidGenerator::seeded(17);

    // Sources produce layer-0.
    for _ in 0..u.sources_per_type {
        let id = ids.next_guid();
        pm.insert(
            Profile::builder(id, EntityKind::Device, format!("src-{id}"))
                .output(PortSpec::new("out", layer_type(0)))
                .build(),
        )
        .unwrap();
    }
    // Converters lift layer i to layer i+1.
    for i in 0..u.depth {
        for _ in 0..u.converters_per_layer {
            let id = ids.next_guid();
            pm.insert(
                Profile::builder(id, EntityKind::Software, format!("conv-{i}-{id}"))
                    .input(PortSpec::new("in", layer_type(i)))
                    .output(PortSpec::new("out", layer_type(i + 1)))
                    .build(),
            )
            .unwrap();
        }
    }
    // Distractors provide unrelated types.
    for d in 0..u.distractors {
        let id = ids.next_guid();
        pm.insert(
            Profile::builder(id, EntityKind::Device, format!("noise-{d}"))
                .output(PortSpec::new(
                    "out",
                    ContextType::custom(format!("noise-{d}")),
                ))
                .build(),
        )
        .unwrap();
    }
    (pm, ids)
}

fn arb_universe() -> impl Strategy<Value = Universe> {
    (1usize..5, 1usize..4, 1usize..3, 0usize..20).prop_map(
        |(depth, sources_per_type, converters_per_layer, distractors)| Universe {
            depth,
            sources_per_type,
            converters_per_layer,
            distractors,
        },
    )
}

/// Checks the structural soundness invariants of a plan.
fn assert_sound(plan: &sci::core::ConfigurationPlan, pm: &ProfileManager, demanded: &ContextType) {
    assert!(!plan.roots.is_empty(), "plans have roots");
    for &root in &plan.roots {
        assert!(
            pm.compatible(&plan.nodes[root].output, demanded),
            "root output {} incompatible with demand {demanded}",
            plan.nodes[root].output
        );
    }
    for (idx, node) in plan.nodes.iter().enumerate() {
        match node.kind {
            NodeKind::Source => {
                assert!(node.inputs.is_empty(), "sources have no inputs");
                let profile = pm.get(node.ce).expect("sources are registered");
                assert!(profile.is_source());
            }
            NodeKind::Derived => {
                let profile = pm.get(node.ce).expect("derived CEs are registered");
                assert_eq!(
                    node.inputs.len(),
                    profile.inputs().len(),
                    "every port wired"
                );
                for edge in &node.inputs {
                    assert!(!edge.producers.is_empty(), "no dangling edges");
                    for &p in &edge.producers {
                        assert!(p < idx, "children precede parents");
                        assert!(
                            pm.compatible(&plan.nodes[p].output, &edge.ty),
                            "edge type mismatch: producer {} vs port {}",
                            plan.nodes[p].output,
                            edge.ty
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Completeness: a full chain exists, so the resolver finds a plan —
    /// and soundness: the plan type-checks down to sources.
    #[test]
    fn resolves_and_type_checks(u in arb_universe()) {
        let (pm, _) = build_universe(&u);
        let demanded = layer_type(u.depth);
        let plan = plan_configuration(&pm, &Demand::of(demanded.clone()), &[], &HashSet::new())
            .expect("a chain exists");
        assert_sound(&plan, &pm, &demanded);
        // The chain grounds at the sensor level.
        prop_assert!(!plan.source_ces().is_empty());
        prop_assert_eq!(plan.depth(), u.depth + 1);
    }

    /// Removing every source makes the demand unresolvable, regardless
    /// of how many converters exist.
    #[test]
    fn no_sources_no_plan(u in arb_universe()) {
        let (pm, _) = build_universe(&u);
        let excluded: HashSet<Guid> = pm
            .providers_of(&layer_type(0))
            .into_iter()
            .map(|p| p.id())
            .collect();
        let result = plan_configuration(
            &pm,
            &Demand::of(layer_type(u.depth)),
            &[],
            &excluded,
        );
        prop_assert!(result.is_err());
    }

    /// Excluding any strict subset of sources still resolves, and the
    /// excluded CEs never appear in the plan.
    #[test]
    fn exclusion_is_respected(u in arb_universe(), strike in 0usize..3) {
        prop_assume!(u.sources_per_type > 1);
        let (pm, _) = build_universe(&u);
        let sources: Vec<Guid> = pm
            .providers_of(&layer_type(0))
            .into_iter()
            .map(|p| p.id())
            .collect();
        let excluded: HashSet<Guid> = sources
            .iter()
            .copied()
            .take(strike.min(sources.len() - 1))
            .collect();
        let demanded = layer_type(u.depth);
        let plan = plan_configuration(&pm, &Demand::of(demanded.clone()), &[], &excluded)
            .expect("survivors exist");
        assert_sound(&plan, &pm, &demanded);
        for node in &plan.nodes {
            prop_assert!(!excluded.contains(&node.ce));
        }
    }

    /// Resolution is deterministic: the same universe yields the same
    /// plan every time.
    #[test]
    fn resolution_is_deterministic(u in arb_universe()) {
        let (pm, _) = build_universe(&u);
        let demand = Demand::of(layer_type(u.depth));
        let a = plan_configuration(&pm, &demand, &[], &HashSet::new()).expect("resolves");
        let b = plan_configuration(&pm, &demand, &[], &HashSet::new()).expect("resolves");
        prop_assert_eq!(a, b);
    }
}
