//! Integration: the parallel range-per-thread driver is observationally
//! equivalent to the serial federation (same deliveries, order aside),
//! and a panic inside one range's worker never takes down its siblings.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sci::prelude::*;

const RANGES: usize = 3;
const EVENTS_PER_RANGE: u64 = 5;

fn range_plan(i: usize) -> FloorPlan {
    FloorPlan::builder("campus")
        .zone(format!("wing-{i}"))
        .room(
            format!("hall-{i}"),
            Rect::with_size(Coord::new(0.0, 0.0), 20.0, 10.0),
        )
        .build()
        .unwrap()
}

fn server(i: usize, ids: &mut GuidGenerator) -> (ContextServer, Guid) {
    let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
    let sensor = ids.next_guid();
    cs.register(
        Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
            .output(PortSpec::new("presence", ContextType::Presence))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    (cs, sensor)
}

struct Workload {
    /// App `i` is homed in `range-i` and subscribes to presence in
    /// `range-(i+1) mod n` — every delivery crosses the overlay.
    apps: Vec<Guid>,
    queries: Vec<Query>,
    /// (producing range, event, ingest time), interleaved across ranges.
    events: Vec<(String, ContextEvent, VirtualTime)>,
}

fn workload(ids: &mut GuidGenerator, sensors: &[Guid]) -> Workload {
    let mut apps = Vec::new();
    let mut queries = Vec::new();
    for i in 0..RANGES {
        let app = ids.next_guid();
        queries.push(
            Query::builder(ids.next_guid(), app)
                .info(ContextType::Presence)
                .in_range(format!("range-{}", (i + 1) % RANGES))
                .mode(Mode::Subscribe)
                .build(),
        );
        apps.push(app);
    }
    let mut events = Vec::new();
    for k in 0..EVENTS_PER_RANGE {
        for (j, &sensor) in sensors.iter().enumerate().take(RANGES) {
            let t = VirtualTime::from_millis(1 + k * 100 + j as u64);
            events.push((
                format!("range-{j}"),
                ContextEvent::new(
                    sensor,
                    ContextType::Presence,
                    ContextValue::record([(
                        "subject",
                        ContextValue::Id(Guid::from_u128(u128::from(1000 + k * 10 + j as u64))),
                    )]),
                    t,
                ),
                t,
            ));
        }
    }
    Workload {
        apps,
        queries,
        events,
    }
}

/// Canonical multiset key for a batch of deliveries: sorted Debug
/// forms (`AppDelivery` has no `PartialEq`/`Ord`; both drivers draw
/// identical GUIDs from the same seeded generator, so the Debug form
/// is a faithful structural key).
fn delivery_keys(deliveries: Vec<AppDelivery>) -> Vec<String> {
    let mut keys: Vec<String> = deliveries.iter().map(|d| format!("{d:?}")).collect();
    keys.sort_unstable();
    keys
}

fn serial_deliveries() -> BTreeMap<Guid, Vec<String>> {
    let mut ids = GuidGenerator::seeded(71);
    let mut fed = Federation::new(3);
    let mut sensors = Vec::new();
    for i in 0..RANGES {
        let (cs, sensor) = server(i, &mut ids);
        sensors.push(sensor);
        fed.add_range(cs).unwrap();
    }
    fed.connect_full();
    let w = workload(&mut ids, &sensors);
    for (i, q) in w.queries.iter().enumerate() {
        let fa = fed
            .submit_from(&format!("range-{i}"), q, VirtualTime::ZERO)
            .unwrap();
        assert!(matches!(fa.answer, QueryAnswer::Subscribed { .. }));
    }
    for (range, ev, t) in &w.events {
        fed.ingest_at(range, ev, *t).unwrap();
    }
    w.apps
        .iter()
        .map(|&app| (app, delivery_keys(fed.deliveries_for(app))))
        .collect()
}

fn parallel_deliveries() -> BTreeMap<Guid, Vec<String>> {
    let mut ids = GuidGenerator::seeded(71);
    let mut fed = ParallelFederation::new(3);
    let mut sensors = Vec::new();
    for i in 0..RANGES {
        let (cs, sensor) = server(i, &mut ids);
        sensors.push(sensor);
        fed.add_range(cs).unwrap();
    }
    fed.connect_full();
    let w = workload(&mut ids, &sensors);
    for (i, q) in w.queries.iter().enumerate() {
        let fa = fed
            .submit_from(&format!("range-{i}"), q, VirtualTime::ZERO)
            .unwrap();
        assert!(matches!(fa.answer, QueryAnswer::Subscribed { .. }));
    }
    let mut last = VirtualTime::ZERO;
    for (range, ev, t) in &w.events {
        fed.ingest_at(range, ev, *t).unwrap();
        last = *t;
    }
    // The barrier: waits for every pipelined ingest, then relays.
    fed.sync(last).unwrap();
    let out = w
        .apps
        .iter()
        .map(|&app| (app, delivery_keys(fed.deliveries_for(app))))
        .collect();
    let survivors = fed.shutdown();
    assert_eq!(survivors.len(), RANGES, "all workers survive the run");
    out
}

#[test]
fn parallel_driver_matches_serial_deliveries() {
    let serial = serial_deliveries();
    let parallel = parallel_deliveries();
    assert_eq!(serial.len(), RANGES);
    for (app, keys) in &serial {
        assert_eq!(
            keys.len(),
            EVENTS_PER_RANGE as usize,
            "each app sees one delivery per event in its subscribed range"
        );
        assert_eq!(
            Some(keys),
            parallel.get(app),
            "delivery multiset diverges for app {app}"
        );
    }
    assert_eq!(serial, parallel);
}

/// The streaming fast path: events arrive as per-range batches
/// ([`ParallelFederation::ingest_batch_at`], one mailbox send each),
/// cross-range traffic is moved by free-running
/// [`ParallelFederation::pump_streams`] passes between batches, and a
/// final [`ParallelFederation::sync`] closes the run. The delivery
/// multiset must match the serial per-event driver exactly.
fn streaming_deliveries() -> BTreeMap<Guid, Vec<String>> {
    let mut ids = GuidGenerator::seeded(71);
    let mut fed = ParallelFederation::new(3);
    let mut sensors = Vec::new();
    for i in 0..RANGES {
        let (cs, sensor) = server(i, &mut ids);
        sensors.push(sensor);
        fed.add_range(cs).unwrap();
    }
    fed.connect_full();
    let w = workload(&mut ids, &sensors);
    for (i, q) in w.queries.iter().enumerate() {
        let fa = fed
            .submit_from(&format!("range-{i}"), q, VirtualTime::ZERO)
            .unwrap();
        assert!(matches!(fa.answer, QueryAnswer::Subscribed { .. }));
    }
    // Re-batch the interleaved event list per producing range, keeping
    // per-range order (what a real per-range sensor feed looks like).
    let mut batches: BTreeMap<String, Vec<ContextEvent>> = BTreeMap::new();
    let mut last = VirtualTime::ZERO;
    for (range, ev, t) in &w.events {
        batches.entry(range.clone()).or_default().push(ev.clone());
        last = (*t).max(last);
    }
    for (range, events) in &batches {
        fed.ingest_batch_at(range, events, last).unwrap();
        // Free-running pump: moves whatever has streamed so far; the
        // closing sync picks up the rest.
        fed.pump_streams(last).unwrap();
    }
    fed.sync(last).unwrap();
    let out = w
        .apps
        .iter()
        .map(|&app| (app, delivery_keys(fed.deliveries_for(app))))
        .collect();
    let snap = fed.snapshot();
    assert_eq!(
        snap.counter("federation.stream.events"),
        (RANGES as u64) * EVENTS_PER_RANGE,
        "every delivery travelled the relay stream"
    );
    let pumps = snap
        .histogram("federation.stream.pump_us")
        .map(|h| h.count)
        .unwrap_or(0);
    assert!(pumps >= batches.len() as u64, "each pump pass is timed");
    let survivors = fed.shutdown();
    assert_eq!(survivors.len(), RANGES, "all workers survive the run");
    out
}

#[test]
fn batched_streaming_matches_serial_deliveries() {
    let serial = serial_deliveries();
    let streamed = streaming_deliveries();
    assert_eq!(
        serial, streamed,
        "streaming changes relay timing, never the delivery multiset"
    );
}

#[test]
fn serial_batch_ingest_matches_per_event_ingest() {
    let mut ids = GuidGenerator::seeded(71);
    let mut fed = Federation::new(3);
    let mut sensors = Vec::new();
    for i in 0..RANGES {
        let (cs, sensor) = server(i, &mut ids);
        sensors.push(sensor);
        fed.add_range(cs).unwrap();
    }
    fed.connect_full();
    let w = workload(&mut ids, &sensors);
    for (i, q) in w.queries.iter().enumerate() {
        fed.submit_from(&format!("range-{i}"), q, VirtualTime::ZERO)
            .unwrap();
    }
    let mut batches: BTreeMap<String, Vec<ContextEvent>> = BTreeMap::new();
    let mut last = VirtualTime::ZERO;
    for (range, ev, t) in &w.events {
        batches.entry(range.clone()).or_default().push(ev.clone());
        last = (*t).max(last);
    }
    for (range, events) in &batches {
        fed.ingest_batch_at(range, events, last).unwrap();
    }
    let batched: BTreeMap<Guid, Vec<String>> = w
        .apps
        .iter()
        .map(|&app| (app, delivery_keys(fed.deliveries_for(app))))
        .collect();
    assert_eq!(serial_deliveries(), batched);
}

#[test]
fn blocking_mailbox_applies_backpressure_without_deadlock() {
    let mut ids = GuidGenerator::seeded(71);
    let mut fed = ParallelFederation::new(3).with_mailbox_policy(MailboxPolicy::Block(2));
    let (cs, sensor) = server(0, &mut ids);
    fed.add_range(cs).unwrap();
    fed.connect_full();

    // Local subscription: every ingest becomes one delivery.
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Presence)
        .mode(Mode::Subscribe)
        .build();
    fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();

    // Far more casts than the mailbox holds: producers must block on
    // the full mailbox and resume as the worker drains — never
    // deadlock, never lose a command.
    const EVENTS: u64 = 200;
    for k in 0..EVENTS {
        let t = VirtualTime::from_millis(k + 1);
        fed.ingest_at("range-0", &presence(sensor, u128::from(k), t), t)
            .unwrap();
    }
    fed.sync(VirtualTime::from_millis(EVENTS)).unwrap();
    assert_eq!(fed.deliveries_for(app).len(), EVENTS as usize);
    let snap = fed.snapshot();
    assert_eq!(snap.counter("range.mailbox.shed"), 0, "Block never sheds");
    // The gauge may transiently count the command the worker has taken
    // but not yet finished accounting, so the ceiling is capacity + 1.
    let high = snap.gauge("range.mailbox.highwater");
    assert!(
        (1..=3).contains(&high),
        "highwater {high} must stay within the bounded capacity (+1 in flight)"
    );
    fed.shutdown();
}

#[test]
fn shed_mailbox_drops_are_accounted_not_deadlocks() {
    let mut ids = GuidGenerator::seeded(71);
    let mut fed = ParallelFederation::new(3).with_mailbox_policy(MailboxPolicy::Shed(1));
    let (cs, sensor) = server(0, &mut ids);
    fed.add_range(cs).unwrap();
    fed.connect_full();

    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Presence)
        .mode(Mode::Subscribe)
        .build();
    // Request/response calls must never shed (their reply is awaited).
    fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();

    // One big batch occupies the worker, then a burst of single-event
    // casts overruns the one-slot mailbox: the overflow is shed and
    // accounted, the run completes.
    const BATCH: u64 = 2_000;
    const BURST: u64 = 50;
    let batch: Vec<ContextEvent> = (0..BATCH)
        .map(|k| presence(sensor, u128::from(k), VirtualTime::from_millis(k + 1)))
        .collect();
    fed.ingest_batch_at("range-0", &batch, VirtualTime::from_millis(BATCH))
        .unwrap();
    for k in 0..BURST {
        let t = VirtualTime::from_millis(BATCH + k + 1);
        fed.ingest_at("range-0", &presence(sensor, u128::from(BATCH + k), t), t)
            .unwrap();
    }
    fed.sync(VirtualTime::from_millis(BATCH + BURST)).unwrap();

    let delivered = fed.deliveries_for(app).len() as u64;
    let shed = fed.snapshot().counter("range.mailbox.shed");
    assert_eq!(
        delivered + shed,
        BATCH + BURST,
        "every event is either delivered or an accounted drop"
    );
    assert!(shed >= 1, "the burst must overrun a one-slot mailbox");
    assert!(shed <= BURST, "batched events never shed (one send)");
    fed.shutdown();
}

#[test]
fn shed_batches_are_accounted_whole_not_as_one() {
    let mut ids = GuidGenerator::seeded(71);
    let mut fed = ParallelFederation::new(3).with_mailbox_policy(MailboxPolicy::Shed(1));
    let (cs, sensor) = server(0, &mut ids);
    fed.add_range(cs).unwrap();
    fed.connect_full();

    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Presence)
        .mode(Mode::Subscribe)
        .build();
    fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();

    // A big batch occupies the worker, then a stream of whole batches
    // overruns the one-slot mailbox. A shed batch loses *all* its
    // events, so delivered + shed == sent only holds if the shed
    // counter is weighted by batch length, not bumped once per drop.
    const BIG: u64 = 4_000;
    const MINI: u64 = 100;
    const MINIS: u64 = 10;
    let big: Vec<ContextEvent> = (0..BIG)
        .map(|k| presence(sensor, u128::from(k), VirtualTime::from_millis(k + 1)))
        .collect();
    fed.ingest_batch_at("range-0", &big, VirtualTime::from_millis(BIG))
        .unwrap();
    for b in 0..MINIS {
        let t = VirtualTime::from_millis(BIG + b + 1);
        let mini: Vec<ContextEvent> = (0..MINI)
            .map(|k| presence(sensor, u128::from(BIG + b * MINI + k), t))
            .collect();
        fed.ingest_batch_at("range-0", &mini, t).unwrap();
    }
    fed.sync(VirtualTime::from_millis(BIG + MINIS)).unwrap();

    let delivered = fed.deliveries_for(app).len() as u64;
    let shed = fed.snapshot().counter("range.mailbox.shed");
    assert_eq!(
        delivered + shed,
        BIG + MINIS * MINI,
        "every event is either delivered or an accounted drop, \
         even when whole batches are shed"
    );
    assert_eq!(shed % MINI, 0, "sheds happen in whole batches of {MINI}");
    assert!(shed >= MINI, "the stream must overrun a one-slot mailbox");
    fed.shutdown();
}

#[test]
fn unknown_app_homing_is_counted_not_silent() {
    let mut ids = GuidGenerator::seeded(71);
    let mut fed = ParallelFederation::new(3);
    let (cs, sensor) = server(0, &mut ids);
    fed.add_range(cs).unwrap();
    fed.connect_full();

    // Subscribe through the raw command path: the coordinator never
    // learns the app's home range, so the produced deliveries hit the
    // unknown-app fallback.
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Presence)
        .mode(Mode::Subscribe)
        .build();
    let reply = fed
        .command(
            "range-0",
            RangeCommand::Submit(Box::new(q)),
            VirtualTime::ZERO,
        )
        .unwrap();
    assert!(matches!(
        reply,
        RangeReply::Answer(QueryAnswer::Subscribed { .. })
    ));

    let t = VirtualTime::from_secs(1);
    fed.ingest_at("range-0", &presence(sensor, 9, t), t)
        .unwrap();
    fed.sync(t).unwrap();

    assert_eq!(fed.relay_unknown_app(), 1, "the homing decision is counted");
    assert_eq!(fed.snapshot().counter("federation.relay.unknown_app"), 1);
    // The delivery itself is kept at the producing range, not dropped.
    assert_eq!(fed.deliveries_for(app).len(), 1);
    fed.shutdown();
}

#[test]
fn worker_panic_is_contained_to_its_range() {
    let mut ids = GuidGenerator::seeded(71);
    let mut fed = ParallelFederation::new(3);

    // range-0 hosts a software CE whose logic panics on first event.
    let (mut cs0, sensor0) = server(0, &mut ids);
    let bomb = ids.next_guid();
    cs0.register(
        Profile::builder(bomb, EntityKind::Software, "bomb")
            .input(PortSpec::new("in", ContextType::Presence))
            .output(PortSpec::new("out", ContextType::Temperature))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    struct PanicLogic;
    impl sci::core::logic::EntityLogic for PanicLogic {
        fn on_event(
            &mut self,
            _event: &ContextEvent,
            _binding: &Metadata,
            _now: VirtualTime,
        ) -> Vec<(ContextType, ContextValue)> {
            panic!("logic bomb")
        }
    }
    cs0.register_logic(bomb, factory(|| PanicLogic));
    fed.add_range(cs0).unwrap();
    let (cs1, _sensor1) = server(1, &mut ids);
    fed.add_range(cs1).unwrap();
    fed.connect_full();

    // Subscribing to temperature instantiates the bomb configuration.
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Temperature)
        .mode(Mode::Subscribe)
        .build();
    fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();

    // The triggering ingest is a pipelined cast: it is accepted, the
    // panic happens inside range-0's worker, and the next barrier
    // surfaces it as RangeDown.
    let ev = ContextEvent::new(
        sensor0,
        ContextType::Presence,
        ContextValue::record([("subject", ContextValue::Id(ids.next_guid()))]),
        VirtualTime::from_secs(1),
    );
    fed.ingest_at("range-0", &ev, VirtualTime::from_secs(1))
        .unwrap();
    let res = fed.sync(VirtualTime::from_secs(1));
    assert!(
        matches!(res, Err(SciError::RangeDown(ref name)) if name == "range-0"),
        "got {res:?}"
    );

    // The sibling range keeps serving queries.
    let app2 = ids.next_guid();
    let q2 = Query::builder(ids.next_guid(), app2)
        .kind(EntityKind::Device)
        .all()
        .mode(Mode::Profile)
        .build();
    let fa = fed
        .submit_from("range-1", &q2, VirtualTime::from_secs(2))
        .unwrap();
    match fa.answer {
        QueryAnswer::Profiles(ps) => assert_eq!(ps.len(), 1),
        other => panic!("unexpected {other:?}"),
    }

    // The dead range fails fast on every further command.
    assert!(matches!(
        fed.command("range-0", RangeCommand::Audit, VirtualTime::from_secs(2)),
        Err(SciError::RangeDown(_))
    ));

    // Shutdown hands back only the survivor's state.
    let survivors = fed.shutdown();
    assert_eq!(survivors.len(), 1);
    assert_eq!(survivors[0].name(), "range-1");
}

/// Logic that panics on its first event only; later instances (sharing
/// the fuse) compute normally. Models a crash caused by one poisoned
/// input rather than a persistent defect.
struct PanicOnceLogic {
    fuse: Arc<AtomicUsize>,
}

impl sci::core::logic::EntityLogic for PanicOnceLogic {
    fn on_event(
        &mut self,
        _event: &ContextEvent,
        _binding: &Metadata,
        _now: VirtualTime,
    ) -> Vec<(ContextType, ContextValue)> {
        if self.fuse.fetch_add(1, Ordering::SeqCst) == 0 {
            panic!("poisoned first event")
        }
        vec![(ContextType::Temperature, ContextValue::text("21.5C"))]
    }
}

/// Builds a supervised federation whose `range-0` composition graph is
/// assembled *through* range commands (so the restart blueprint records
/// it), wired to the given logic factory.
fn supervised_rig(
    policy: RestartPolicy,
    logic: sci::core::logic::LogicFactory,
) -> (ParallelFederation, GuidGenerator, Guid, Guid) {
    let mut ids = GuidGenerator::seeded(71);
    let mut fed = ParallelFederation::new(3).with_restart_policy(policy);
    fed.add_range(ContextServer::new(
        ids.next_guid(),
        "range-0",
        range_plan(0),
    ))
    .unwrap();
    let (cs1, _) = server(1, &mut ids);
    fed.add_range(cs1).unwrap();
    fed.connect_full();

    // The composition graph arrives as commands: sensor, derived CE,
    // its logic. All of it lands in the blueprint.
    let sensor = ids.next_guid();
    fed.command(
        "range-0",
        RangeCommand::Register(Box::new(
            Profile::builder(sensor, EntityKind::Device, "sensor-0")
                .output(PortSpec::new("presence", ContextType::Presence))
                .build(),
        )),
        VirtualTime::ZERO,
    )
    .unwrap();
    let ce = ids.next_guid();
    fed.command(
        "range-0",
        RangeCommand::Register(Box::new(
            Profile::builder(ce, EntityKind::Software, "deriver")
                .input(PortSpec::new("in", ContextType::Presence))
                .output(PortSpec::new("out", ContextType::Temperature))
                .build(),
        )),
        VirtualTime::ZERO,
    )
    .unwrap();
    fed.command(
        "range-0",
        RangeCommand::RegisterLogic(ce, logic),
        VirtualTime::ZERO,
    )
    .unwrap();
    (fed, ids, sensor, ce)
}

fn presence(sensor: Guid, subject: u128, at: VirtualTime) -> ContextEvent {
    ContextEvent::new(
        sensor,
        ContextType::Presence,
        ContextValue::record([("subject", ContextValue::Id(Guid::from_u128(subject)))]),
        at,
    )
}

#[test]
fn supervised_restart_revives_range_and_resubscribes_blueprint() {
    let fuse = Arc::new(AtomicUsize::new(0));
    let fuse2 = Arc::clone(&fuse);
    let (mut fed, mut ids, sensor, _ce) = supervised_rig(
        RestartPolicy::bounded(2),
        factory(move || PanicOnceLogic {
            fuse: Arc::clone(&fuse2),
        }),
    );

    // The subscription is a range command too, so the blueprint
    // replays it after a restart.
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Temperature)
        .mode(Mode::Subscribe)
        .build();
    let fa = fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
    assert!(matches!(fa.answer, QueryAnswer::Subscribed { .. }));

    // First event: the logic panics, the worker dies, the barrier that
    // observes the crash reports RangeDown — then the supervisor
    // restarts the range and replays the blueprint.
    fed.ingest_at(
        "range-0",
        &presence(sensor, 1, VirtualTime::from_secs(1)),
        VirtualTime::from_secs(1),
    )
    .unwrap();
    assert!(matches!(
        fed.sync(VirtualTime::from_secs(1)),
        Err(SciError::RangeDown(ref name)) if name == "range-0"
    ));
    assert_eq!(fed.restarts_of("range-0"), Some(1));

    // The revived range serves queries again...
    let probe = Query::builder(ids.next_guid(), app)
        .kind(EntityKind::Device)
        .all()
        .mode(Mode::Profile)
        .build();
    let fa = fed
        .submit_from("range-0", &probe, VirtualTime::from_secs(2))
        .unwrap();
    match fa.answer {
        QueryAnswer::Profiles(ps) => {
            assert_eq!(ps.len(), 1, "registrations were replayed");
        }
        other => panic!("unexpected {other:?}"),
    }

    // ...and the replayed subscription is live: the next event flows
    // through the (no longer panicking) logic to the app.
    fed.ingest_at(
        "range-0",
        &presence(sensor, 2, VirtualTime::from_secs(3)),
        VirtualTime::from_secs(3),
    )
    .unwrap();
    fed.sync(VirtualTime::from_secs(3)).unwrap();
    let deliveries = fed.deliveries_for(app);
    assert_eq!(deliveries.len(), 1, "resubscribed graph delivers");
    assert_eq!(deliveries[0].event.topic, ContextType::Temperature);

    // The restart is visible in telemetry, and both workers survive.
    assert_eq!(fed.snapshot().counter("range.restarts"), 1);
    let survivors = fed.shutdown();
    assert_eq!(survivors.len(), 2);
}

#[test]
fn restart_budget_exhausts_back_to_fail_stop() {
    struct AlwaysPanicLogic;
    impl sci::core::logic::EntityLogic for AlwaysPanicLogic {
        fn on_event(
            &mut self,
            _event: &ContextEvent,
            _binding: &Metadata,
            _now: VirtualTime,
        ) -> Vec<(ContextType, ContextValue)> {
            panic!("persistent defect")
        }
    }
    let (mut fed, mut ids, sensor, _ce) =
        supervised_rig(RestartPolicy::bounded(1), factory(|| AlwaysPanicLogic));
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Temperature)
        .mode(Mode::Subscribe)
        .build();
    fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();

    // Crash #1: restart budget covers it.
    fed.ingest_at(
        "range-0",
        &presence(sensor, 1, VirtualTime::from_secs(1)),
        VirtualTime::from_secs(1),
    )
    .unwrap();
    assert!(fed.sync(VirtualTime::from_secs(1)).is_err());
    assert_eq!(fed.restarts_of("range-0"), Some(1));

    // Crash #2: the defect persists, the budget is spent — the range
    // degrades to fail-stop and stays down.
    fed.ingest_at(
        "range-0",
        &presence(sensor, 2, VirtualTime::from_secs(2)),
        VirtualTime::from_secs(2),
    )
    .unwrap();
    assert!(fed.sync(VirtualTime::from_secs(2)).is_err());
    assert_eq!(fed.restarts_of("range-0"), Some(1), "budget not exceeded");
    assert!(matches!(
        fed.command("range-0", RangeCommand::Audit, VirtualTime::from_secs(3)),
        Err(SciError::RangeDown(_))
    ));

    // The sibling is untouched either way.
    let fa = fed
        .submit_from(
            "range-1",
            &Query::builder(ids.next_guid(), app)
                .kind(EntityKind::Device)
                .all()
                .mode(Mode::Profile)
                .build(),
            VirtualTime::from_secs(3),
        )
        .unwrap();
    assert!(matches!(fa.answer, QueryAnswer::Profiles(_)));
    let survivors = fed.shutdown();
    assert_eq!(survivors.len(), 1);
    assert_eq!(survivors[0].name(), "range-1");
}
