//! The chaos-run harness, generic over the wrapped transport.
//!
//! One federated relay scenario — three ranges, cross-range presence
//! subscriptions, twenty events under a seeded fault schedule, heal,
//! pump to quiescence — expressed once over
//! `FaultyTransport<T>` for any [`Transport`] `T`:
//!
//! * `tests/chaos_federation.rs` drives it over the in-process
//!   [`SimNetwork`];
//! * `tests/tcp_federation.rs` drives the *identical* logic over
//!   [`TcpTransport`] — real loopback sockets — and compares outcomes
//!   field for field. The fault layer draws its PRNG per call, so the
//!   same seed produces the same injected schedule on both wires; the
//!   socket transport's acked sends make delivery timing a pure
//!   function of the call sequence, which is what makes the
//!   comparison exact rather than statistical.
#![allow(dead_code)]

use sci::prelude::*;

/// What a chaos run produced, reduced to comparable data.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Outcome {
    /// Sorted multiset of final deliveries (app, query, event).
    pub deliveries: Vec<String>,
    /// Receiver-side duplicate envelopes caught.
    pub dedup_hits: u64,
    /// Relay retransmissions attempted.
    pub retry_attempts: u64,
}

/// One wing + hall per range, disjoint per index.
pub fn range_plan(i: usize) -> FloorPlan {
    FloorPlan::builder("campus")
        .zone(format!("wing-{i}"))
        .room(
            format!("hall-{i}"),
            Rect::with_size(Coord::new(0.0, 0.0), 20.0, 10.0),
        )
        .build()
        .unwrap()
}

/// Drains the app's deliveries into a comparable string multiset.
pub fn collect<T: Transport>(
    fed: &mut Federation<FaultyTransport<T>>,
    app: Guid,
    into: &mut Vec<String>,
) {
    for d in fed.deliveries_for(app) {
        into.push(format!(
            "{}|{}|{}|{:?}",
            d.app, d.query, d.event.timestamp, d.event.payload
        ));
    }
}

/// Three ranges over `inner` wrapped in a seeded fault proxy; one app
/// homed in `range-0` subscribed to presence in `range-1` and
/// `range-2`; 20 events ingested under `probs`, then the transport
/// heals and the federation pumps to quiescence.
pub fn run_with<T: Transport>(inner: T, seed: u64, probs: FaultProbs) -> Outcome {
    let mut ids = GuidGenerator::seeded(0xc0ffee);
    let mut fed: Federation<FaultyTransport<T>> =
        Federation::with_transport(FaultyTransport::new(inner, seed), 7);
    let mut sensors = Vec::new();
    for i in 0..3usize {
        let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
        let sensor = ids.next_guid();
        cs.register(
            Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
                .output(PortSpec::new("presence", ContextType::Presence))
                .build(),
            VirtualTime::ZERO,
        )
        .unwrap();
        sensors.push(sensor);
        fed.add_range(cs).unwrap();
    }
    fed.connect_full();

    // Clean phase: the app subscribes across the overlay.
    let app = ids.next_guid();
    for target in ["range-1", "range-2"] {
        let q = Query::builder(ids.next_guid(), app)
            .info(ContextType::Presence)
            .in_range(target)
            .mode(Mode::Subscribe)
            .build();
        let fa = fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
        assert!(
            matches!(fa.answer, QueryAnswer::Subscribed { .. }),
            "seed {seed}: subscription failed before any fault was injected"
        );
    }

    // Chaos phase: every relay now crosses a faulty link.
    fed.transport_mut().set_default_probs(probs);
    let mut deliveries: Vec<String> = Vec::new();
    for k in 0..10u64 {
        let now = VirtualTime::from_secs(k + 1);
        for (i, target) in ["range-1", "range-2"].iter().enumerate() {
            let ev = ContextEvent::new(
                sensors[i + 1],
                ContextType::Presence,
                ContextValue::record([(
                    "subject",
                    ContextValue::Id(Guid::from_u128(1_000 + u128::from(k))),
                )]),
                now,
            );
            fed.ingest_at(target, &ev, now).unwrap();
        }
        collect(&mut fed, app, &mut deliveries);
    }

    // Eventual connectivity: heal and pump to quiescence.
    fed.transport_mut().heal();
    for step in 0..64u64 {
        if fed.pending_relay_count() == 0 && fed.transport().delayed_len() == 0 {
            break;
        }
        fed.pump(VirtualTime::from_secs(100 + step)).unwrap();
        collect(&mut fed, app, &mut deliveries);
    }
    assert_eq!(
        fed.pending_relay_count(),
        0,
        "seed {seed}: relays still parked after the network healed"
    );
    // One last pump so the final sweep lands everything.
    fed.pump(VirtualTime::from_secs(200)).unwrap();
    collect(&mut fed, app, &mut deliveries);

    deliveries.sort_unstable();
    Outcome {
        deliveries,
        dedup_hits: fed.relay_dedup_hits(),
        retry_attempts: fed.retry_attempts(),
    }
}

/// Seeds for the fixed matrix: `SCI_CHAOS_SEEDS` (comma-separated)
/// overrides the default set, so CI pins the schedules it replays.
pub fn matrix_seeds() -> Vec<u64> {
    seeds_from_env("SCI_CHAOS_SEEDS", &[1, 2, 3, 5, 8, 13, 21, 34, 55, 89])
}

/// Seeds for the socket-parity matrix: `SCI_TCP_PARITY_SEEDS`
/// overrides. The default is a subset of the chaos matrix — each seed
/// runs the scenario twice (sim and sockets), so the pinned set stays
/// small and the nightly sweep widens it.
pub fn parity_seeds() -> Vec<u64> {
    seeds_from_env("SCI_TCP_PARITY_SEEDS", &[1, 2, 3, 5, 8])
}

fn seeds_from_env(var: &str, default: &[u64]) -> Vec<u64> {
    std::env::var(var)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}
