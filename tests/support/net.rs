//! Socket-test policy: every listener binds `127.0.0.1:0`.
//!
//! The kernel picks a free ephemeral port per node, so parallel test
//! processes (cargo runs integration tests concurrently) never race
//! for an address. [`TcpTransport`] hard-codes that bind itself; the
//! helpers here let tests assert the policy instead of trusting it.
#![allow(dead_code)]

use std::net::SocketAddr;

use sci::prelude::*;

/// A fresh socket transport. Every node added to it binds
/// `127.0.0.1:0` by construction.
pub fn tcp() -> TcpTransport {
    TcpTransport::new()
}

/// Asserts `addr` follows the test policy: loopback, with a real
/// kernel-assigned port (never 0, never a well-known port).
pub fn assert_loopback_ephemeral(addr: SocketAddr) {
    assert!(
        addr.ip().is_loopback(),
        "socket tests must stay on loopback, got {addr}"
    );
    assert!(
        addr.port() >= 1024,
        "port must be kernel-assigned and unprivileged, got {addr}"
    );
}
