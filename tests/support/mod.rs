//! Shared helpers for integration tests. Not a test crate itself:
//! each `tests/*.rs` crate that needs these declares `mod support;`
//! and compiles its own copy.

pub mod chaos;
pub mod net;
