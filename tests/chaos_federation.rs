//! Chaos suite: federated event relay under a seeded fault schedule.
//!
//! A [`FaultyTransport`] wraps the federation's overlay and injects
//! drops, ack losses, delays, duplicates and reorders, all replayable
//! from a single `u64` seed. The reliable-relay envelope protocol
//! (per-origin sequence numbers, retry with exponential backoff,
//! receiver-side dedup) must turn that at-least-once soup back into
//! exactly-once delivery:
//!
//! * under **any** seeded schedule with eventual connectivity, the
//!   final delivery multiset equals the fault-free run's;
//! * with `ack_loss = 1.0` every "failed" send actually lands, so the
//!   dedup counter must equal the retransmission counter *exactly* —
//!   one accepted copy per envelope, every extra copy caught.
//!
//! The scenario itself lives in `support::chaos` so the socket suite
//! (`tests/tcp_federation.rs`) can run the identical logic over
//! [`TcpTransport`]; here it runs over the in-process [`SimNetwork`].
//!
//! The fixed-seed matrix honours `SCI_CHAOS_SEEDS` (comma-separated
//! `u64`s) so CI can pin the schedule set; failures always print the
//! seed that provoked them.

mod support;

use proptest::prelude::*;
use sci::prelude::*;
use support::chaos::{collect, matrix_seeds, range_plan, run_with, Outcome};

type ChaosFed = Federation<FaultyTransport<SimNetwork>>;

/// The canonical scenario over the in-process overlay.
fn run(seed: u64, probs: FaultProbs) -> Outcome {
    run_with(SimNetwork::new(), seed, probs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exactly-once despite chaos: whatever the seeded schedule does
    /// (drops, ack losses, delays, duplicates, reorders), once
    /// connectivity returns the app has received exactly the fault-free
    /// delivery multiset — nothing lost, nothing duplicated.
    #[test]
    fn chaotic_delivery_matches_fault_free_run(seed in any::<u64>()) {
        let clean = run(seed, FaultProbs::NONE);
        let chaos = run(seed, FaultProbs::lossy(0.3));
        prop_assert_eq!(
            &chaos.deliveries,
            &clean.deliveries,
            "delivery multiset diverged under chaos seed {}",
            seed
        );
        prop_assert_eq!(clean.retry_attempts, 0);
        prop_assert_eq!(clean.dedup_hits, 0);
    }

    /// A chaos schedule is a pure function of its seed: replaying the
    /// same seed reproduces the identical outcome, counters included.
    #[test]
    fn same_seed_replays_identically(seed in any::<u64>()) {
        let a = run(seed, FaultProbs::lossy(0.25));
        let b = run(seed, FaultProbs::lossy(0.25));
        prop_assert_eq!(a.deliveries, b.deliveries, "seed {} did not replay", seed);
        prop_assert_eq!(a.dedup_hits, b.dedup_hits);
        prop_assert_eq!(a.retry_attempts, b.retry_attempts);
    }
}

/// The acceptance invariant, on the pinned seed matrix: with
/// `ack_loss = 1.0` every send attempt delivers a copy, so the
/// receiver-side dedup counter must equal the retransmission counter
/// exactly — the at-least-once surplus, fully accounted.
#[test]
fn dedup_hits_equal_retransmissions_under_total_ack_loss() {
    let mut exercised = false;
    for seed in matrix_seeds() {
        let probs = FaultProbs {
            drop: 0.4,
            ack_loss: 1.0,
            ..FaultProbs::NONE
        };
        let chaos = run(seed, probs);
        assert_eq!(
            chaos.dedup_hits, chaos.retry_attempts,
            "seed {seed}: dedup hits must equal retransmissions exactly"
        );
        let clean = run(seed, FaultProbs::NONE);
        assert_eq!(
            chaos.deliveries, clean.deliveries,
            "seed {seed}: zero duplicate deliveries must reach the app"
        );
        exercised |= chaos.retry_attempts > 0;
    }
    assert!(
        exercised,
        "at 40% drop, at least one matrix seed must provoke a retransmission"
    );
}

/// A named partition isolates a producing range mid-stream; its relays
/// park instead of vanishing, and delivery completes after the heal.
#[test]
fn partitioned_relays_park_and_deliver_after_heal() {
    for seed in matrix_seeds().into_iter().take(4) {
        let clean = run(seed, FaultProbs::NONE);

        // Same topology, but rebuilt by hand so the partition can be
        // applied between ingests.
        let mut ids = GuidGenerator::seeded(0xc0ffee);
        let mut fed: ChaosFed =
            Federation::with_transport(FaultyTransport::new(SimNetwork::new(), seed), 7);
        let mut sensors = Vec::new();
        let mut nodes = Vec::new();
        for i in 0..3usize {
            let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
            let sensor = ids.next_guid();
            cs.register(
                Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
                    .output(PortSpec::new("presence", ContextType::Presence))
                    .build(),
                VirtualTime::ZERO,
            )
            .unwrap();
            sensors.push(sensor);
            nodes.push(fed.add_range(cs).unwrap());
        }
        fed.connect_full();
        let app = ids.next_guid();
        for target in ["range-1", "range-2"] {
            let q = Query::builder(ids.next_guid(), app)
                .info(ContextType::Presence)
                .in_range(target)
                .mode(Mode::Subscribe)
                .build();
            fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
        }

        // range-1 is islanded for the whole stream: its relays must
        // park (retry budget exhausted) rather than disappear.
        fed.transport_mut().partition("island", &[nodes[1]]);
        let mut deliveries = Vec::new();
        for k in 0..10u64 {
            let now = VirtualTime::from_secs(k + 1);
            for (i, target) in ["range-1", "range-2"].iter().enumerate() {
                let ev = ContextEvent::new(
                    sensors[i + 1],
                    ContextType::Presence,
                    ContextValue::record([(
                        "subject",
                        ContextValue::Id(Guid::from_u128(1_000 + u128::from(k))),
                    )]),
                    now,
                );
                fed.ingest_at(target, &ev, now).unwrap();
            }
            collect(&mut fed, app, &mut deliveries);
        }
        assert!(
            fed.retry_parked() > 0,
            "seed {seed}: islanded relays should have been parked"
        );

        fed.transport_mut().heal();
        for step in 0..64u64 {
            if fed.pending_relay_count() == 0 {
                break;
            }
            fed.pump(VirtualTime::from_secs(100 + step)).unwrap();
            collect(&mut fed, app, &mut deliveries);
        }
        fed.pump(VirtualTime::from_secs(200)).unwrap();
        collect(&mut fed, app, &mut deliveries);

        deliveries.sort_unstable();
        assert_eq!(
            deliveries, clean.deliveries,
            "seed {seed}: partition must delay, not lose or duplicate"
        );
    }
}

/// The federation snapshot folds the fault layer's injection counters
/// and the recovery counters into one telemetry view.
#[test]
fn snapshot_unifies_fault_and_recovery_counters() {
    let chaos = {
        let mut ids = GuidGenerator::seeded(0xc0ffee);
        let mut fed: ChaosFed =
            Federation::with_transport(FaultyTransport::new(SimNetwork::new(), 42), 7);
        let mut sensors = Vec::new();
        for i in 0..2usize {
            let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
            let sensor = ids.next_guid();
            cs.register(
                Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
                    .output(PortSpec::new("presence", ContextType::Presence))
                    .build(),
                VirtualTime::ZERO,
            )
            .unwrap();
            sensors.push(sensor);
            fed.add_range(cs).unwrap();
        }
        fed.connect_full();
        let app = ids.next_guid();
        let q = Query::builder(ids.next_guid(), app)
            .info(ContextType::Presence)
            .in_range("range-1")
            .mode(Mode::Subscribe)
            .build();
        fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
        fed.transport_mut().set_default_probs(FaultProbs {
            drop: 1.0,
            ack_loss: 1.0,
            ..FaultProbs::NONE
        });
        let ev = ContextEvent::new(
            sensors[1],
            ContextType::Presence,
            ContextValue::record([("subject", ContextValue::Id(Guid::from_u128(2)))]),
            VirtualTime::from_secs(1),
        );
        fed.ingest_at("range-1", &ev, VirtualTime::from_secs(1))
            .unwrap();
        fed.snapshot()
    };
    assert!(
        chaos.counter("fault.drops") > 0,
        "snapshot must fold the fault layer's injection counters"
    );
    assert_eq!(
        chaos.counter("federation.relay.dedup_hits"),
        chaos.counter("federation.retry.attempts"),
        "exactly-once accounting surfaces through telemetry too"
    );
}
