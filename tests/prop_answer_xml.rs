//! Property tests: the federation's QueryAnswer wire codec round-trips
//! every variant, including names that need XML escaping and
//! subscriptions with no producers.

use proptest::prelude::*;
use sci::core::federation::{answer_from_xml, answer_to_xml};
use sci::prelude::*;

fn arb_guid() -> impl Strategy<Value = Guid> {
    any::<u128>().prop_map(Guid::from_u128)
}

/// Names as they appear on the wire (XML attribute values). Half the
/// cases deliberately contain `<`, `&`, `"` and `'` so the codec's
/// escaping is exercised; all cases are trim-stable.
fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z0-9-]{0,11}".prop_map(|s| s),
        "[a-z]{1,6}".prop_map(|s| format!("{s}<&\">'{s}")),
    ]
}

fn arb_context_type() -> impl Strategy<Value = ContextType> {
    prop_oneof![
        Just(ContextType::Identity),
        Just(ContextType::Presence),
        Just(ContextType::Location),
        Just(ContextType::Temperature),
        "[a-z][a-z0-9-]{0,10}".prop_map(ContextType::Custom),
    ]
}

fn arb_profile() -> impl Strategy<Value = Profile> {
    (
        arb_guid(),
        prop_oneof![
            Just(EntityKind::Person),
            Just(EntityKind::Software),
            Just(EntityKind::Place),
            Just(EntityKind::Device),
            Just(EntityKind::Artifact),
        ],
        arb_name(),
        prop::collection::vec(("[a-z]{1,8}", arb_context_type()), 0..3),
        prop::collection::vec(("[a-z]{1,8}", arb_context_type()), 0..3),
        prop::collection::vec(("[a-z]{1,8}", arb_name()), 0..3),
    )
        .prop_map(|(id, kind, name, inputs, outputs, attrs)| {
            let mut b = Profile::builder(id, kind, name);
            for (port, ty) in inputs {
                b = b.input(PortSpec::new(port, ty));
            }
            for (port, ty) in outputs {
                b = b.output(PortSpec::new(port, ty));
            }
            for (key, value) in attrs {
                b = b.attribute(key, ContextValue::Text(value));
            }
            b.build()
        })
}

fn arb_advertisement() -> impl Strategy<Value = Advertisement> {
    (
        arb_guid(),
        arb_name(),
        prop::collection::vec(
            (
                "[a-z]{1,8}",
                prop::collection::vec(arb_context_type(), 0..3),
                prop::option::of(arb_context_type()),
            ),
            0..3,
        ),
        prop::collection::vec(("[a-z]{1,8}", arb_name()), 0..3),
    )
        .prop_map(|(provider, interface, ops, attrs)| {
            let mut ad = Advertisement::new(provider, interface);
            for (name, params, returns) in ops {
                ad = ad.with_operation(sci::types::Operation::new(name, params, returns));
            }
            for (key, value) in attrs {
                ad = ad.with_attribute(key, ContextValue::Text(value));
            }
            ad
        })
}

fn arb_base_answer() -> impl Strategy<Value = QueryAnswer> {
    prop_oneof![
        prop::collection::vec(arb_profile(), 0..4).prop_map(QueryAnswer::Profiles),
        prop::collection::vec(arb_advertisement(), 0..4).prop_map(QueryAnswer::Advertisements),
        // 0..4 producers: the empty-producer subscription is a real
        // case (a configuration serving purely from history).
        (arb_guid(), prop::collection::vec(arb_guid(), 0..4)).prop_map(
            |(configuration, producers)| QueryAnswer::Subscribed {
                configuration,
                producers,
            }
        ),
        Just(QueryAnswer::Deferred),
        arb_name().prop_map(|range| QueryAnswer::Forward { range }),
    ]
}

fn arb_answer() -> impl Strategy<Value = QueryAnswer> {
    prop_oneof![
        arb_base_answer(),
        // Degraded answers nest any base answer (one level deep on the
        // wire today; the codec itself is fully recursive).
        (arb_base_answer(), arb_name(), arb_name()).prop_map(|(inner, missing_range, reason)| {
            QueryAnswer::Partial {
                answer: Box::new(inner),
                missing_range,
                reason,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every answer survives serialise → parse → serialise unchanged.
    /// (QueryAnswer carries no PartialEq, so equality is checked on the
    /// canonical wire form, as the federation itself does.)
    #[test]
    fn answer_codec_roundtrip(answer in arb_answer()) {
        let xml = answer_to_xml(&answer);
        let back = answer_from_xml(&xml).unwrap();
        prop_assert_eq!(answer_to_xml(&back), xml);
    }

    /// Parsing arbitrary junk never panics.
    #[test]
    fn answer_parser_never_panics(s in ".{0,200}") {
        let _ = answer_from_xml(&s);
    }
}

/// The exhaustive fixed cases the property generator is built around:
/// one of each variant, hostile names, empty producers.
#[test]
fn answer_codec_covers_every_variant() {
    let cases = vec![
        QueryAnswer::Profiles(Vec::new()),
        QueryAnswer::Advertisements(Vec::new()),
        QueryAnswer::Subscribed {
            configuration: Guid::from_u128(9),
            producers: Vec::new(),
        },
        QueryAnswer::Deferred,
        QueryAnswer::Forward {
            range: "a<&\">'b".into(),
        },
        QueryAnswer::Partial {
            answer: Box::new(QueryAnswer::Forward {
                range: "level<&ten".into(),
            }),
            missing_range: "level<&ten".into(),
            reason: "unroutable".into(),
        },
    ];
    for answer in cases {
        let xml = answer_to_xml(&answer);
        let back = answer_from_xml(&xml).unwrap();
        assert_eq!(answer_to_xml(&back), xml, "unstable round trip: {xml}");
    }
}
