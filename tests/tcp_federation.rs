//! Bytes-on-the-wire federation: the overlay scenarios over real
//! loopback sockets.
//!
//! [`TcpTransport`] implements [`Transport`] over actual TCP streams
//! framed by the `sci-wal` codec, so the federation stack runs here
//! *unchanged* — same `Federation`, same relay protocol, same chaos
//! harness. The suite checks three things the in-process overlay
//! cannot:
//!
//! * **oracle equality** — a 4-range federation over sockets produces
//!   the exact delivery multiset the [`SimNetwork`] run produces;
//! * **chaos parity** — the seeded fault proxy wrapped around sockets
//!   replays the same injected schedule as around the simulator, so
//!   the whole chaos outcome (deliveries *and* retry/dedup counters)
//!   matches field for field, and the same seed replays identically
//!   on real sockets;
//! * **wire-only behaviour** — peering version negotiation rejects
//!   mismatched nodes, and a late joiner converges its registration
//!   store through anti-entropy rather than a full-state push.
//!
//! Every listener binds `127.0.0.1:0` (see `support::net`), so
//! parallel test processes never collide on a port.

mod support;

use sci::overlay::TCP_PROTOCOL_VERSION;
use sci::prelude::*;
use support::chaos::{parity_seeds, range_plan, run_with, Outcome};
use support::net::{assert_loopback_ephemeral, tcp};

/// A 4-range federation over a bare transport: an app homed in
/// `range-0` subscribes to presence in the other three ranges, each
/// remote range ingests five events, and the sorted delivery multiset
/// comes back. Generic so the socket run and the simulator oracle are
/// literally the same code.
fn run_four_ranges<T: Transport>(inner: T) -> Vec<String> {
    let mut ids = GuidGenerator::seeded(0xfeed);
    let mut fed: Federation<T> = Federation::with_transport(inner, 7);
    let mut sensors = Vec::new();
    for i in 0..4usize {
        let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
        let sensor = ids.next_guid();
        cs.register(
            Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
                .output(PortSpec::new("presence", ContextType::Presence))
                .build(),
            VirtualTime::ZERO,
        )
        .unwrap();
        sensors.push(sensor);
        fed.add_range(cs).unwrap();
    }
    fed.connect_full();

    let app = ids.next_guid();
    for target in ["range-1", "range-2", "range-3"] {
        let q = Query::builder(ids.next_guid(), app)
            .info(ContextType::Presence)
            .in_range(target)
            .mode(Mode::Subscribe)
            .build();
        let fa = fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
        assert!(matches!(fa.answer, QueryAnswer::Subscribed { .. }));
    }

    let mut deliveries = Vec::new();
    for k in 0..5u64 {
        let now = VirtualTime::from_secs(k + 1);
        for (i, target) in ["range-1", "range-2", "range-3"].iter().enumerate() {
            let ev = ContextEvent::new(
                sensors[i + 1],
                ContextType::Presence,
                ContextValue::record([(
                    "subject",
                    ContextValue::Id(Guid::from_u128(1_000 + u128::from(k))),
                )]),
                now,
            );
            fed.ingest_at(target, &ev, now).unwrap();
        }
        drain(&mut fed, app, &mut deliveries);
    }
    for step in 0..64u64 {
        if fed.pending_relay_count() == 0 {
            break;
        }
        fed.pump(VirtualTime::from_secs(100 + step)).unwrap();
        drain(&mut fed, app, &mut deliveries);
    }
    assert_eq!(fed.pending_relay_count(), 0, "relays must quiesce");
    fed.pump(VirtualTime::from_secs(200)).unwrap();
    drain(&mut fed, app, &mut deliveries);

    deliveries.sort_unstable();
    deliveries
}

fn drain<T: Transport>(fed: &mut Federation<T>, app: Guid, into: &mut Vec<String>) {
    for d in fed.deliveries_for(app) {
        into.push(format!(
            "{}|{}|{}|{:?}",
            d.app, d.query, d.event.timestamp, d.event.payload
        ));
    }
}

/// Two ranges over real sockets: a subscription crosses the wire, an
/// event relays back, and every listener followed the port-0 policy.
#[test]
fn two_range_federation_delivers_over_loopback() {
    let mut ids = GuidGenerator::seeded(0xfeed);
    let mut fed: Federation<TcpTransport> = Federation::with_transport(tcp(), 7);
    let mut sensors = Vec::new();
    let mut nodes = Vec::new();
    for i in 0..2usize {
        let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
        let sensor = ids.next_guid();
        cs.register(
            Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
                .output(PortSpec::new("presence", ContextType::Presence))
                .build(),
            VirtualTime::ZERO,
        )
        .unwrap();
        sensors.push(sensor);
        nodes.push(fed.add_range(cs).unwrap());
    }
    fed.connect_full();
    for &n in &nodes {
        assert_loopback_ephemeral(fed.transport().listener_addr(n).unwrap());
    }

    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Presence)
        .in_range("range-1")
        .mode(Mode::Subscribe)
        .build();
    let fa = fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
    assert!(matches!(fa.answer, QueryAnswer::Subscribed { .. }));

    let ev = ContextEvent::new(
        sensors[1],
        ContextType::Presence,
        ContextValue::record([("subject", ContextValue::Id(Guid::from_u128(42)))]),
        VirtualTime::from_secs(1),
    );
    fed.ingest_at("range-1", &ev, VirtualTime::from_secs(1))
        .unwrap();
    fed.pump(VirtualTime::from_secs(2)).unwrap();
    let got = fed.deliveries_for(app);
    assert_eq!(got.len(), 1, "one relayed delivery over the socket");
    assert_eq!(got[0].event.source, sensors[1]);
}

/// The socket federation is behaviourally invisible: a 4-range run
/// over TCP yields the exact delivery multiset of the in-process
/// simulator oracle.
#[test]
fn four_range_multiset_equals_simnetwork_oracle() {
    let over_tcp = run_four_ranges(tcp());
    let oracle = run_four_ranges(SimNetwork::new());
    assert_eq!(
        over_tcp, oracle,
        "socket federation must reproduce the simulator's delivery multiset"
    );
    assert!(!oracle.is_empty(), "the oracle run must actually deliver");
}

/// Version negotiation: a node speaking a different protocol version
/// is rejected at the handshake, before any data frame moves.
#[test]
fn version_mismatch_is_rejected_at_the_handshake() {
    let mut ids = GuidGenerator::seeded(0xfeed);
    let mut current = tcp();
    let a = ids.next_guid();
    current.add_node(a, "range-a").unwrap();

    let mut future = tcp();
    future.set_protocol_version(TCP_PROTOCOL_VERSION + 1);
    let b = ids.next_guid();
    future.add_node(b, "range-b").unwrap();

    let err = future
        .peer_with(b, current.listener_addr(a).unwrap())
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("rejected"),
        "rejection must name the handshake failure, got: {msg}"
    );
    assert_eq!(
        future.connections_of(b),
        0,
        "no connection survives a rejected handshake"
    );
}

/// A late joiner converges through anti-entropy: it bootstraps off one
/// peer, digests disagree, deltas flow, and afterwards every node's
/// registration digest is identical — including the ranges it never
/// dialled directly, once the federation re-wires.
#[test]
fn late_joiner_converges_through_anti_entropy() {
    let mut ids = GuidGenerator::seeded(0xfeed);
    let mut fed: Federation<TcpTransport> = Federation::with_transport(tcp(), 7);
    let mut nodes = Vec::new();
    for i in 0..2usize {
        let cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
        nodes.push(fed.add_range(cs).unwrap());
    }
    fed.connect_full();

    // The late joiner arrives after the federation formed; its
    // registrations exist only in its own store until it syncs.
    let cs = ContextServer::new(ids.next_guid(), "range-late".to_owned(), range_plan(9));
    let late = fed.add_range(cs).unwrap();
    assert_ne!(
        fed.transport().registration_digest(late),
        fed.transport().registration_digest(nodes[0]),
        "digests must disagree before anti-entropy runs"
    );

    fed.join_discovery(late, nodes[0], 7).unwrap();
    assert_eq!(
        fed.transport().registration_digest(late),
        fed.transport().registration_digest(nodes[0]),
        "bootstrap pair must converge during the join handshake"
    );
    assert_eq!(
        fed.transport().registration_value(late, "range/range-0"),
        Some(nodes[0].to_string()),
        "the joiner must have learned the elder range's registration"
    );
    assert_eq!(
        fed.transport()
            .registration_value(nodes[0], "range/range-late"),
        Some(late.to_string()),
        "the elder must have learned the joiner's registration"
    );

    // Re-wiring the full mesh dials only the missing pairs; the sync
    // that rides each new connection brings the last node in line.
    fed.connect_full();
    assert_eq!(
        fed.transport().registration_digest(nodes[1]),
        fed.transport().registration_digest(late),
        "all nodes must agree after the mesh closes"
    );
}

/// Chaos parity, on the pinned seed matrix: the identical chaos
/// scenario, fault proxy and seed produce the identical outcome —
/// delivery multiset, dedup counter and retry counter — whether the
/// wrapped transport is the simulator or real sockets.
#[test]
fn chaos_outcome_matches_simnetwork_under_the_same_seed() {
    for seed in parity_seeds() {
        let probs = FaultProbs::lossy(0.3);
        let over_tcp = run_with(tcp(), seed, probs);
        let over_sim = run_with(SimNetwork::new(), seed, probs);
        assert_eq!(
            over_tcp, over_sim,
            "seed {seed}: chaos outcome diverged between sockets and simulator"
        );
    }
}

/// The acceptance invariant survives the move to sockets: with total
/// ack loss every "failed" send actually lands, so dedup hits equal
/// retransmissions exactly — over real TCP, behind the same proxy.
#[test]
fn dedup_accounting_holds_over_sockets_under_total_ack_loss() {
    let mut exercised = false;
    for seed in parity_seeds().into_iter().take(3) {
        let probs = FaultProbs {
            drop: 0.4,
            ack_loss: 1.0,
            ..FaultProbs::NONE
        };
        let chaos = run_with(tcp(), seed, probs);
        assert_eq!(
            chaos.dedup_hits, chaos.retry_attempts,
            "seed {seed}: dedup hits must equal retransmissions over sockets"
        );
        let clean = run_with(tcp(), seed, FaultProbs::NONE);
        assert_eq!(
            chaos.deliveries, clean.deliveries,
            "seed {seed}: no duplicate deliveries may reach the app"
        );
        exercised |= chaos.retry_attempts > 0;
    }
    assert!(
        exercised,
        "at 40% drop some seed must provoke a retransmission"
    );
}

/// Seed-exact replay on real sockets: the same seed, run twice over
/// two fresh socket transports, produces the identical outcome.
#[test]
fn same_seed_replays_identically_over_sockets() {
    let seed = 0xdead_beef;
    let a: Outcome = run_with(tcp(), seed, FaultProbs::lossy(0.25));
    let b: Outcome = run_with(tcp(), seed, FaultProbs::lossy(0.25));
    assert_eq!(a, b, "socket chaos run did not replay from its seed");
}

/// The socket transport declares its wiring to the protocol model, and
/// the static verifier (SCI-A207) finds a wire under every route the
/// federation would take.
#[test]
fn protocol_model_declares_verified_transport_links() {
    let mut ids = GuidGenerator::seeded(0xfeed);
    let mut fed: Federation<TcpTransport> = Federation::with_transport(tcp(), 7);
    for i in 0..3usize {
        let cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
        fed.add_range(cs).unwrap();
    }
    fed.connect_full();

    let model = fed.protocol_model();
    let links = model
        .transport_links
        .as_ref()
        .expect("a socket transport must declare its link model");
    assert!(
        !links.is_empty(),
        "a fully connected mesh declares its wires"
    );

    let report = verify_federation(&model);
    let a207: Vec<_> = report
        .diagnostics()
        .iter()
        .filter(|d| d.code == DiagCode::TransportLinkMissing)
        .collect();
    assert!(
        a207.is_empty(),
        "every declared route must have a wire underneath it: {a207:?}"
    );
}
