//! Property tests: the telemetry snapshot XML codec round-trips
//! arbitrary snapshots — XML-hostile metric names, empty and sparse
//! histograms, extreme values — through the same `Element` machinery
//! the federation wire codec uses.

use proptest::prelude::*;
use sci::core::{snapshot_from_xml, snapshot_to_xml};
use sci::prelude::*;
use sci::telemetry::HistogramSnapshot;

/// Metric names as they appear on the wire (XML attribute values);
/// half the cases contain characters the codec must escape.
fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z0-9._-]{0,20}".prop_map(|s| s),
        "[a-z]{1,6}".prop_map(|s| format!("{s}<&\">'{s}")),
    ]
}

fn arb_value() -> impl Strategy<Value = u64> {
    prop_oneof![0..1000u64, Just(u64::MAX), any::<u64>()]
}

fn arb_histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (
        arb_name(),
        arb_value(),
        arb_value(),
        prop::collection::vec(prop_oneof![Just(0u64), 1..100u64], 0..30),
    )
        .prop_map(|(name, count, sum, buckets)| HistogramSnapshot {
            name,
            count,
            sum,
            buckets,
        })
}

fn arb_snapshot() -> impl Strategy<Value = TelemetrySnapshot> {
    (
        prop::collection::vec((arb_name(), arb_value()), 0..8),
        prop::collection::vec((arb_name(), any::<i64>()), 0..8),
        prop::collection::vec(arb_histogram(), 0..5),
    )
        .prop_map(|(counters, gauges, histograms)| TelemetrySnapshot {
            counters,
            gauges,
            histograms,
        })
}

proptest! {
    #[test]
    fn snapshot_xml_round_trips(snap in arb_snapshot()) {
        let xml = snapshot_to_xml(&snap);
        let back = snapshot_from_xml(&xml).unwrap();
        prop_assert_eq!(snap, back);
    }

    /// A live registry's snapshot (the shape production code emits)
    /// also round-trips, and merging preserves codec fidelity.
    #[test]
    fn registry_snapshot_round_trips(
        counts in prop::collection::vec((arb_name(), 0..1000u64), 1..6),
        samples in prop::collection::vec(any::<u64>(), 0..20),
    ) {
        let reg = Registry::new();
        for (name, v) in &counts {
            reg.counter(name).add(*v);
        }
        let h = reg.histogram("lat");
        for &s in &samples {
            h.record(s);
        }
        let mut snap = reg.snapshot();
        snap.merge(&reg.snapshot());
        let back = snapshot_from_xml(&snapshot_to_xml(&snap)).unwrap();
        prop_assert_eq!(snap, back);
    }
}
