//! Integration test: adaptivity to component failure (E6) — SCI repairs
//! automatically; the Context Toolkit and Solar baselines starve on the
//! identical event stream.

use sci::baselines::toolkit::Interpreter;
use sci::baselines::{GraphSpec, SolarEngine, SpecNode, ToolkitPipeline};
use sci::core::adaptation;
use sci::prelude::*;

fn presence(source: Guid, subject: Guid, to: &str, now: VirtualTime) -> ContextEvent {
    ContextEvent::new(
        source,
        ContextType::Presence,
        ContextValue::record([
            ("subject", ContextValue::Id(subject)),
            ("from", ContextValue::place("corridor")),
            ("to", ContextValue::place(to)),
        ]),
        now,
    )
}

struct Rig {
    cs: ContextServer,
    doors: Vec<Guid>,
    bob: Guid,
    app: Guid,
}

fn sci_rig(door_count: usize) -> Rig {
    let plan = capa_level10();
    let mut ids = GuidGenerator::seeded(61);
    let mut cs = ContextServer::new(ids.next_guid(), "level-ten", plan.clone());
    let doors: Vec<Guid> = (0..door_count)
        .map(|i| {
            let id = ids.next_guid();
            cs.register(
                Profile::builder(id, EntityKind::Device, format!("door-{i}"))
                    .output(PortSpec::new("presence", ContextType::Presence))
                    .attribute("max-silence-us", ContextValue::Int(15_000_000))
                    .build(),
                VirtualTime::ZERO,
            )
            .unwrap();
            id
        })
        .collect();
    let obj_loc = ids.next_guid();
    cs.register(
        Profile::builder(obj_loc, EntityKind::Software, "objLocationCE")
            .input(PortSpec::new("presence", ContextType::Presence))
            .output(PortSpec::new("location", ContextType::Location))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    let p = plan;
    cs.register_logic(obj_loc, factory(move || ObjLocationLogic::new(p.clone())));

    let bob = ids.next_guid();
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info_matching(
            ContextType::Location,
            vec![Predicate::eq("subject", ContextValue::Id(bob))],
        )
        .mode(Mode::Subscribe)
        .build();
    cs.submit_query(&q, VirtualTime::ZERO).unwrap();
    Rig {
        cs,
        doors,
        bob,
        app,
    }
}

#[test]
fn sci_survives_sensor_failure_baselines_starve() {
    let mut r = sci_rig(2);
    let plan = capa_level10();

    let mut toolkit = ToolkitPipeline::wire(
        [r.doors[0]],
        ContextType::Presence,
        Interpreter::presence_to_location(plan.clone()),
        r.bob,
    );
    let mut solar = SolarEngine::new(plan);
    let solar_app = Guid::from_u128(0x50a);
    solar
        .attach(
            solar_app,
            &GraphSpec {
                nodes: vec![SpecNode::LocationOf(r.bob), SpecNode::Source(r.doors[0])],
                children: vec![vec![1], vec![]],
            },
        )
        .unwrap();

    // Healthy phase: door 0 reports, door 1 heartbeats.
    let mut sci_healthy = 0;
    for step in 0..3u64 {
        let now = VirtualTime::from_secs(step * 5);
        let ev = presence(r.doors[0], r.bob, "L10.01", now);
        r.cs.ingest(&ev, now).unwrap();
        r.cs.heartbeat(r.doors[1], now).unwrap();
        sci_healthy += r.cs.drain_outbox().len();
        toolkit.ingest(&ev, now);
        solar.ingest(&ev, now);
    }
    assert_eq!(sci_healthy, 3);
    assert_eq!(toolkit.deliveries().len(), 3);
    assert_eq!(solar.deliveries_for(solar_app).len(), 3);

    // Door 0 goes silent past its 15 s window; door 1 stays alive.
    let detect_at = VirtualTime::from_secs(27);
    r.cs.heartbeat(r.doors[1], detect_at).unwrap();
    let reports = adaptation::detect_and_repair(&mut r.cs, detect_at);
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].failed, r.doors[0]);
    assert!(!reports[0].degraded, "a survivor exists");

    // Post-failure: only door 1 reports.
    let mut sci_after = 0;
    for step in 0..3u64 {
        let now = VirtualTime::from_secs(30 + step * 5);
        let ev = presence(r.doors[1], r.bob, "L10.02", now);
        r.cs.ingest(&ev, now).unwrap();
        sci_after += r.cs.drain_outbox().len();
        toolkit.ingest(&ev, now);
        solar.ingest(&ev, now);
    }
    assert_eq!(sci_after, 3, "SCI kept delivering without app involvement");
    assert_eq!(toolkit.deliveries().len(), 3, "toolkit starved at 3");
    assert_eq!(solar.deliveries_for(solar_app).len(), 0, "solar starved");
}

#[test]
fn repair_latency_is_bounded_by_detection_poll() {
    // The delivered-event gap equals the failure detection delay: events
    // arriving after repair flow immediately.
    let mut r = sci_rig(3);
    let t_fail = VirtualTime::from_secs(10);
    // doors[0] dies silently at t=10 (it last spoke at t=5).
    let ev = presence(r.doors[0], r.bob, "L10.01", VirtualTime::from_secs(5));
    r.cs.ingest(&ev, VirtualTime::from_secs(5)).unwrap();
    for d in &r.doors[1..] {
        r.cs.heartbeat(*d, t_fail).unwrap();
    }
    r.cs.drain_outbox();

    // Detection poll at t=21 (silence 16 s > 15 s QoS).
    let t_detect = VirtualTime::from_secs(21);
    for d in &r.doors[1..] {
        r.cs.heartbeat(*d, t_detect).unwrap();
    }
    let reports = adaptation::detect_and_repair(&mut r.cs, t_detect);
    assert_eq!(reports.len(), 1);
    let gap = t_detect.saturating_since(t_fail);
    assert!(
        gap <= VirtualDuration::from_secs(11),
        "gap is the poll delay"
    );

    // The very next survivor event is delivered.
    let ev = presence(r.doors[1], r.bob, "corridor", VirtualTime::from_secs(22));
    r.cs.ingest(&ev, VirtualTime::from_secs(22)).unwrap();
    assert_eq!(r.cs.drain_outbox().len(), 1);
}

#[test]
fn graceful_deregistration_also_repairs() {
    let mut r = sci_rig(2);
    // The sensor leaves cleanly (maintenance); the configuration is
    // rewired to the survivor without a silence wait.
    r.cs.deregister(r.doors[0], VirtualTime::from_secs(1))
        .unwrap();
    let ev = presence(r.doors[1], r.bob, "L10.03", VirtualTime::from_secs(2));
    r.cs.ingest(&ev, VirtualTime::from_secs(2)).unwrap();
    let deliveries = r.cs.drain_outbox();
    assert_eq!(deliveries.len(), 1);
    assert_eq!(deliveries[0].app, r.app);
}

#[test]
fn total_source_loss_degrades_but_recovers_on_new_sensor() {
    let mut r = sci_rig(1);
    let reports = adaptation::repair_source(&mut r.cs, r.doors[0], VirtualTime::from_secs(1));
    assert!(reports[0].degraded, "no survivors");

    // A new door sensor arrives (environmental change the other way);
    // registration alone wires it into the degraded configuration.
    let newcomer = Guid::from_u128(0xfeed);
    r.cs.register(
        Profile::builder(newcomer, EntityKind::Device, "door-new")
            .output(PortSpec::new("presence", ContextType::Presence))
            .build(),
        VirtualTime::from_secs(2),
    )
    .unwrap();
    let ev = presence(newcomer, r.bob, "bay", VirtualTime::from_secs(4));
    r.cs.ingest(&ev, VirtualTime::from_secs(4)).unwrap();
    assert_eq!(r.cs.drain_outbox().len(), 1, "newcomer feeds the config");
}
