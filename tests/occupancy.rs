//! Integration test: a second derived-context pipeline — room occupancy
//! from door-sensor presence — exercising the aggregator role of the
//! composition model alongside the Figure 3 location/path pipeline.

use sci::prelude::*;

fn rig() -> (ContextServer, GuidGenerator, Vec<Guid>) {
    let plan = capa_level10();
    let mut ids = GuidGenerator::seeded(121);
    let mut cs = ContextServer::new(ids.next_guid(), "level-ten", plan);

    let doors: Vec<Guid> = (0..3)
        .map(|i| {
            let id = ids.next_guid();
            cs.register(
                Profile::builder(id, EntityKind::Device, format!("door-{i}"))
                    .output(PortSpec::new("presence", ContextType::Presence))
                    .build(),
                VirtualTime::ZERO,
            )
            .unwrap();
            id
        })
        .collect();

    let occupancy_ce = ids.next_guid();
    cs.register(
        Profile::builder(occupancy_ce, EntityKind::Software, "occupancyCE")
            .input(PortSpec::new("presence", ContextType::Presence))
            .output(PortSpec::new("occupancy", ContextType::Occupancy))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    cs.register_logic(occupancy_ce, factory(OccupancyLogic::new));
    (cs, ids, doors)
}

fn crossing(door: Guid, subject: Guid, from: &str, to: &str, t: VirtualTime) -> ContextEvent {
    ContextEvent::new(
        door,
        ContextType::Presence,
        ContextValue::record([
            ("subject", ContextValue::Id(subject)),
            ("from", ContextValue::place(from)),
            ("to", ContextValue::place(to)),
        ]),
        t,
    )
}

#[test]
fn occupancy_subscription_counts_people() {
    let (mut cs, mut ids, doors) = rig();
    let app = ids.next_guid();
    let q = Query::builder(ids.next_guid(), app)
        .info(ContextType::Occupancy)
        .mode(Mode::Subscribe)
        .build();
    match cs.submit_query(&q, VirtualTime::ZERO).unwrap() {
        QueryAnswer::Subscribed { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(cs.instance_count(), 1, "one occupancy aggregator");

    let (bob, eve) = (ids.next_guid(), ids.next_guid());
    let mut counts_for_l1001 = Vec::new();
    let script = [
        (doors[0], bob, "corridor", "L10.01"),
        (doors[1], eve, "corridor", "L10.01"),
        (doors[0], bob, "L10.01", "corridor"),
    ];
    for (i, (door, who, from, to)) in script.into_iter().enumerate() {
        let t = VirtualTime::from_secs(i as u64 + 1);
        cs.ingest(&crossing(door, who, from, to, t), t).unwrap();
        for d in cs.drain_outbox() {
            assert_eq!(d.event.topic, ContextType::Occupancy);
            let room = d
                .event
                .payload
                .field("room")
                .and_then(|v| v.as_text().map(str::to_owned))
                .unwrap();
            let count = d
                .event
                .payload
                .field("count")
                .and_then(ContextValue::as_int)
                .unwrap();
            if room == "L10.01" {
                counts_for_l1001.push(count);
            }
        }
    }
    assert_eq!(counts_for_l1001, [1, 2, 1], "enter, enter, leave");
}

#[test]
fn occupancy_and_location_pipelines_coexist() {
    let (mut cs, mut ids, doors) = rig();
    // Also register the location pipeline.
    let obj_loc = ids.next_guid();
    cs.register(
        Profile::builder(obj_loc, EntityKind::Software, "objLocationCE")
            .input(PortSpec::new("presence", ContextType::Presence))
            .output(PortSpec::new("location", ContextType::Location))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    let plan = capa_level10();
    cs.register_logic(
        obj_loc,
        factory(move || ObjLocationLogic::new(plan.clone())),
    );

    let bob = ids.next_guid();
    let occupancy_app = ids.next_guid();
    let location_app = ids.next_guid();
    cs.submit_query(
        &Query::builder(ids.next_guid(), occupancy_app)
            .info(ContextType::Occupancy)
            .mode(Mode::Subscribe)
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    cs.submit_query(
        &Query::builder(ids.next_guid(), location_app)
            .info_matching(
                ContextType::Location,
                vec![Predicate::eq("subject", ContextValue::Id(bob))],
            )
            .mode(Mode::Subscribe)
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    assert_eq!(cs.instance_count(), 2, "independent pipelines");

    // One door event feeds both.
    let t = VirtualTime::from_secs(1);
    cs.ingest(&crossing(doors[0], bob, "corridor", "L10.01", t), t)
        .unwrap();
    let deliveries = cs.drain_outbox();
    let topics: Vec<&ContextType> = deliveries.iter().map(|d| &d.event.topic).collect();
    assert!(topics.contains(&&ContextType::Occupancy));
    assert!(topics.contains(&&ContextType::Location));
}
