//! Graceful degradation: when a producing range is unreachable (overlay
//! partition) or down (worker crashed), federated queries return a
//! *partial* answer carrying degraded-QoC metadata — the missing range
//! and the reason — instead of an error. Parked relays from the outage
//! window deliver once connectivity returns: degraded, not lossy.

use sci::prelude::*;

fn range_plan(i: usize) -> FloorPlan {
    FloorPlan::builder("campus")
        .zone(format!("wing-{i}"))
        .room(
            format!("hall-{i}"),
            Rect::with_size(Coord::new(0.0, 0.0), 20.0, 10.0),
        )
        .build()
        .unwrap()
}

fn server(i: usize, ids: &mut GuidGenerator) -> (ContextServer, Guid) {
    let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
    let sensor = ids.next_guid();
    cs.register(
        Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
            .output(PortSpec::new("presence", ContextType::Presence))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    (cs, sensor)
}

fn presence_event(sensor: Guid, subject: u128, at: VirtualTime) -> ContextEvent {
    ContextEvent::new(
        sensor,
        ContextType::Presence,
        ContextValue::record([("subject", ContextValue::Id(Guid::from_u128(subject)))]),
        at,
    )
}

/// Serial federation over a faulty overlay: a named partition islands
/// the producing range. Queries degrade to partial answers, relays from
/// the outage window park, and the heal restores everything unlost.
#[test]
fn partitioned_producer_degrades_then_recovers() {
    let mut ids = GuidGenerator::seeded(71);
    let mut fed: Federation<FaultyTransport<SimNetwork>> =
        Federation::with_transport(FaultyTransport::new(SimNetwork::new(), 9), 3);
    let mut sensors = Vec::new();
    let mut nodes = Vec::new();
    for i in 0..3 {
        let (cs, sensor) = server(i, &mut ids);
        sensors.push(sensor);
        nodes.push(fed.add_range(cs).unwrap());
    }
    fed.connect_full();

    // App homed in range-0, subscribed to presence in range-1.
    let app = ids.next_guid();
    let sub = Query::builder(ids.next_guid(), app)
        .info(ContextType::Presence)
        .in_range("range-1")
        .mode(Mode::Subscribe)
        .build();
    let fa = fed.submit_from("range-0", &sub, VirtualTime::ZERO).unwrap();
    assert!(matches!(fa.answer, QueryAnswer::Subscribed { .. }));

    // Healthy baseline: events relay, profile queries forward.
    fed.ingest_at(
        "range-1",
        &presence_event(sensors[1], 1, VirtualTime::from_secs(1)),
        VirtualTime::from_secs(1),
    )
    .unwrap();
    assert_eq!(fed.deliveries_for(app).len(), 1);

    // Island the producer.
    fed.transport_mut().partition("maintenance", &[nodes[1]]);

    // A forwarded query now yields a *partial* answer with degraded-QoC
    // metadata, not an error.
    let probe = Query::builder(ids.next_guid(), app)
        .kind(EntityKind::Device)
        .in_range("range-1")
        .all()
        .mode(Mode::Profile)
        .build();
    let fa = fed
        .submit_from("range-0", &probe, VirtualTime::from_secs(2))
        .unwrap();
    match &fa.answer {
        QueryAnswer::Partial {
            missing_range,
            reason,
            ..
        } => {
            assert!(fa.answer.is_degraded());
            assert_eq!(missing_range, "range-1");
            assert_eq!(reason, "unroutable");
        }
        other => panic!("expected a partial answer, got {other:?}"),
    }
    assert_eq!(fed.partial_answers(), 1);

    // Events produced during the outage park rather than vanish.
    for k in 0..3u64 {
        let t = VirtualTime::from_secs(3 + k);
        fed.ingest_at(
            "range-1",
            &presence_event(sensors[1], 10 + u128::from(k), t),
            t,
        )
        .unwrap();
    }
    assert!(
        fed.deliveries_for(app).is_empty(),
        "partitioned: nothing crosses"
    );
    assert_eq!(fed.pending_relay_count(), 3);
    assert!(fed.retry_parked() >= 3);

    // Heal: the next pump flushes the parked relays, the query path is
    // whole again, and the counter shows what the outage cost.
    fed.transport_mut().heal_partitions();
    fed.pump(VirtualTime::from_secs(10)).unwrap();
    assert_eq!(fed.pending_relay_count(), 0);
    assert_eq!(
        fed.deliveries_for(app).len(),
        3,
        "outage window recovered in full"
    );
    let fa = fed
        .submit_from("range-0", &probe, VirtualTime::from_secs(11))
        .unwrap();
    assert!(!fa.answer.is_degraded());
    match fa.answer {
        QueryAnswer::Profiles(ps) => assert_eq!(ps.len(), 1),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(
        fed.partial_answers(),
        1,
        "recovered answers are not partial"
    );
    assert_eq!(fed.snapshot().counter("federation.answers.partial"), 1);
}

/// Parallel federation: a crashed range worker degrades cross-range
/// queries to a partial answer with reason `range-down`; siblings keep
/// full service.
#[test]
fn crashed_range_yields_range_down_partial_answer() {
    let mut ids = GuidGenerator::seeded(71);
    let mut fed = ParallelFederation::new(3);

    // range-0 hosts a logic bomb wired to presence input.
    let (mut cs0, sensor0) = server(0, &mut ids);
    let bomb = ids.next_guid();
    cs0.register(
        Profile::builder(bomb, EntityKind::Software, "bomb")
            .input(PortSpec::new("in", ContextType::Presence))
            .output(PortSpec::new("out", ContextType::Temperature))
            .build(),
        VirtualTime::ZERO,
    )
    .unwrap();
    struct PanicLogic;
    impl sci::core::logic::EntityLogic for PanicLogic {
        fn on_event(
            &mut self,
            _event: &ContextEvent,
            _binding: &Metadata,
            _now: VirtualTime,
        ) -> Vec<(ContextType, ContextValue)> {
            panic!("logic bomb")
        }
    }
    cs0.register_logic(bomb, factory(|| PanicLogic));
    fed.add_range(cs0).unwrap();
    let (cs1, _) = server(1, &mut ids);
    fed.add_range(cs1).unwrap();
    let (cs2, _) = server(2, &mut ids);
    fed.add_range(cs2).unwrap();
    fed.connect_full();

    // Trigger the bomb: range-0's worker dies.
    let app = ids.next_guid();
    let trigger = Query::builder(ids.next_guid(), app)
        .info(ContextType::Temperature)
        .mode(Mode::Subscribe)
        .build();
    fed.submit_from("range-0", &trigger, VirtualTime::ZERO)
        .unwrap();
    fed.ingest_at(
        "range-0",
        &presence_event(sensor0, 1, VirtualTime::from_secs(1)),
        VirtualTime::from_secs(1),
    )
    .unwrap();
    assert!(matches!(
        fed.sync(VirtualTime::from_secs(1)),
        Err(SciError::RangeDown(_))
    ));

    // A sibling querying the dead range gets a partial answer, not an
    // error: the rest of the federation still answers.
    let probe = Query::builder(ids.next_guid(), app)
        .kind(EntityKind::Device)
        .in_range("range-0")
        .all()
        .mode(Mode::Profile)
        .build();
    let fa = fed
        .submit_from("range-1", &probe, VirtualTime::from_secs(2))
        .unwrap();
    match &fa.answer {
        QueryAnswer::Partial {
            missing_range,
            reason,
            ..
        } => {
            assert_eq!(missing_range, "range-0");
            assert_eq!(reason, "range-down");
        }
        other => panic!("expected a partial answer, got {other:?}"),
    }
    assert_eq!(fed.partial_answers(), 1);
    assert_eq!(fed.snapshot().counter("federation.answers.partial"), 1);

    // Healthy ranges answer each other untouched.
    let fa = fed
        .submit_from(
            "range-1",
            &Query::builder(ids.next_guid(), app)
                .kind(EntityKind::Device)
                .in_range("range-2")
                .all()
                .mode(Mode::Profile)
                .build(),
            VirtualTime::from_secs(3),
        )
        .unwrap();
    assert!(!fa.answer.is_degraded());

    let survivors = fed.shutdown();
    assert_eq!(survivors.len(), 2);
}
