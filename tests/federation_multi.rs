//! Integration test: three federated ranges over the SCINET — query
//! forwarding, remote subscriptions with event relay, and behaviour
//! under overlay partitions.

use sci::prelude::*;

fn range_plan(i: usize) -> FloorPlan {
    FloorPlan::builder("campus")
        .zone(format!("wing-{i}"))
        .room(
            format!("hall-{i}"),
            Rect::with_size(Coord::new(0.0, 0.0), 20.0, 10.0),
        )
        .build()
        .unwrap()
}

struct Rig {
    fed: Federation,
    ids: GuidGenerator,
    nodes: Vec<Guid>,
    sensors: Vec<Guid>,
}

fn rig(n: usize) -> Rig {
    let mut ids = GuidGenerator::seeded(71);
    let mut fed = Federation::new(3);
    let mut nodes = Vec::new();
    let mut sensors = Vec::new();
    for i in 0..n {
        let mut cs = ContextServer::new(ids.next_guid(), format!("range-{i}"), range_plan(i));
        let sensor = ids.next_guid();
        cs.register(
            Profile::builder(sensor, EntityKind::Device, format!("sensor-{i}"))
                .output(PortSpec::new("presence", ContextType::Presence))
                .attribute("service", ContextValue::text("sensing"))
                .attribute("room", ContextValue::place(format!("hall-{i}")))
                .build(),
            VirtualTime::ZERO,
        )
        .unwrap();
        sensors.push(sensor);
        nodes.push(fed.add_range(cs).unwrap());
    }
    fed.connect_full();
    Rig {
        fed,
        ids,
        nodes,
        sensors,
    }
}

#[test]
fn profile_queries_forward_between_all_pairs() {
    let mut r = rig(3);
    for i in 0..3 {
        for j in 0..3 {
            let app = r.ids.next_guid();
            let q = Query::builder(r.ids.next_guid(), app)
                .kind(EntityKind::Device)
                .in_range(format!("range-{j}"))
                .all()
                .mode(Mode::Profile)
                .build();
            let fa = r
                .fed
                .submit_from(&format!("range-{i}"), &q, VirtualTime::ZERO)
                .unwrap();
            match fa.answer {
                QueryAnswer::Profiles(ps) => {
                    assert_eq!(ps.len(), 1);
                    assert_eq!(ps[0].name(), format!("sensor-{j}"));
                }
                other => panic!("unexpected {other:?}"),
            }
            if i == j {
                assert_eq!(fa.hops, 0);
            } else {
                assert!(fa.hops >= 2, "round trip crosses the overlay");
            }
        }
    }
}

#[test]
fn remote_subscription_streams_relayed_events() {
    let mut r = rig(3);
    let app = r.ids.next_guid();
    // An app homed in range-0 subscribes to presence in range-2.
    let q = Query::builder(r.ids.next_guid(), app)
        .info(ContextType::Presence)
        .in_range("range-2")
        .mode(Mode::Subscribe)
        .build();
    let fa = r.fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
    assert!(matches!(fa.answer, QueryAnswer::Subscribed { .. }));

    // Ten presence events in range-2 all arrive at the app in range-0.
    for k in 0..10u64 {
        let ev = ContextEvent::new(
            r.sensors[2],
            ContextType::Presence,
            ContextValue::record([("subject", ContextValue::Id(r.ids.next_guid()))]),
            VirtualTime::from_secs(k),
        );
        r.fed
            .ingest_at("range-2", &ev, VirtualTime::from_secs(k))
            .unwrap();
    }
    let deliveries = r.fed.deliveries_for(app);
    assert_eq!(deliveries.len(), 10);
    assert!(deliveries.iter().all(|d| d.query == q.id));
    // Relays really crossed the overlay.
    assert!(r.fed.network_stats().delivered() >= 12);
}

#[test]
fn partition_degrades_forwarding_until_healed() {
    let mut r = rig(3);
    let app = r.ids.next_guid();
    let q = Query::builder(r.ids.next_guid(), app)
        .kind(EntityKind::Device)
        .in_range("range-2")
        .all()
        .mode(Mode::Profile)
        .build();

    // Works before the outage.
    assert!(r.fed.submit_from("range-0", &q, VirtualTime::ZERO).is_ok());

    // Split range-2 away at the overlay level: forwarding degrades to
    // a partial answer naming the unreachable range, rather than
    // erroring — graceful degradation with QoC metadata.
    r.fed.network_mut().set_partition(r.nodes[2], 1).unwrap();
    let fa = r
        .fed
        .submit_from("range-0", &q, VirtualTime::from_secs(1))
        .unwrap();
    assert!(fa.answer.is_degraded());
    match fa.answer {
        QueryAnswer::Partial {
            missing_range,
            reason,
            ..
        } => {
            assert_eq!(missing_range, "range-2");
            assert_eq!(reason, "unroutable");
        }
        other => panic!("expected partial answer, got {other:?}"),
    }
    assert_eq!(r.fed.partial_answers(), 1);

    // Healing restores full service.
    r.fed.network_mut().heal_partitions();
    let fa = r
        .fed
        .submit_from("range-0", &q, VirtualTime::from_secs(2))
        .unwrap();
    assert!(!fa.answer.is_degraded());
}

#[test]
fn deferred_timer_queries_answer_through_the_federation() {
    let mut r = rig(2);
    let app = r.ids.next_guid();
    let q = Query::builder(r.ids.next_guid(), app)
        .kind(EntityKind::Device)
        .all()
        .after(VirtualDuration::from_secs(30))
        .mode(Mode::Profile)
        .build();
    let fa = r.fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
    assert!(matches!(fa.answer, QueryAnswer::Deferred));

    // Too early: nothing.
    r.fed.poll_timers(VirtualTime::from_secs(29)).unwrap();
    assert!(r.fed.answers_for(app).is_empty());

    // Due: the answer lands in the app's mailbox.
    r.fed.poll_timers(VirtualTime::from_secs(31)).unwrap();
    let answers = r.fed.answers_for(app);
    assert_eq!(answers.len(), 1);
    assert_eq!(answers[0].0, q.id);
    match &answers[0].1 {
        QueryAnswer::Profiles(ps) => assert_eq!(ps.len(), 1),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn range_adverts_build_per_node_directories() {
    let mut r = rig(3);
    // Before any adverts, nodes rely on the bootstrap directory.
    assert_eq!(
        r.fed.range_covering_from(r.nodes[0], "hall-2"),
        Some(r.nodes[2]),
        "bootstrap fallback works"
    );
    let delivered = r.fed.broadcast_adverts().unwrap();
    assert_eq!(delivered, 6, "3 nodes x 2 peers each");
    // Every node now knows every place locally.
    for &node in &r.nodes {
        for j in 0..3 {
            assert_eq!(
                r.fed.range_covering_from(node, &format!("hall-{j}")),
                Some(r.nodes[j])
            );
        }
    }
    // The adverts really crossed the overlay.
    assert!(r.fed.network_stats().delivered() >= 6);

    // Forwarding by place still works after adverts.
    let app = r.ids.next_guid();
    let q = Query::builder(r.ids.next_guid(), app)
        .kind(EntityKind::Device)
        .in_place("hall-2")
        .all()
        .mode(Mode::Profile)
        .build();
    let fa = r.fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
    assert!(matches!(fa.answer, QueryAnswer::Profiles(_)));
}

#[test]
fn relayed_deliveries_respect_freshness_bounds() {
    // Regression for pump() ignoring its `now` argument: a relayed
    // event must be dropped when overlay latency pushes its arrival
    // beyond the subscription's qoc-max-age-us bound.
    let mut r = rig(2);
    let app = r.ids.next_guid();
    let q = Query::builder(r.ids.next_guid(), app)
        .info(ContextType::Presence)
        .in_range("range-1")
        .fresh_within(VirtualDuration::from_millis(50))
        .mode(Mode::Subscribe)
        .build();
    let fa = r.fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
    assert!(matches!(fa.answer, QueryAnswer::Subscribed { .. }));

    // Control: with the default per-hop latency the relay arrives well
    // inside the 50 ms freshness window.
    let t1 = VirtualTime::from_secs(1);
    let ev = ContextEvent::new(
        r.sensors[1],
        ContextType::Presence,
        ContextValue::record([("subject", ContextValue::Id(r.ids.next_guid()))]),
        t1,
    );
    r.fed.ingest_at("range-1", &ev, t1).unwrap();
    assert_eq!(r.fed.deliveries_for(app).len(), 1);
    assert_eq!(r.fed.relay_stale_drops(), 0);

    // Now make every hop cost 100 ms: arrival time (now + route
    // latency) exceeds event timestamp + 50 ms, so the relay must be
    // dropped and counted.
    r.fed
        .network_mut()
        .set_hop_latency(VirtualDuration::from_millis(100));
    let t2 = VirtualTime::from_secs(2);
    let stale = ContextEvent::new(
        r.sensors[1],
        ContextType::Presence,
        ContextValue::record([("subject", ContextValue::Id(r.ids.next_guid()))]),
        t2,
    );
    r.fed.ingest_at("range-1", &stale, t2).unwrap();
    assert!(
        r.fed.deliveries_for(app).is_empty(),
        "stale relay must not reach the app"
    );
    assert_eq!(r.fed.relay_stale_drops(), 1);
}

#[test]
fn place_directory_routes_queries_by_room_name() {
    let mut r = rig(3);
    // hall-1 is advertised by range-1 only; an app in range-0 querying
    // that place gets forwarded automatically via the directory (the
    // local CS has never heard of hall-1).
    assert_eq!(r.fed.range_covering("hall-1"), Some(r.nodes[1]));
    let app = r.ids.next_guid();
    let q = Query::builder(r.ids.next_guid(), app)
        .kind(EntityKind::Device)
        .in_place("hall-1")
        .all()
        .mode(Mode::Profile)
        .build();
    let fa = r.fed.submit_from("range-0", &q, VirtualTime::ZERO).unwrap();
    match fa.answer {
        QueryAnswer::Profiles(ps) => {
            assert_eq!(ps.len(), 1);
            assert_eq!(ps[0].name(), "sensor-1");
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(fa.hops >= 2, "the query crossed the overlay");
}
