//! # SCI — the Strathclyde Context Infrastructure, in Rust
//!
//! A full reproduction of *Towards a Middleware for Generalised Context
//! Management* (Glassey, Stevenson, Richmond, Nixon, Terzis, Wang,
//! Ferguson — Middleware 2003 workshop on Middleware for Pervasive and
//! Ad Hoc Computing).
//!
//! This crate is the facade: it re-exports the workspace's subsystems
//! under one namespace.
//!
//! | Module | Crate | Paper concept |
//! |--------|-------|---------------|
//! | [`types`] | `sci-types` | GUIDs, entities, typed context, profiles, advertisements, events |
//! | [`query`] | `sci-query` | the What/Where/When/Which/mode query model (Fig 6) |
//! | [`location`] | `sci-location` | geometric/topological/logical models + intermediate language (§3.3) |
//! | [`event`] | `sci-event` | typed events, Event Mediator machinery, virtual time (§3.1) |
//! | [`overlay`] | `sci-overlay` | the SCINET overlay and the hierarchical baseline (§3) |
//! | [`sensors`] | `sci-sensors` | simulated doors, badges, W-LAN cells, printers, mobility (§3.4, §5) |
//! | [`core`] | `sci-core` | Context Server, Registrar, Query Resolver, configurations, adaptation, federation, CAPA (§3–§5) |
//! | [`analysis`] | `sci-analysis` | static verification of composition plans, fleet drift audits |
//! | [`baselines`] | `sci-baselines` | Context-Toolkit and Solar comparison systems (§2) |
//! | [`wal`] | `sci-wal` | segmented write-ahead command log and snapshot store behind durable ranges |
//!
//! # Quickstart
//!
//! ```
//! use sci::prelude::*;
//!
//! // One range, one Context Server.
//! let mut ids = GuidGenerator::seeded(7);
//! let mut cs = ContextServer::new(ids.next_guid(), "lab", capa_level10());
//!
//! // Register a door sensor CE.
//! let door = ids.next_guid();
//! cs.register(
//!     Profile::builder(door, EntityKind::Device, "door-L10.01")
//!         .output(PortSpec::new("presence", ContextType::Presence))
//!         .build(),
//!     VirtualTime::ZERO,
//! )?;
//!
//! // A CAA subscribes to presence events.
//! let app = ids.next_guid();
//! let q = Query::builder(ids.next_guid(), app)
//!     .info(ContextType::Presence)
//!     .mode(Mode::Subscribe)
//!     .build();
//! cs.submit_query(&q, VirtualTime::ZERO)?;
//!
//! // A badge crossing produces a delivery.
//! let bob = ids.next_guid();
//! let ev = ContextEvent::new(
//!     door,
//!     ContextType::Presence,
//!     ContextValue::record([
//!         ("subject", ContextValue::Id(bob)),
//!         ("to", ContextValue::place("L10.01")),
//!     ]),
//!     VirtualTime::from_secs(1),
//! );
//! cs.ingest(&ev, VirtualTime::from_secs(1))?;
//! assert_eq!(cs.drain_outbox().len(), 1);
//! # Ok::<(), sci::types::SciError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sci_analysis as analysis;
pub use sci_baselines as baselines;
pub use sci_core as core;
pub use sci_event as event;
pub use sci_location as location;
pub use sci_overlay as overlay;
pub use sci_query as query;
pub use sci_sensors as sensors;
pub use sci_telemetry as telemetry;
pub use sci_types as types;
pub use sci_wal as wal;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use sci_analysis::federation::verify_federation;
    pub use sci_analysis::{analyze, PlanGraph, ProfileSource, ProfileTable};
    pub use sci_core::capa::CapaApp;
    pub use sci_core::context_server::{AppDelivery, ContextServer, QueryAnswer, RangeReply};
    pub use sci_core::driver::{Deployment, StandardCes};
    pub use sci_core::durability::{durable_digest, DurabilityConfig, RecoveryReport};
    pub use sci_core::entity_rt::{
        start_caa, start_ce, CaaHandle, CeHandle, ConsumeInterface, RegisterInterface,
        ServiceInterface,
    };
    pub use sci_core::federation::{FederatedAnswer, Federation};
    pub use sci_core::logic::{
        factory, AggregateLogic, EntityLogic, ObjLocationLogic, OccupancyLogic, PathLogic,
        WlanLocationLogic,
    };
    pub use sci_core::range_service::RangeService;
    pub use sci_core::runtime::{
        MailboxPolicy, ParallelFederation, RangeCommand, RangeRuntime, RestartPolicy,
    };
    pub use sci_event::{EventBus, EventMediator, Scheduler, Topic, VirtualClock};
    pub use sci_location::floorplan::{capa_level10, FloorPlan};
    pub use sci_location::{LocationExpr, Rect, Route};
    pub use sci_overlay::{
        FaultProbs, FaultyTransport, HierarchicalNetwork, SimNetwork, TcpTransport,
        ThreadedTransport, Transport,
    };
    pub use sci_query::{CmpOp, Mode, Predicate, Query, Subject, What, When, Where, Which};
    pub use sci_sensors::{BaseStation, DoorSensor, Printer, SimPerson, TemperatureSensor, World};
    pub use sci_telemetry::{Registry, RingBufferSubscriber, TelemetrySnapshot, Tracer};
    pub use sci_types::guid::GuidGenerator;
    pub use sci_types::{
        Advertisement, AnalysisReport, ContextEvent, ContextType, ContextValue, Coord, DiagCode,
        Diagnostic, EntityDescriptor, EntityKind, FederationModel, Guid, Metadata, PortSpec,
        Profile, SciError, SciResult, Severity, VirtualDuration, VirtualTime,
    };
    pub use sci_wal::FsyncPolicy;
}
