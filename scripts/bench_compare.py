#!/usr/bin/env python3
"""Compare bench shape rows against a committed baseline.

Usage:
    bench_compare.py --compare BASELINE CURRENT [--compare ...]
                     [--threshold 2.0] [--report PATH]

Each ``--compare`` pair names two bench JSON files produced by the same
harness (``BENCH_dispatch.json`` from e9, ``BENCH_federation.json`` from
e10, ``BENCH_mobility.json`` from e11). Rows are matched by their
identity keys and every latency metric is reported as a ratio
``current / baseline``.

Only the **gated** metrics fail the run. A metric's gate value in
``SCHEMAS`` is ``False`` (informational), ``True`` (gated at the global
``--threshold``, default 2.0x), a float (gated at that per-metric
ratio, overriding the global threshold), or a dict
``{"gate": <float>, "higher_is_better": True}`` for throughput
metrics, where a regression is a *drop*: the run fails when
``current/baseline < 1/limit`` instead of ``> limit``. Gated today:
the indexed-dispatch latency of e9 (``indexed_us`` at the global
threshold), the federation phase timings of e10 (``barrier_us`` /
``relay_us`` at 3.0x — noisier multi-thread paths get the wider band),
e10's streaming throughput (``sustained_kevents_s``, direction-aware
at 3.0x), and e11's mobility row (``handoff_p99_us`` at 3.0x plus its
own direction-aware ``sustained_kevents_s``). Everything else — the
linear oracle, resolver plans, serial sweeps, footprint figures — is
informational: those rows track an unpinned-machine trajectory and a
hard gate on them would flake.

Exit status: 0 when no gated metric regressed, 1 otherwise, 2 on bad
input. A markdown report is always written when ``--report`` is given
(and uploaded as a CI artifact either way), so a red run still ships
the numbers that killed it.

Stdlib only — no third-party imports; CI runs this on a bare runner.
"""

from __future__ import annotations

import argparse
import json
import sys

# Per-experiment row schema: identity key fields and a gate per
# metric — False: informational; True: gated at --threshold; float:
# gated at that per-metric ratio.
SCHEMAS = {
    "e9_dispatch": {
        "key": ("group", "total_subs", "distractors"),
        "metrics": {
            "indexed_us": True,  # the regression gate
            "linear_us": False,
            "plan_us": False,
        },
    },
    "e10_federation_parallel": {
        "key": ("group", "ranges"),
        "metrics": {
            "serial_us": False,
            "parallel_us": False,
            "stream_us": False,
            "cast_us": False,
            "pump_us": False,
            # Backpressure watermark: diagnostic for cast_us spikes
            # (see EXPERIMENTS.md §E10), never a gate.
            "mailbox_highwater": False,
            "barrier_us": 3.0,  # multi-thread sync: wider band
            "relay_us": 3.0,  # cross-range relay: wider band
            # Streaming throughput: a regression is a *drop*, so the
            # gate is direction-aware (fails when ratio < 1/3.0).
            "sustained_kevents_s": {"gate": 3.0, "higher_is_better": True},
        },
    },
    "e12_durability": {
        "key": ("group", "mode"),
        "metrics": {
            # Streaming-ingest cost with the WAL attached — the
            # durability tax. Gated wide (3.0x): fsync latency belongs
            # to the runner's disk, not the code under test.
            "ingest_us": 3.0,
            "sustained_kevents_s": {"gate": 3.0, "higher_is_better": True},
            # Overhead vs the WAL-off row of the *same run* — already a
            # ratio, so machine-independent but fsync-noisy: recorded,
            # not gated.
            "overhead_pct": False,
            "wal_bytes": False,
            # Recovery trajectory (snapshot restore + replay):
            # informational in this first PR, gate once a trend exists.
            "recover_us": False,
            "replayed": False,
        },
    },
    "e13_network": {
        "key": ("group", "mode"),
        "metrics": {
            # One-event relay round trip per transport. The tcp row
            # includes a kernel round trip and the delivery ack, so it
            # gets the wide multi-thread band; latency up is bad.
            "rtt_us": 3.0,
            # Streamed relay throughput per transport — direction-aware
            # like every other streaming gate: a regression is a drop.
            "sustained_kevents_s": {"gate": 3.0, "higher_is_better": True},
            # sim/tcp ratio rows: the gap between a function call and a
            # socket is a property of the host, never a gate.
            "ratio": False,
        },
    },
    "e11_mobility": {
        "key": ("group", "ranges", "entities_per_range"),
        "metrics": {
            "handoff_p50_us": False,
            # The tail of a complete entity handoff (package, relay,
            # replay) is what city-scale mobility lives or dies on.
            "handoff_p99_us": 3.0,
            # Ingest throughput while the churn is running — gated
            # direction-aware like e10's streaming rate.
            "sustained_kevents_s": {"gate": 3.0, "higher_is_better": True},
            # RSS-derived and allocator-dependent: informational.
            "bytes_per_entity": False,
            "deliveries": False,
        },
    },
}


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if "experiment" not in doc or "rows" not in doc:
        sys.exit(f"bench_compare: {path} is not a bench shape file")
    return doc


def row_key(row, key_fields):
    return tuple((f, row[f]) for f in key_fields if f in row)


def fmt_key(key):
    return " ".join(f"{f}={v}" for f, v in key)


def compare_pair(baseline_path, current_path, threshold, lines):
    """Appends report lines for one file pair; returns gated failures."""
    base = load(baseline_path)
    cur = load(current_path)
    if base["experiment"] != cur["experiment"]:
        sys.exit(
            f"bench_compare: experiment mismatch: {baseline_path} is "
            f"{base['experiment']!r}, {current_path} is {cur['experiment']!r}"
        )
    schema = SCHEMAS.get(base["experiment"])
    if schema is None:
        sys.exit(f"bench_compare: unknown experiment {base['experiment']!r}")

    base_rows = {row_key(r, schema["key"]): r for r in base["rows"]}
    failures = []
    lines.append(f"## {base['experiment']} — `{current_path}` vs `{baseline_path}`")
    lines.append("")
    lines.append("| row | metric | baseline | current | ratio | gate |")
    lines.append("|-----|--------|---------:|--------:|------:|------|")
    for row in cur["rows"]:
        key = row_key(row, schema["key"])
        ref = base_rows.get(key)
        for metric, gate in schema["metrics"].items():
            if metric not in row:
                continue
            now = float(row[metric])
            if ref is None or metric not in ref:
                lines.append(
                    f"| {fmt_key(key)} | {metric} | — | {now:.3f} | — | new row |"
                )
                continue
            then = float(ref[metric])
            ratio = now / then if then > 0 else float("inf")
            verdict = "info"
            if gate:
                higher_is_better = isinstance(gate, dict) and gate.get(
                    "higher_is_better", False
                )
                if isinstance(gate, dict):
                    limit = float(gate["gate"])
                else:
                    # bool is not a float subclass, so True keeps the
                    # global threshold and 3.0 overrides it.
                    limit = gate if isinstance(gate, float) else threshold
                if higher_is_better:
                    # Throughput metric: regression = a drop below
                    # baseline/limit, not a time increase.
                    failed = ratio < 1.0 / limit
                    bound = f"{1.0 / limit:.2f}x floor"
                else:
                    failed = ratio > limit
                    bound = f"{limit:.1f}x ceiling"
                verdict = "**FAIL**" if failed else "ok"
                if failed:
                    failures.append(
                        f"{base['experiment']}: {fmt_key(key)} {metric} "
                        f"{then:.3f} -> {now:.3f} ({ratio:.2f}x vs {bound})"
                    )
            lines.append(
                f"| {fmt_key(key)} | {metric} | {then:.3f} | {now:.3f} "
                f"| {ratio:.2f}x | {verdict} |"
            )
    lines.append("")
    return failures


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--compare",
        nargs=2,
        action="append",
        metavar=("BASELINE", "CURRENT"),
        required=True,
        help="baseline and freshly-generated bench JSON (repeatable)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="max allowed current/baseline ratio on gated metrics (default 2.0)",
    )
    ap.add_argument("--report", help="write a markdown report to this path")
    args = ap.parse_args(argv)

    lines = ["# Bench regression report", ""]
    failures = []
    for baseline_path, current_path in args.compare:
        failures += compare_pair(baseline_path, current_path, args.threshold, lines)

    if failures:
        lines.append(f"**{len(failures)} gated regression(s):**")
        lines.extend(f"- {f}" for f in failures)
    else:
        lines.append("**All gated metrics within threshold.**")
    report = "\n".join(lines) + "\n"
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(report)
    print(report)
    if failures:
        print("bench_compare: FAIL", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
