//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this vendored
//! micro-crate provides exactly the API surface the SCI workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] /
//! [`SeedableRng::from_entropy`], [`Rng::gen`] and [`Rng::gen_range`].
//! The generator is xoshiro256** seeded via SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but SCI only relies on
//! determinism-per-seed, never on a specific stream.

#![forbid(unsafe_code)]

/// Types that can be sampled uniformly from raw generator output.
pub trait Fill: Sized {
    /// Draws one value from `next_u64` calls.
    fn fill_from(rng: &mut dyn RngCore) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_fill_int {
    ($($t:ty),*) => {$(
        impl Fill for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn fill_from(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_fill_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Fill for u128 {
    fn fill_from(rng: &mut dyn RngCore) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Fill for i128 {
    fn fill_from(rng: &mut dyn RngCore) -> Self {
        u128::fill_from(rng) as i128
    }
}

impl Fill for bool {
    fn fill_from(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Fill for f64 {
    fn fill_from(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Fill for f32 {
    fn fill_from(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = u128::fill_from(rng) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = u128::fill_from(rng) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f64::fill_from(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f32::fill_from(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface (subset of upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly random value of `T`.
    fn gen<T: Fill>(&mut self) -> T
    where
        Self: Sized,
    {
        T::fill_from(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Draws a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::fill_from(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction (subset of upstream `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from ambient entropy (the system clock —
    /// adequate for the simulation workloads SCI runs offline).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let pid = u64::from(std::process::id());
        Self::seed_from_u64(t ^ pid.rotate_left(32))
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: SCI never relies on `SmallRng` being distinct.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u128>(), b.gen::<u128>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = r.gen_range(-0.2..0.2);
            assert!((-0.2..0.2).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn float_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
