//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! reimplements the subset of proptest the SCI workspace uses: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_filter` / `prop_union` / `prop_recursive` / `boxed`,
//! [`any`](arbitrary::any) over primitives and
//! [`sample::Index`], regex-subset string strategies, tuple and
//! collection strategies, and the `proptest!` / `prop_compose!` /
//! `prop_oneof!` / `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs and the seed,
//!   it is not minimised.
//! * Generation is driven by a xoshiro256**-style PRNG; set
//!   `PROPTEST_SEED` to reproduce a failing run.
//! * The regex strategy supports the subset SCI uses: literals, `.`,
//!   `[...]` classes with ranges, `(...)` groups and `?`/`*`/`+`/
//!   `{m}`/`{m,n}` quantifiers.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case execution: configuration, error type and the runner loop.

    /// How a generated test case failed to complete.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected (filter miss or `prop_assume!`); it is
        /// retried without being counted.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with a reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The result of one generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (subset of upstream's).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum rejects (filter misses / assumes) tolerated overall.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config that runs `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    /// The generation source handed to strategies, plus the input log
    /// used for failure reporting.
    #[derive(Debug)]
    pub struct TestRng {
        s: [u64; 4],
        inputs: Vec<String>,
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn seeded(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
                inputs: Vec::new(),
            }
        }

        /// Produces the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Records a named input for failure reporting.
        pub fn record_input(&mut self, line: String) {
            self.inputs.push(line);
        }

        fn take_inputs(&mut self) -> Vec<String> {
            std::mem::take(&mut self.inputs)
        }
    }

    fn seed_from_env_or_entropy() -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.trim().parse::<u64>() {
                return v;
            }
        }
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        t ^ u64::from(std::process::id()).rotate_left(32)
    }

    /// Runs `case` until `config.cases` successes, panicking on the
    /// first failure with the generated inputs and the seed.
    pub fn run<F>(config: ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let seed = seed_from_env_or_entropy();
        let mut rng = TestRng::seeded(seed);
        let mut successes = 0u32;
        let mut rejects = 0u32;
        while successes < config.cases {
            rng.inputs.clear();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
            match outcome {
                Ok(Ok(())) => successes += 1,
                Ok(Err(TestCaseError::Reject(_))) => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "proptest: too many rejected cases ({rejects}); seed {seed}"
                    );
                }
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!(
                        "proptest case failed: {msg}\ninputs:\n  {}\nreproduce with PROPTEST_SEED={seed}",
                        rng.take_inputs().join("\n  ")
                    );
                }
                Err(payload) => {
                    eprintln!(
                        "proptest case panicked\ninputs:\n  {}\nreproduce with PROPTEST_SEED={seed}",
                        rng.take_inputs().join("\n  ")
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::fmt;
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// Why a strategy could not produce a value for this case.
    #[derive(Debug, Clone)]
    pub struct Rejection(pub String);

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value generated.
        type Value: fmt::Debug;

        /// Draws one value.
        ///
        /// # Errors
        ///
        /// Returns [`Rejection`] when a filter or size constraint could
        /// not be satisfied; the runner retries the whole case.
        fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

        /// Maps generated values through `f`.
        fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `f`; `whence` names the filter in
        /// reject diagnostics.
        fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
            self,
            whence: R,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }

        /// Chooses uniformly between `self` and `other`.
        fn prop_union(self, other: Self) -> Union<Self>
        where
            Self: Sized,
        {
            Union::new(vec![self, other])
        }

        /// Builds a recursive strategy: `recurse` receives the strategy
        /// for sub-values and returns the branch strategy. `depth`
        /// bounds nesting; the size hints are accepted for upstream
        /// signature compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf: BoxedStrategy<Self::Value> = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // Each level flips between terminating at a leaf and
                // recursing one deeper, so every nesting depth up to
                // `depth` is reachable.
                strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
            }
            strat
        }

        /// Type-erases the strategy (cheaply cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> Result<V, Rejection> {
            self.0.new_value(rng)
        }
    }

    impl<V> fmt::Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
            Ok(self.0.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> Result<O, Rejection> {
            self.inner.new_value(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug)]
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
            // A few local retries before rejecting the whole case keeps
            // reject rates low for light filters.
            for _ in 0..8 {
                let v = self.inner.new_value(rng)?;
                if (self.f)(&v) {
                    return Ok(v);
                }
            }
            Err(Rejection(self.whence.clone()))
        }
    }

    /// Uniform choice between same-typed alternatives.
    #[derive(Debug)]
    pub struct Union<S> {
        alternatives: Vec<S>,
    }

    impl<S> Union<S> {
        /// Builds a union; panics if `alternatives` is empty.
        pub fn new(alternatives: Vec<S>) -> Self {
            assert!(!alternatives.is_empty(), "empty union");
            Union { alternatives }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
            let pick = rng.below(self.alternatives.len());
            self.alternatives[pick].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn new_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let hi = u128::from(rng.next_u64()) << 64;
                    let draw = (hi | u128::from(rng.next_u64())) % span;
                    Ok((self.start as i128 + draw as i128) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn new_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let hi = u128::from(rng.next_u64()) << 64;
                    let draw = (hi | u128::from(rng.next_u64())) % span;
                    Ok((start as i128 + draw as i128) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> Result<f64, Rejection> {
            assert!(self.start < self.end, "empty range strategy");
            Ok(self.start + rng.unit_f64() * (self.end - self.start))
        }
    }

    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> Result<String, Rejection> {
            Ok(crate::string::generate(self, rng))
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                    let ($($name,)+) = self;
                    Ok(($($name.new_value(rng)?,)+))
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` over primitives and [`crate::sample::Index`].

    use std::fmt;
    use std::marker::PhantomData;

    use crate::strategy::{Rejection, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: Sized + fmt::Debug {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Printable ASCII keeps generated text valid everywhere.
            char::from(b' ' + (rng.next_u64() % 95) as u8)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct AnyStrategy<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> Result<A, Rejection> {
            Ok(A::arbitrary(rng))
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy(PhantomData)
    }
}

pub mod sample {
    //! Index-based selection from runtime-sized collections.

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A deferred collection index: generated independent of any length,
    /// resolved against one with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics when `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::collections::HashSet;
    use std::fmt;
    use std::hash::Hash;
    use std::ops::Range;

    use crate::strategy::{Rejection, Strategy};
    use crate::test_runner::TestRng;

    /// Sizes accepted by collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below(self.max - self.min)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Builds a `Vec` strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<S::Value>`.
    #[derive(Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq + fmt::Debug,
    {
        type Value = HashSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
            let n = self.size.sample(rng);
            let mut set = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while set.len() < n {
                set.insert(self.element.new_value(rng)?);
                attempts += 1;
                if attempts > n * 16 + 64 {
                    return Err(Rejection("hash_set: not enough distinct values".into()));
                }
            }
            Ok(set)
        }
    }

    /// Builds a `HashSet` strategy with `size` distinct elements.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::{Rejection, Strategy};
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (3:1 biased toward `Some`, as
    /// upstream's default weight).
    #[derive(Debug)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
            if rng.below(4) == 0 {
                Ok(None)
            } else {
                self.0.new_value(rng).map(Some)
            }
        }
    }

    /// Wraps `inner`'s values in `Option`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod string {
    //! Generation from the regex subset SCI's tests use.

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Piece {
        Literal(char),
        Any,
        Class(Vec<char>),
        Group(Vec<Atom>),
    }

    #[derive(Debug, Clone)]
    struct Atom {
        piece: Piece,
        min: usize,
        max: usize, // inclusive
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let atoms = parse_seq(&chars, &mut pos, pattern);
        assert!(
            pos == chars.len(),
            "unsupported regex `{pattern}` (stopped at {pos})"
        );
        atoms
    }

    fn parse_seq(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        while *pos < chars.len() && chars[*pos] != ')' {
            let piece = match chars[*pos] {
                '[' => {
                    *pos += 1;
                    Piece::Class(parse_class(chars, pos, pattern))
                }
                '(' => {
                    *pos += 1;
                    let inner = parse_seq(chars, pos, pattern);
                    assert!(
                        *pos < chars.len() && chars[*pos] == ')',
                        "unclosed group in regex `{pattern}`"
                    );
                    *pos += 1;
                    Piece::Group(inner)
                }
                '.' => {
                    *pos += 1;
                    Piece::Any
                }
                '\\' => {
                    *pos += 1;
                    assert!(*pos < chars.len(), "trailing backslash in `{pattern}`");
                    let c = chars[*pos];
                    *pos += 1;
                    Piece::Literal(c)
                }
                c => {
                    *pos += 1;
                    Piece::Literal(c)
                }
            };
            let (min, max) = parse_quantifier(chars, pos, pattern);
            atoms.push(Atom { piece, min, max });
        }
        atoms
    }

    fn parse_class(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<char> {
        let mut set = Vec::new();
        while *pos < chars.len() && chars[*pos] != ']' {
            let c = chars[*pos];
            // A range like `a-z` needs a char on both sides; `-` first,
            // last or lone is a literal.
            if *pos + 2 < chars.len() && chars[*pos + 1] == '-' && chars[*pos + 2] != ']' {
                let (lo, hi) = (c, chars[*pos + 2]);
                assert!(lo <= hi, "inverted class range in `{pattern}`");
                for v in lo..=hi {
                    set.push(v);
                }
                *pos += 3;
            } else {
                set.push(c);
                *pos += 1;
            }
        }
        assert!(
            *pos < chars.len(),
            "unclosed character class in `{pattern}`"
        );
        *pos += 1; // consume ']'
        assert!(!set.is_empty(), "empty character class in `{pattern}`");
        set
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize, pattern: &str) -> (usize, usize) {
        if *pos >= chars.len() {
            return (1, 1);
        }
        match chars[*pos] {
            '?' => {
                *pos += 1;
                (0, 1)
            }
            '*' => {
                *pos += 1;
                (0, 8)
            }
            '+' => {
                *pos += 1;
                (1, 8)
            }
            '{' => {
                *pos += 1;
                let mut first = String::new();
                while chars[*pos].is_ascii_digit() {
                    first.push(chars[*pos]);
                    *pos += 1;
                }
                let min: usize = first.parse().expect("digits");
                let max = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut second = String::new();
                    while chars[*pos].is_ascii_digit() {
                        second.push(chars[*pos]);
                        *pos += 1;
                    }
                    second.parse().expect("digits")
                } else {
                    min
                };
                assert!(
                    chars[*pos] == '}',
                    "unclosed quantifier in regex `{pattern}`"
                );
                *pos += 1;
                assert!(min <= max, "inverted quantifier in `{pattern}`");
                (min, max)
            }
            _ => (1, 1),
        }
    }

    fn emit(atoms: &[Atom], rng: &mut TestRng, out: &mut String) {
        for atom in atoms {
            let reps = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..reps {
                match &atom.piece {
                    Piece::Literal(c) => out.push(*c),
                    // `.`: printable ASCII, including XML-hostile chars
                    // like `<`, `&` and `"`.
                    Piece::Any => out.push(char::from(b' ' + (rng.next_u64() % 95) as u8)),
                    Piece::Class(set) => out.push(set[rng.below(set.len())]),
                    Piece::Group(inner) => emit(inner, rng, out),
                }
            }
        }
    }

    /// Generates one string matching `pattern`.
    ///
    /// # Panics
    ///
    /// Panics at parse time for syntax outside the supported subset.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        emit(&atoms, rng, &mut out);
        out
    }
}

/// Module-path alias so `prop::collection::vec(..)` etc. resolve after a
/// prelude glob import, as with upstream.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::sample;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_compose, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Mirrors upstream's `proptest!` forms SCI uses.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(__config, |__rng| {
                    $(
                        let __value = match $crate::strategy::Strategy::new_value(&($strat), __rng) {
                            Ok(v) => v,
                            Err(r) => return Err($crate::test_runner::TestCaseError::Reject(r.0)),
                        };
                        __rng.record_input(format!("{} = {:?}", stringify!($pat), &__value));
                        let $pat = __value;
                    )*
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Composes named sub-strategies into a strategy for a derived type.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($args:tt)*)($($pat:pat in $strat:expr),* $(,)?) -> $out:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)*),
                move |($($pat,)*)| $body,
            )
        }
    };
}

/// Uniform choice between same-valued strategies of different types.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Rejects (retries) the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(format!(
                "assume failed: {}",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = crate::test_runner::TestRng::seeded(1);
        for _ in 0..200 {
            let s = crate::string::generate("[a-z][a-z0-9-]{0,20}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 21);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());

            let o =
                crate::string::generate("[A-Za-z0-9.]([A-Za-z0-9 .]{0,14}[A-Za-z0-9.])?", &mut rng);
            assert_eq!(o.trim(), o, "trim-stable pattern");

            let dot = crate::string::generate(".{0,24}", &mut rng);
            assert!(dot.len() <= 24);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds.
        #[test]
        fn range_in_bounds(v in 10usize..20) {
            prop_assert!((10..20).contains(&v));
        }

        /// Tuples, maps and filters compose.
        #[test]
        fn combinators(pair in (0u8..10, 0u8..10).prop_map(|(a, b)| (a, b)).prop_filter("distinct", |(a, b)| a != b)) {
            prop_assert_ne!(pair.0, pair.1);
        }

        /// Oneof unions pick every arm eventually (smoke: value valid).
        #[test]
        fn oneof_arms(v in prop_oneof![Just(1u8), Just(2u8), (5u8..7)]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }

        /// Collections respect their size ranges.
        #[test]
        fn vec_sizes(v in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        /// Hash sets hold distinct values.
        #[test]
        fn set_distinct(s in prop::collection::hash_set(0u32..1000, 2..10)) {
            prop_assert!((2..10).contains(&s.len()));
        }

        /// Index resolves in bounds.
        #[test]
        fn index_in_bounds(i in any::<sample::Index>(), len in 1usize..50) {
            prop_assert!(i.index(len) < len);
        }

        /// Assume rejects without failing.
        #[test]
        fn assume_retries(v in 0u8..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u8..4, b in 10u8..14) -> (u8, u8) {
            (a, b)
        }
    }

    proptest! {
        /// prop_compose builds working strategies.
        #[test]
        fn composed(p in arb_pair()) {
            prop_assert!(p.0 < 4 && (10..14).contains(&p.1));
        }

        /// Recursive strategies terminate and produce leaves and branches.
        #[test]
        fn recursion_terminates(v in Just(0u32).prop_map(|_| 1u32).boxed().prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        })) {
            prop_assert!(v >= 1);
        }
    }
}
