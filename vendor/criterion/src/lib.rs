//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the subset of criterion SCI's benches use — `Criterion`
//! with `bench_function` / `benchmark_group` / `bench_with_input`,
//! `Bencher::iter` / `iter_with_setup`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — measuring mean
//! wall-clock time per iteration and printing one line per benchmark.
//! There is no statistical analysis, warm-up tuning, or HTML report.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimiser from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// A bare parameter used as the whole id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times the closure under measurement.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iterations` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` outside the clock
    /// before each iteration.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(label: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // One calibration pass at low iteration count, then the timed pass.
    let mut b = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim near 100ms of total measurement, capped by sample_size.
    let target = (Duration::from_millis(100).as_nanos() / per_iter.as_nanos().max(1)) as u64;
    let iterations = target.clamp(1, sample_size.max(1));
    let mut b = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iterations as f64;
    println!(
        "bench: {label:<48} {:>14.3} us/iter ({iterations} iters)",
        mean * 1e6
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` as the benchmark `id` with `input` passed through.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_benchmark(&label, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    /// Runs `f` as the benchmark `id` (no input parameter).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_benchmark(&label, self.criterion.sample_size, &mut |b| f(b));
        self
    }

    /// Ends the group (upstream finalises reports here; a no-op).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Caps the number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs `f` as the benchmark `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, &mut |b| f(b));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Declares a benchmark group function, optionally with a configured
/// `Criterion` (`name = ...; config = ...; targets = ...` form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
        let mut g = c.benchmark_group("group");
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        g.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter_with_setup(|| vec![1u8; 8], |v| v.len())
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = quick
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
