//! Offline stand-in for `loom`.
//!
//! Real loom exhaustively explores thread interleavings of a closure
//! under a modelled memory system. This container has no network, so
//! the shim provides the same surface (`loom::model`, `loom::thread`,
//! `loom::sync`) backed by std: the closure is stress-executed
//! [`ITERATIONS`] times with real threads, which perturbs scheduling
//! enough to catch gross ordering bugs while keeping every
//! `#[cfg(loom)]` test source-compatible with the real crate. CI
//! environments with registry access can swap the real `loom` in via
//! the `[patch]` table without touching a single test.

#![forbid(unsafe_code)]

/// Stress iterations per [`model`] call (real loom decides this by
/// exploring the interleaving lattice instead).
pub const ITERATIONS: usize = 64;

/// Runs `f` repeatedly, as loom's entry point does. Panics (failed
/// assertions included) propagate to the caller on the first failing
/// iteration.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..ITERATIONS {
        f();
    }
}

/// Threads inside a model: std's, re-exported under loom's path.
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Synchronisation primitives inside a model: std's, re-exported
/// under loom's paths.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    /// Atomics under loom's path.
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    }

    /// Channel types under loom's path (loom itself models mpsc via
    /// its sync primitives; the shim hands back std's).
    pub mod mpsc {
        pub use std::sync::mpsc::{channel, Receiver, Sender};
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_stress_executes() {
        let hits = Arc::new(AtomicUsize::new(0));
        let seen = hits.clone();
        super::model(move || {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = n.clone();
            let t = super::thread::spawn(move || n2.fetch_add(1, Ordering::SeqCst));
            n.fetch_add(1, Ordering::SeqCst);
            t.join().expect("modelled thread joins");
            assert_eq!(n.load(Ordering::SeqCst), 2);
            seen.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), super::ITERATIONS);
    }
}
