//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape: `lock()`
//! returns the guard directly (no `Result`), recovering from poisoning
//! the way parking_lot's poison-free locks behave.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning (a panicked holder does not
    /// wedge the simulation).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A readers-writer lock whose accessors never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
