//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] method
//! subset the SCINET wire codec uses (big-endian integer accessors and
//! slice transfer). Backed by plain `Vec<u8>`/offset rather than
//! reference-counted slabs — SCI clones frames rarely and only in
//! simulation, so the zero-copy machinery of upstream `bytes` is not
//! needed for correctness.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer with a cursor.
///
/// Reads (`get_*`) consume from the front by advancing the cursor, which
/// mirrors how upstream `Bytes` implements `Buf`.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copies; upstream borrows, but SCI's frames
    /// are tiny and the semantics are identical).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            data: Arc::new(s.to_vec()),
            start: 0,
        }
    }

    /// Remaining length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Copies the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-range of the remaining bytes as a new buffer (sharing the
    /// backing allocation, as upstream does).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted (matching
    /// upstream).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        let mut out = self.clone();
        out.start += range.start;
        let keep = range.end - range.start;
        // Trim the tail by re-owning when needed: the shim stores an
        // offset, not an end, so a shortened view copies once.
        if keep < out.len() {
            out = Bytes::from(out.as_slice()[..keep].to_vec());
        }
        out
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(v),
            start: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

/// A growable byte buffer for frame assembly.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side cursor operations (subset of upstream `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Borrows the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain (matching upstream).
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("length checked"));
        self.advance(2);
        v
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("length checked"));
        self.advance(4);
        v
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("length checked"));
        self.advance(8);
        v
    }

    /// Reads a big-endian u128.
    fn get_u128(&mut self) -> u128 {
        let v = u128::from_be_bytes(self.chunk()[..16].try_into().expect("length checked"));
        self.advance(16);
        v
    }

    /// Fills `dst` from the front of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

/// Write-side operations (subset of upstream `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u128.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u16(0x5C1E);
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u128(12345678901234567890);
        w.put_slice(b"tail");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 2 + 1 + 4 + 16 + 4);
        assert_eq!(r.get_u16(), 0x5C1E);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u128(), 12345678901234567890);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert!(r.is_empty());
    }

    #[test]
    fn clone_shares_without_affecting_cursor() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        a.advance(2);
        assert_eq!(a.as_slice(), &[3, 4]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.advance(2);
    }
}
