//! Offline stand-in for `crossbeam`.
//!
//! SCI's threaded runtime only uses `crossbeam::channel::{unbounded,
//! Sender, Receiver}` with `send`/`recv`/`try_recv`/`try_iter`, all of
//! which `std::sync::mpsc` provides with identical semantics for the
//! single-consumer topology SCI builds, so this shim re-exports std.

#![forbid(unsafe_code)]

/// Multi-producer channels (std-backed subset of `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.try_recv().is_err());
    }
}
