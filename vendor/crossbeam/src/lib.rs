//! Offline stand-in for `crossbeam`.
//!
//! SCI's threaded runtime uses `crossbeam::channel::{unbounded,
//! bounded, Sender, Receiver}` with `send`/`try_send`/`recv`/
//! `try_recv`/`try_iter`. For the single-consumer topologies SCI
//! builds, `std::sync::mpsc` provides identical semantics — except
//! that std splits the sender type in two (`Sender` for unbounded,
//! `SyncSender` for bounded) where crossbeam has one. This shim
//! papers over that split with a unified [`channel::Sender`] so the
//! mailbox policy (unbounded vs bounded-blocking vs bounded-shedding)
//! is a runtime value, exactly as with the real crate.

#![forbid(unsafe_code)]

/// Multi-producer channels (std-backed subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{Receiver, RecvError, SendError, TryRecvError, TrySendError};

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// The sending half of a channel, unbounded or bounded — matching
    /// crossbeam's unified sender (std's `Sender`/`SyncSender` split
    /// is hidden inside).
    pub struct Sender<T> {
        inner: Flavor<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
            };
            Sender { inner }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match self.inner {
                Flavor::Unbounded(_) => "Sender::Unbounded",
                Flavor::Bounded(_) => "Sender::Bounded",
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends `t`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// [`SendError`] when the receiver is gone (bounded senders
        /// blocked on a full channel are woken and also error).
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            match &self.inner {
                Flavor::Unbounded(tx) => tx.send(t),
                Flavor::Bounded(tx) => tx.send(t),
            }
        }

        /// Sends `t` without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when a bounded channel has no free
        /// slot (unbounded channels are never full);
        /// [`TrySendError::Disconnected`] when the receiver is gone.
        pub fn try_send(&self, t: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                Flavor::Unbounded(tx) => tx
                    .send(t)
                    .map_err(|SendError(v)| TrySendError::Disconnected(v)),
                Flavor::Bounded(tx) => tx.try_send(t),
            }
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: Flavor::Unbounded(tx),
            },
            rx,
        )
    }

    /// Creates a bounded FIFO channel holding at most `cap` messages;
    /// `cap` 0 is a rendezvous channel, as with the real crate.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: Flavor::Bounded(tx),
            },
            rx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TrySendError};

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn unbounded_try_send_never_fills() {
        let (tx, rx) = unbounded();
        for i in 0..64 {
            tx.try_send(i).unwrap();
        }
        drop(rx);
        assert!(matches!(
            tx.try_send(64),
            Err(TrySendError::Disconnected(64))
        ));
    }
}
